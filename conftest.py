"""Pytest configuration: make ``src/`` importable without an installed package.

The package is normally installed with ``pip install -e .``; this fallback
keeps ``pytest`` working in environments where the editable install is not
available (e.g. offline containers without the ``wheel`` package).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
