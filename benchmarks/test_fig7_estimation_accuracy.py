"""Fig. 7: delay-estimation accuracy of ISDC vs. the original SDC.

The paper shows ISDC's estimation error shrinking towards ~3 % as feedback
accumulates, while the original SDC's error grows on the refined schedules.
"""

from __future__ import annotations

import pytest

from repro.designs.suite import suite_by_name, table1_suite
from repro.experiments.fig7 import format_estimation_accuracy, run_estimation_accuracy


@pytest.mark.benchmark(group="fig7")
def test_fig7_estimation_accuracy(benchmark, scale):
    if scale == "full":
        cases = [case for case in table1_suite() if case.scale != "large"]
        iterations = 10
    else:
        cases = [suite_by_name(name) for name in
                 ("ML-core datapath1", "rrot", "binary divide", "crc32")]
        iterations = 5

    result = benchmark.pedantic(
        run_estimation_accuracy,
        kwargs={"cases": cases, "max_iterations": iterations,
                "subgraphs_per_iteration": 8},
        rounds=1, iterations=1)

    print()
    print(format_estimation_accuracy(result))

    # --- Shape assertions (paper Fig. 7) --------------------------------------
    assert len(result.isdc_error) >= 3
    # Iteration 0: ISDC has no feedback yet, so both estimates coincide.
    assert result.isdc_error[0] == pytest.approx(result.sdc_error[0], rel=0.05)
    # ISDC's error shrinks substantially by the final iteration.
    assert result.final_isdc_error < 0.5 * result.isdc_error[0]
    # The original SDC's error does not improve (it typically worsens).
    assert result.final_sdc_error >= 0.8 * result.sdc_error[0]
    # ISDC ends more accurate than the original estimate (paper: 3.4 % error).
    assert result.final_isdc_error < result.final_sdc_error
