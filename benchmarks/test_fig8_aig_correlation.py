"""Fig. 8: post-synthesis STA delay vs. AIG depth.

The paper's discussion section observes a compelling linear correlation
between the two, motivating AIG depth as a cheap feedback signal.
"""

from __future__ import annotations

import pytest

from repro.designs.suite import table1_suite
from repro.experiments.fig8 import format_aig_correlation, run_aig_correlation


@pytest.mark.benchmark(group="fig8")
def test_fig8_aig_correlation(benchmark, scale):
    if scale == "full":
        cases = [case for case in table1_suite() if case.scale != "large"]
        clock_scales = (0.7, 0.85, 1.0, 1.25, 1.5)
    else:
        wanted = {"ML-core datapath1", "rrot", "binary divide", "crc32"}
        cases = [case for case in table1_suite() if case.name in wanted]
        clock_scales = (0.85, 1.0, 1.5)

    result = benchmark.pedantic(
        run_aig_correlation,
        kwargs={"cases": cases, "clock_scales": clock_scales},
        rounds=1, iterations=1)

    print()
    print(format_aig_correlation(result))

    # --- Shape assertions (paper Fig. 8) --------------------------------------
    assert len(result.points) >= 20
    # Strong positive linear correlation between AIG depth and STA delay.
    assert result.correlation > 0.8
    # Each AIG level costs a physically plausible, positive amount of time.
    assert result.ps_per_level > 0
