"""Benchmark-suite configuration.

Environment knobs:

* ``REPRO_BENCH_SCALE``: "quick" (default) runs reduced iteration counts so
  the whole benchmark suite finishes in a few minutes; "full" uses the
  paper's settings (15/30 iterations, all 17 designs at full size).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def bench_scale() -> str:
    """Return the configured benchmark scale ("quick" or "full")."""
    return os.environ.get("REPRO_BENCH_SCALE", "quick").lower()


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()
