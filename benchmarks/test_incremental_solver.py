"""Benchmark: incremental re-solves vs. full rebuilds in the ISDC loop.

Runs the same multi-iteration designs with ``solver="full"`` and
``solver="incremental"`` and compares the cumulative scheduling re-solve
time (the per-iteration ``solver_runtime_s``, excluding the shared baseline
solve).  The estimator backend keeps the synthesis half cheap so the solver
half dominates and the comparison is stable.  A second case exercises the
runner CLI with ``--solver incremental`` and validates that the per-phase
timing split is visible in the ``--json`` payload.
"""

from __future__ import annotations

import json

import pytest

from repro.designs.suite import table1_suite
from repro.experiments.runner import main
from repro.experiments.serialize import SCHEMA_VERSION
from repro.isdc.config import IsdcConfig
from repro.isdc.scheduler import IsdcScheduler


def _run(design: str, solver: str, max_iterations: int):
    case = next(c for c in table1_suite() if c.name == design)
    config = IsdcConfig(clock_period_ps=case.clock_period_ps,
                        subgraphs_per_iteration=8,
                        max_iterations=max_iterations,
                        patience=max_iterations,
                        track_estimation_error=False,
                        use_characterized_delays=False,
                        backend="estimator", solver=solver)
    scheduler = IsdcScheduler(config)
    result = scheduler.schedule(case.build())
    return result, scheduler


def _resolve_time(result) -> float:
    """Cumulative re-solve time across refinement iterations (not iter 0)."""
    return sum(record.solver_runtime_s for record in result.history[1:])


@pytest.mark.benchmark(group="incremental-solver")
@pytest.mark.parametrize("design", ["internal datapath", "fpexp 32"])
def test_incremental_reduces_cumulative_solver_time(benchmark, design, scale):
    iterations = 6 if scale == "quick" else 15

    full, _ = _run(design, "full", iterations)
    full_resolve = _resolve_time(full)

    incremental, scheduler = _run(design, "incremental", iterations)
    incremental_resolve = _resolve_time(incremental)

    def run():
        result, _ = _run(design, "incremental", iterations)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["full_resolve_s"] = full_resolve
    benchmark.extra_info["incremental_resolve_s"] = incremental_resolve
    benchmark.extra_info["bound_patches"] = scheduler.last_problem.bound_patches
    benchmark.extra_info["rebuilds"] = scheduler.last_problem.rebuilds

    # Same multi-iteration run, measurably cheaper re-solves.
    assert result.iterations >= 2
    assert scheduler.last_solver.incremental_solves >= 1
    assert incremental_resolve < full_resolve
    # And identical outcomes (spot check; the full parity suite is tier-1).
    assert result.final_schedule.stages == full.final_schedule.stages
    assert [r.num_registers for r in result.history] == \
        [r.num_registers for r in full.history]


@pytest.mark.benchmark(group="incremental-solver")
def test_runner_json_exposes_per_phase_timing(benchmark, tmp_path):
    path = tmp_path / "table1_incremental.json"

    def run():
        assert main(["table1", "--quick", "--solver", "incremental",
                     "--json", str(path)]) == 0
        return json.loads(path.read_text())

    payload = benchmark.pedantic(run, rounds=1, iterations=1)

    assert payload["schema"] == SCHEMA_VERSION
    assert payload["solver"] == "incremental"
    for row in payload["data"]["rows"]:
        assert row["isdc_solver_time_s"] > 0
        assert row["isdc_synthesis_time_s"] > 0
        assert row["isdc_solver_time_s"] + row["isdc_synthesis_time_s"] <= \
            row["isdc_time_s"]
