"""Fig. 1: post-synthesis STA vs. HLS-estimated critical-path delay.

The paper profiles 6912 design points and shows the estimates deviating
substantially (and almost always upward) from the post-synthesis ground
truth.  The bench sweeps schedules of several designs over clock periods and
checks the same qualitative picture: a large mean over-estimation and most
points above the ideal line.
"""

from __future__ import annotations

import pytest

from repro.designs.suite import table1_suite
from repro.experiments.fig1 import format_profile, profile_summary, run_delay_profile


@pytest.mark.benchmark(group="fig1")
def test_fig1_delay_profile(benchmark, scale):
    if scale == "full":
        cases = [case for case in table1_suite() if case.scale != "large"]
        clock_scales = (0.7, 0.85, 1.0, 1.25, 1.5, 2.0)
    else:
        wanted = {"ML-core datapath1", "rrot", "binary divide", "crc32"}
        cases = [case for case in table1_suite() if case.name in wanted]
        clock_scales = (0.85, 1.0, 1.5)

    points = benchmark.pedantic(
        run_delay_profile,
        kwargs={"cases": cases, "clock_scales": clock_scales, "compute_aig": False},
        rounds=1, iterations=1)

    print()
    print(format_profile(points))
    summary = profile_summary(points)

    # --- Shape assertions (paper Fig. 1) --------------------------------------
    assert summary["num_points"] >= 20
    # Estimates sit above the measured delays on average (unused slack).
    assert summary["mean_overestimation"] > 0.10
    # The overwhelming majority of points are over-estimates.
    assert summary["fraction_overestimated"] > 0.8
