"""Benchmark consuming the runner's ``--json`` artefact.

Exercises the full CLI path (``table1 --quick --jobs N --json PATH``) and
validates the machine-readable payload the rest of the tooling consumes:
schema envelope, per-row columns, and the deterministic quality figures
matching a direct in-process run.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import main
from repro.experiments.serialize import SCHEMA_VERSION

ROW_COLUMNS = {
    "benchmark", "clock_period_ps",
    "sdc_slack_ps", "sdc_stages", "sdc_registers", "sdc_time_s",
    "isdc_slack_ps", "isdc_stages", "isdc_registers", "isdc_time_s",
    "isdc_iterations", "isdc_solver_time_s", "isdc_synthesis_time_s",
}


@pytest.mark.benchmark(group="runner-json")
def test_table1_json_artifact(benchmark, tmp_path):
    path = tmp_path / "table1.json"

    def run():
        assert main(["table1", "--quick", "--jobs", "2",
                     "--json", str(path)]) == 0
        return json.loads(path.read_text())

    payload = benchmark.pedantic(run, rounds=1, iterations=1)

    assert payload["schema"] == SCHEMA_VERSION
    assert payload["experiment"] == "table1"
    assert payload["quick"] is True
    assert payload["jobs"] == 2
    assert payload["solver"] == "full"
    assert payload["elapsed_s"] > 0

    rows = payload["data"]["rows"]
    assert len(rows) == 4  # the --quick case subset
    for row in rows:
        assert set(row) == ROW_COLUMNS
        assert row["isdc_registers"] <= row["sdc_registers"]
        assert row["isdc_stages"] <= row["sdc_stages"]
        assert row["isdc_solver_time_s"] > 0
        assert row["isdc_solver_time_s"] + row["isdc_synthesis_time_s"] <= \
            row["isdc_time_s"]

    summary = payload["data"]["summary"]
    assert 0 < summary["register_ratio"] <= 1.0
    assert 0 < summary["stage_ratio"] <= 1.0
