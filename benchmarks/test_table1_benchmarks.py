"""Table I: SDC vs. ISDC on the 17-design suite.

Regenerates the paper's headline table: per-benchmark slack, stage count,
register count and scheduling runtime for the SDC baseline and for ISDC,
plus the geometric-mean summary.  The paper reports a 71.5 % register ratio
(28.5 % reduction), a 70.0 % stage ratio and a ~40x runtime multiplier; the
shape assertions below check exactly those directions without pinning the
absolute values of this simulated substrate.
"""

from __future__ import annotations

import pytest

from repro.designs.suite import table1_suite
from repro.experiments.table1 import format_table1, run_table1


def _suite_for(scale: str):
    cases = table1_suite()
    if scale == "full":
        return cases, 16, 15
    # Quick mode: every design, but fewer subgraphs/iterations.
    return cases, 8, 6


@pytest.mark.benchmark(group="table1")
def test_table1_benchmarks(benchmark, scale):
    cases, subgraphs, iterations = _suite_for(scale)

    result = benchmark.pedantic(
        run_table1,
        kwargs={"cases": cases, "subgraphs_per_iteration": subgraphs,
                "max_iterations": iterations},
        rounds=1, iterations=1)

    print()
    print(format_table1(result))

    # --- Shape assertions (paper Table I) ------------------------------------
    assert len(result.rows) == len(cases)
    # ISDC never uses more registers or stages than the SDC baseline.
    for row in result.rows:
        assert row.isdc_registers <= row.sdc_registers, row.benchmark
        assert row.isdc_stages <= row.sdc_stages, row.benchmark
    # Geometric-mean register ratio below 90 % (paper: 71.5 %).
    assert result.register_ratio < 0.90
    # Stage ratio also improves (paper: 70.0 %).
    assert result.stage_ratio <= 1.0
    # ISDC spends some of the slack (paper: slack ratio 60.9 %).
    assert result.slack_ratio <= 1.05
    # The runtime multiplier is substantial (paper: ~40x).
    assert result.runtime_ratio > 2.0
