"""Fig. 5: delay-driven vs. fanout-driven subgraph extraction.

The paper runs 30 iterations with 4/8/16 subgraphs per iteration (path-based
expansion) and finds the fanout-driven ranking converges at least as fast and
reaches register usage no worse than the delay-driven ranking.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig5 import format_ablation, run_extraction_ablation


@pytest.mark.benchmark(group="fig5")
def test_fig5_fanout_ablation(benchmark, scale):
    if scale == "full":
        counts, iterations = (4, 8, 16), 30
    else:
        counts, iterations = (4, 16), 8

    curves = benchmark.pedantic(
        run_extraction_ablation,
        kwargs={"subgraph_counts": counts, "iterations": iterations},
        rounds=1, iterations=1)

    print()
    print(format_ablation(curves))

    # --- Shape assertions (paper Fig. 5) --------------------------------------
    for count in counts:
        fanout = curves[("fanout", count)]
        delay = curves[("delay", count)]
        # Both start from the same SDC baseline.
        assert fanout.registers[0] == delay.registers[0]
        # Fanout-driven ends at register usage no worse than delay-driven.
        assert fanout.final_registers <= delay.final_registers
        # Both strategies improve on the baseline.
        assert fanout.final_registers <= fanout.registers[0]
    # More subgraphs per iteration converge at least as fast (fewer or equal
    # iterations to reach the best point).
    assert curves[("fanout", counts[-1])].iterations_to_best <= \
        curves[("fanout", counts[0])].iterations_to_best + 2
