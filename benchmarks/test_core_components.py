"""Micro-benchmarks of the core components (not tied to a paper figure).

These track the cost of the three inner-loop operations that dominate ISDC
runtime: the LP solve, the subgraph synthesis evaluation, and the delay
matrix re-propagation.  They exist so performance regressions in the
substrate are visible independently of the end-to-end Table-I numbers.
"""

from __future__ import annotations

import pytest

from repro.designs.suite import suite_by_name
from repro.isdc.delay_matrix import DelayMatrix
from repro.isdc.reformulate import propagate_delays
from repro.sdc.delays import critical_path_matrix, node_delays
from repro.sdc.scheduler import SdcScheduler, register_weights, users_map
from repro.sdc.solver import solve_lp
from repro.synth.flow import SynthesisFlow
from repro.tech.delay_model import OperatorModel


@pytest.fixture(scope="module")
def sha_graph():
    return suite_by_name("sha256").build()


@pytest.fixture(scope="module")
def model():
    return OperatorModel()


@pytest.mark.benchmark(group="components")
def test_bench_critical_path_matrix(benchmark, sha_graph, model):
    delays = node_delays(sha_graph, model)
    matrix, _ = benchmark(critical_path_matrix, sha_graph, delays)
    assert matrix.shape[0] == len(sha_graph)


@pytest.mark.benchmark(group="components")
def test_bench_sdc_lp_solve(benchmark, sha_graph, model):
    scheduler = SdcScheduler(model, clock_period_ps=2500.0)
    delays = node_delays(sha_graph, model)
    matrix, index_of = critical_path_matrix(sha_graph, delays)
    system = scheduler.build_constraints(sha_graph, matrix, index_of)

    schedule = benchmark(solve_lp, system, register_weights(sha_graph),
                         users_map(sha_graph))
    assert system.is_feasible_schedule(schedule)


@pytest.mark.benchmark(group="components")
def test_bench_delay_propagation(benchmark, sha_graph, model):
    delays = node_delays(sha_graph, model)
    matrix = DelayMatrix.from_graph(sha_graph, delays)
    operations = [n.node_id for n in sha_graph.nodes() if not n.is_source][:12]
    matrix.update_with_subgraph(operations, 500.0)

    benchmark(lambda: propagate_delays(matrix.copy()))


@pytest.mark.benchmark(group="components")
def test_bench_subgraph_synthesis(benchmark):
    graph = suite_by_name("ML-core datapath1").build()
    flow = SynthesisFlow()
    operations = [n.node_id for n in graph.nodes() if not n.is_source]

    report = benchmark(flow.evaluate_subgraph, graph, operations)
    assert report.delay_ps > 0
