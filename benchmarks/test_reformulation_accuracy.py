"""Ablation: O(n^2) delay propagation (Alg. 2) vs. O(n^3) Floyd-Warshall.

Section III-D argues the O(n^2) re-propagation is accurate enough; this bench
compares both reformulations' stage-delay estimates against post-synthesis
ground truth after one round of feedback, and times them.
"""

from __future__ import annotations

import pytest

from repro.designs.suite import suite_by_name
from repro.isdc.config import IsdcConfig
from repro.isdc.delay_matrix import DelayMatrix
from repro.isdc.extraction import SubgraphExtractor
from repro.isdc.feedback import FeedbackEngine
from repro.isdc.reformulate import floyd_warshall_refine, propagate_delays
from repro.sdc.scheduler import SdcScheduler
from repro.synth.estimator import CharacterizedOperatorModel
from repro.synth.flow import SynthesisFlow


def _stage_error(graph, schedule, matrix, flow):
    """Mean relative stage-delay estimation error of a delay matrix."""
    import numpy as np

    errors = []
    for stage, node_ids in schedule.stage_node_map().items():
        operations = [nid for nid in node_ids if not graph.node(nid).is_source]
        if not operations:
            continue
        indices = [matrix.index_of[nid] for nid in operations]
        block = matrix.matrix[np.ix_(indices, indices)]
        estimated = float(block.max())
        actual = flow.evaluate_subgraph(graph, operations).delay_ps
        if actual > 0:
            errors.append(abs(estimated - actual) / actual)
    return sum(errors) / len(errors) if errors else 0.0


def _prepare(case_name="ML-core datapath2", clock=2500.0):
    case = suite_by_name(case_name)
    graph = case.build()
    model = CharacterizedOperatorModel()
    result = SdcScheduler(model, clock_period_ps=case.clock_period_ps).schedule(graph)
    matrix = DelayMatrix(graph, result.delay_matrix.copy(), dict(result.index_of))
    config = IsdcConfig(clock_period_ps=case.clock_period_ps,
                        subgraphs_per_iteration=16)
    subgraphs = SubgraphExtractor(config).extract(result.schedule, matrix)
    feedback = FeedbackEngine().evaluate(graph, subgraphs)
    for record in feedback:
        matrix.update_with_subgraph(record.node_ids, record.delay_ps)
    return graph, result.schedule, matrix


@pytest.mark.benchmark(group="reformulation")
@pytest.mark.parametrize("method", ["alg2_quadratic", "floyd_warshall_cubic"])
def test_reformulation_accuracy(benchmark, method):
    graph, schedule, matrix = _prepare()
    flow = SynthesisFlow()
    naive_error = _stage_error(graph, schedule, matrix.copy(), flow)

    def reformulate():
        working = matrix.copy()
        if method == "alg2_quadratic":
            propagate_delays(working)
        else:
            floyd_warshall_refine(working)
        return working

    refined = benchmark(reformulate)
    refined_error = _stage_error(graph, schedule, refined, flow)

    print(f"\n{method}: naive error {naive_error:.1%} -> refined error "
          f"{refined_error:.1%}")

    # Both reformulations keep the estimates at least as accurate as not
    # propagating the feedback at all, and remain within a sane error band.
    assert refined_error <= naive_error + 0.05
    assert refined_error < 1.0
