"""Fig. 6: path vs. cone vs. window subgraph expansion.

Under the fanout-driven ranking, the paper finds cone/window expansions
escape the local minima that trap the path-based expansion, with windows
having a slight edge overall.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig5 import format_ablation
from repro.experiments.fig6 import run_expansion_ablation


@pytest.mark.benchmark(group="fig6")
def test_fig6_window_ablation(benchmark, scale):
    if scale == "full":
        counts, iterations = (4, 8, 16), 30
    else:
        counts, iterations = (8,), 8

    curves = benchmark.pedantic(
        run_expansion_ablation,
        kwargs={"subgraph_counts": counts, "iterations": iterations},
        rounds=1, iterations=1)

    print()
    print(format_ablation(curves))

    # --- Shape assertions (paper Fig. 6) --------------------------------------
    for count in counts:
        path = curves[("path", count)]
        cone = curves[("cone", count)]
        window = curves[("window", count)]
        assert path.registers[0] == cone.registers[0] == window.registers[0]
        # Cone/window reach register usage no worse than the path expansion.
        assert cone.final_registers <= path.final_registers
        assert window.final_registers <= path.final_registers
        # Window is at least as good as cone (the paper reports a slight edge).
        assert window.final_registers <= cone.final_registers + \
            0.05 * max(1, cone.final_registers)
