"""Reference interpreter for the word-level IR.

Evaluates a dataflow graph on concrete integer inputs.  This is the golden
model the gate-level lowering is validated against (both in the unit tests
and in the hypothesis property tests): for any graph and any inputs, the
lowered netlist's simulation must agree with this interpreter bit-for-bit.
"""

from __future__ import annotations

from typing import Mapping

from repro.ir.analysis import topological_order
from repro.ir.graph import DataflowGraph
from repro.ir.node import Node
from repro.ir.ops import OpKind


def _mask(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


def _to_signed(value: int, width: int) -> int:
    value = _mask(value, width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def evaluate_graph(graph: DataflowGraph, inputs: Mapping[str, int] | Mapping[int, int]
                   ) -> dict[int, int]:
    """Evaluate every node of ``graph`` for the given primary-input values.

    Args:
        graph: the dataflow graph.
        inputs: parameter values, keyed either by parameter name or by node id.

    Returns:
        Mapping from node id to the node's (masked) integer result.

    Raises:
        KeyError: if a parameter has no supplied value.
    """
    by_id: dict[int, int] = {}
    by_name: dict[str, int] = {}
    for key, value in inputs.items():
        if isinstance(key, str):
            by_name[key] = int(value)
        else:
            by_id[int(key)] = int(value)

    values: dict[int, int] = {}
    for node_id in topological_order(graph):
        node = graph.node(node_id)
        values[node_id] = _evaluate_node(graph, node, values, by_id, by_name)
    return values


def evaluate_outputs(graph: DataflowGraph, inputs: Mapping[str, int] | Mapping[int, int]
                     ) -> dict[str, int]:
    """Evaluate the graph and return only its primary outputs, keyed by name."""
    values = evaluate_graph(graph, inputs)
    return {node.name: values[node.node_id] for node in graph.outputs()}


def _evaluate_node(graph: DataflowGraph, node: Node, values: dict[int, int],
                   by_id: Mapping[int, int], by_name: Mapping[str, int]) -> int:
    kind = node.kind
    width = node.width
    operands = [values[o] for o in node.operands]
    operand_widths = [graph.node(o).width for o in node.operands]

    if kind is OpKind.PARAM:
        if node.node_id in by_id:
            return _mask(by_id[node.node_id], width)
        if node.name in by_name:
            return _mask(by_name[node.name], width)
        raise KeyError(f"no value supplied for parameter {node.name!r}")
    if kind is OpKind.CONSTANT:
        return _mask(int(node.attrs["value"]), width)
    if kind in (OpKind.OUTPUT, OpKind.IDENTITY, OpKind.ZERO_EXT):
        return _mask(operands[0], width)
    if kind is OpKind.SIGN_EXT:
        return _mask(_to_signed(operands[0], operand_widths[0]), width)
    if kind is OpKind.BIT_SLICE:
        start = int(node.attrs.get("start", 0))
        return _mask(operands[0] >> start, width)
    if kind is OpKind.CONCAT:
        result = 0
        for value, value_width in zip(operands, operand_widths):
            result = (result << value_width) | _mask(value, value_width)
        return _mask(result, width)

    if kind is OpKind.ADD:
        return _mask(operands[0] + operands[1], width)
    if kind is OpKind.SUB:
        return _mask(operands[0] - operands[1], width)
    if kind is OpKind.NEG:
        return _mask(-operands[0], width)
    if kind is OpKind.MUL:
        return _mask(operands[0] * operands[1], width)
    if kind is OpKind.MULADD:
        return _mask(operands[0] * operands[1] + operands[2], width)
    if kind is OpKind.UDIV:
        return _mask(operands[0] // operands[1], width) if operands[1] else _mask(-1, width)
    if kind is OpKind.UMOD:
        return _mask(operands[0] % operands[1], width) if operands[1] else _mask(operands[0], width)

    if kind is OpKind.AND:
        result = operands[0]
        for value in operands[1:]:
            result &= value
        return _mask(result, width)
    if kind is OpKind.OR:
        result = operands[0]
        for value in operands[1:]:
            result |= value
        return _mask(result, width)
    if kind is OpKind.XOR:
        result = operands[0]
        for value in operands[1:]:
            result ^= value
        return _mask(result, width)
    if kind is OpKind.NOT:
        return _mask(~operands[0], width)
    if kind is OpKind.ANDN:
        return _mask(operands[0] & ~operands[1], width)

    if kind is OpKind.AND_REDUCE:
        return 1 if operands[0] == (1 << operand_widths[0]) - 1 else 0
    if kind is OpKind.OR_REDUCE:
        return 1 if operands[0] != 0 else 0
    if kind is OpKind.XOR_REDUCE:
        return bin(operands[0]).count("1") & 1

    if kind in (OpKind.SHL, OpKind.SHRL, OpKind.SHRA, OpKind.ROTL, OpKind.ROTR):
        return _evaluate_shift(kind, operands[0], operands[1],
                               operand_widths[0], width)

    if kind is OpKind.EQ:
        return 1 if operands[0] == operands[1] else 0
    if kind is OpKind.NE:
        return 1 if operands[0] != operands[1] else 0
    if kind is OpKind.ULT:
        return 1 if operands[0] < operands[1] else 0
    if kind is OpKind.ULE:
        return 1 if operands[0] <= operands[1] else 0
    if kind is OpKind.UGT:
        return 1 if operands[0] > operands[1] else 0
    if kind is OpKind.UGE:
        return 1 if operands[0] >= operands[1] else 0
    if kind is OpKind.SLT:
        return 1 if _to_signed(operands[0], operand_widths[0]) < \
            _to_signed(operands[1], operand_widths[1]) else 0
    if kind is OpKind.SGT:
        return 1 if _to_signed(operands[0], operand_widths[0]) > \
            _to_signed(operands[1], operand_widths[1]) else 0

    if kind is OpKind.SEL:
        return _mask(operands[1] if operands[0] & 1 else operands[2], width)
    if kind is OpKind.CLZ:
        leading = 0
        for bit in range(operand_widths[0] - 1, -1, -1):
            if operands[0] & (1 << bit):
                break
            leading += 1
        return _mask(leading, width)
    if kind is OpKind.POPCOUNT:
        return _mask(bin(operands[0]).count("1"), width)

    raise NotImplementedError(f"no interpretation for opcode {kind.value}")


def _evaluate_shift(kind: OpKind, value: int, amount: int, value_width: int,
                    result_width: int) -> int:
    # The barrel-shifter lowering only consumes the shift-amount bits that
    # address positions inside the word; mirror that here so the interpreter
    # and the netlist agree for out-of-range amounts.
    max_stage = max(1, (result_width - 1).bit_length())
    amount = amount & ((1 << max_stage) - 1)
    if kind in (OpKind.ROTL, OpKind.ROTR):
        amount %= result_width
    value = value & ((1 << result_width) - 1)
    if kind is OpKind.SHL:
        return _mask(value << amount, result_width)
    if kind is OpKind.SHRL:
        return _mask(value >> amount, result_width)
    if kind is OpKind.SHRA:
        signed = _to_signed(value, result_width)
        return _mask(signed >> amount, result_width)
    if kind is OpKind.ROTL:
        return _mask((value << amount) | (value >> (result_width - amount)),
                     result_width) if amount else value
    # ROTR
    return _mask((value >> amount) | (value << (result_width - amount)),
                 result_width) if amount else value
