"""Reference interpreter for the word-level IR.

Evaluates a dataflow graph on concrete integer inputs.  This is the golden
model the gate-level lowering is validated against (both in the unit tests
and in the hypothesis property tests): for any graph and any inputs, the
lowered netlist's simulation must agree with this interpreter bit-for-bit.

For pipelined loops two execution models live here:

* :func:`evaluate_loop` -- the golden *sequential* semantics: iterations
  run one after another, each ``phi`` reading its init value for the first
  ``distance`` iterations and the back-edge source's value from
  ``distance`` iterations ago afterwards.
* :func:`simulate_pipelined_loop` -- the *cycle-accurate* overlapped
  execution implied by a schedule and an initiation interval: iteration
  ``i`` issues at cycle ``II * i``, a node runs in cycle
  ``II * i + stage(node)``, and every loop-carried read is checked against
  the cycle its producer's register actually holds the value.  A schedule
  is correct exactly when this simulation reproduces the sequential model.
"""

from __future__ import annotations

from typing import Mapping

from repro.ir.analysis import topological_order
from repro.ir.graph import DataflowGraph
from repro.ir.node import Node
from repro.ir.ops import OpKind


def _mask(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


def _to_signed(value: int, width: int) -> int:
    value = _mask(value, width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def evaluate_graph(graph: DataflowGraph, inputs: Mapping[str, int] | Mapping[int, int]
                   ) -> dict[int, int]:
    """Evaluate every node of ``graph`` for the given primary-input values.

    Args:
        graph: the dataflow graph.
        inputs: parameter values, keyed either by parameter name or by node id.

    Returns:
        Mapping from node id to the node's (masked) integer result.

    Raises:
        KeyError: if a parameter has no supplied value.
    """
    by_id: dict[int, int] = {}
    by_name: dict[str, int] = {}
    for key, value in inputs.items():
        if isinstance(key, str):
            by_name[key] = int(value)
        else:
            by_id[int(key)] = int(value)

    values: dict[int, int] = {}
    for node_id in topological_order(graph):
        node = graph.node(node_id)
        values[node_id] = _evaluate_node(graph, node, values, by_id, by_name)
    return values


def evaluate_outputs(graph: DataflowGraph, inputs: Mapping[str, int] | Mapping[int, int]
                     ) -> dict[str, int]:
    """Evaluate the graph and return only its primary outputs, keyed by name."""
    values = evaluate_graph(graph, inputs)
    return {node.name: values[node.node_id] for node in graph.outputs()}


def _evaluate_node(graph: DataflowGraph, node: Node, values: dict[int, int],
                   by_id: Mapping[int, int], by_name: Mapping[str, int]) -> int:
    kind = node.kind
    width = node.width
    operands = [values[o] for o in node.operands]
    operand_widths = [graph.node(o).width for o in node.operands]

    if kind is OpKind.PARAM:
        if node.node_id in by_id:
            return _mask(by_id[node.node_id], width)
        if node.name in by_name:
            return _mask(by_name[node.name], width)
        raise KeyError(f"no value supplied for parameter {node.name!r}")
    if kind is OpKind.CONSTANT:
        return _mask(int(node.attrs["value"]), width)
    if kind in (OpKind.OUTPUT, OpKind.IDENTITY, OpKind.ZERO_EXT):
        return _mask(operands[0], width)
    if kind is OpKind.PHI:
        # Outside a loop context a phi yields its init operand; the loop
        # interpreters override this with the carried value once the
        # iteration index reaches the back-edge distance.
        return _mask(operands[0], width)
    if kind is OpKind.SIGN_EXT:
        return _mask(_to_signed(operands[0], operand_widths[0]), width)
    if kind is OpKind.BIT_SLICE:
        start = int(node.attrs.get("start", 0))
        return _mask(operands[0] >> start, width)
    if kind is OpKind.CONCAT:
        result = 0
        for value, value_width in zip(operands, operand_widths):
            result = (result << value_width) | _mask(value, value_width)
        return _mask(result, width)

    if kind is OpKind.ADD:
        return _mask(operands[0] + operands[1], width)
    if kind is OpKind.SUB:
        return _mask(operands[0] - operands[1], width)
    if kind is OpKind.NEG:
        return _mask(-operands[0], width)
    if kind is OpKind.MUL:
        return _mask(operands[0] * operands[1], width)
    if kind is OpKind.MULADD:
        return _mask(operands[0] * operands[1] + operands[2], width)
    if kind is OpKind.UDIV:
        return _mask(operands[0] // operands[1], width) if operands[1] else _mask(-1, width)
    if kind is OpKind.UMOD:
        return _mask(operands[0] % operands[1], width) if operands[1] else _mask(operands[0], width)

    if kind is OpKind.AND:
        result = operands[0]
        for value in operands[1:]:
            result &= value
        return _mask(result, width)
    if kind is OpKind.OR:
        result = operands[0]
        for value in operands[1:]:
            result |= value
        return _mask(result, width)
    if kind is OpKind.XOR:
        result = operands[0]
        for value in operands[1:]:
            result ^= value
        return _mask(result, width)
    if kind is OpKind.NOT:
        return _mask(~operands[0], width)
    if kind is OpKind.ANDN:
        return _mask(operands[0] & ~operands[1], width)

    if kind is OpKind.AND_REDUCE:
        return 1 if operands[0] == (1 << operand_widths[0]) - 1 else 0
    if kind is OpKind.OR_REDUCE:
        return 1 if operands[0] != 0 else 0
    if kind is OpKind.XOR_REDUCE:
        return bin(operands[0]).count("1") & 1

    if kind in (OpKind.SHL, OpKind.SHRL, OpKind.SHRA, OpKind.ROTL, OpKind.ROTR):
        return _evaluate_shift(kind, operands[0], operands[1],
                               operand_widths[0], width)

    if kind is OpKind.EQ:
        return 1 if operands[0] == operands[1] else 0
    if kind is OpKind.NE:
        return 1 if operands[0] != operands[1] else 0
    if kind is OpKind.ULT:
        return 1 if operands[0] < operands[1] else 0
    if kind is OpKind.ULE:
        return 1 if operands[0] <= operands[1] else 0
    if kind is OpKind.UGT:
        return 1 if operands[0] > operands[1] else 0
    if kind is OpKind.UGE:
        return 1 if operands[0] >= operands[1] else 0
    if kind is OpKind.SLT:
        return 1 if _to_signed(operands[0], operand_widths[0]) < \
            _to_signed(operands[1], operand_widths[1]) else 0
    if kind is OpKind.SGT:
        return 1 if _to_signed(operands[0], operand_widths[0]) > \
            _to_signed(operands[1], operand_widths[1]) else 0

    if kind is OpKind.SEL:
        return _mask(operands[1] if operands[0] & 1 else operands[2], width)
    if kind is OpKind.CLZ:
        leading = 0
        for bit in range(operand_widths[0] - 1, -1, -1):
            if operands[0] & (1 << bit):
                break
            leading += 1
        return _mask(leading, width)
    if kind is OpKind.POPCOUNT:
        return _mask(bin(operands[0]).count("1"), width)

    raise NotImplementedError(f"no interpretation for opcode {kind.value}")


def _normalize_loop_inputs(inputs: Mapping[str, object] | Mapping[int, object],
                           iterations: int) -> list[tuple[dict[int, int], dict[str, int]]]:
    """Expand loop inputs into one ``(by_id, by_name)`` frame per iteration.

    Each input value may be a plain ``int`` (held constant across
    iterations) or a sequence with at least ``iterations`` entries (a new
    value every iteration, i.e. a streaming input).

    Raises:
        ValueError: if a sequence input is shorter than ``iterations``.
    """
    series_by_id: dict[int, list[int]] = {}
    series_by_name: dict[str, list[int]] = {}
    for key, value in inputs.items():
        if isinstance(value, int):
            series = [int(value)] * iterations
        else:
            series = [int(v) for v in value]  # type: ignore[union-attr]
            if len(series) < iterations:
                raise ValueError(
                    f"input {key!r} supplies {len(series)} values for "
                    f"{iterations} iterations")
        if isinstance(key, str):
            series_by_name[key] = series
        else:
            series_by_id[int(key)] = series
    return [({k: v[i] for k, v in series_by_id.items()},
             {k: v[i] for k, v in series_by_name.items()})
            for i in range(iterations)]


def evaluate_loop(graph: DataflowGraph,
                  inputs: Mapping[str, object] | Mapping[int, object],
                  iterations: int) -> list[dict[int, int]]:
    """Golden sequential semantics of a pipelined-loop graph.

    Runs ``iterations`` loop iterations one after another.  A ``phi`` node
    with back-edge ``src`` at distance ``d`` yields its init operand's
    value for iterations ``i < d`` and ``src``'s value from iteration
    ``i - d`` afterwards.  Feed-forward graphs (no back-edges) simply
    evaluate ``iterations`` times.

    Args:
        graph: the dataflow graph (may contain phis/back-edges).
        inputs: parameter values keyed by name or node id; each either an
            ``int`` (constant across iterations) or a per-iteration sequence.
        iterations: number of loop iterations to execute (>= 1).

    Returns:
        One ``{node_id: value}`` mapping per iteration.

    Raises:
        ValueError: on a non-positive iteration count or short input series.
    """
    if int(iterations) < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    order = topological_order(graph)
    frames = _normalize_loop_inputs(inputs, iterations)
    history: list[dict[int, int]] = []
    for i in range(iterations):
        by_id, by_name = frames[i]
        values: dict[int, int] = {}
        for node_id in order:
            node = graph.node(node_id)
            edge = graph.back_edge_of(node_id)
            if node.kind is OpKind.PHI and edge is not None \
                    and i >= edge.distance:
                values[node_id] = _mask(history[i - edge.distance][edge.src],
                                        node.width)
            else:
                values[node_id] = _evaluate_node(graph, node, values, by_id,
                                                 by_name)
        history.append(values)
    return history


def evaluate_loop_outputs(graph: DataflowGraph,
                          inputs: Mapping[str, object] | Mapping[int, object],
                          iterations: int) -> list[dict[str, int]]:
    """Like :func:`evaluate_loop` but returns only primary outputs by name."""
    history = evaluate_loop(graph, inputs, iterations)
    outputs = graph.outputs()
    return [{node.name: values[node.node_id] for node in outputs}
            for values in history]


def simulate_pipelined_loop(graph: DataflowGraph, stages: Mapping[int, int],
                            ii: int,
                            inputs: Mapping[str, object] | Mapping[int, object],
                            iterations: int) -> list[dict[int, int]]:
    """Cycle-accurate execution of a schedule at a given initiation interval.

    Iteration ``i`` issues at cycle ``ii * i``; node ``n`` computes during
    cycle ``ii * i + stages[n]`` and its result is registered at the end of
    that cycle (available to *later* cycles; forward operands in the same
    stage chain combinationally).  A loop-carried read checks that the
    producing iteration's register already holds the value -- if the
    schedule violates ``stage(src) - stage(phi) <= ii * distance - 1`` the
    simulation raises instead of silently reading a stale value.

    Returns:
        One ``{node_id: value}`` mapping per iteration, directly comparable
        to :func:`evaluate_loop`'s result.

    Raises:
        ValueError: on non-positive ``ii``/``iterations``, a node missing
            from ``stages``, a forward operand scheduled after its consumer,
            or a loop-carried value that is not yet available at its read
            cycle.
    """
    if int(ii) < 1:
        raise ValueError(f"initiation interval must be >= 1, got {ii}")
    if int(iterations) < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    order = topological_order(graph)
    for node_id in order:
        if node_id not in stages:
            raise ValueError(
                f"node {node_id} missing from the schedule for graph "
                f"{graph.name!r}")
    frames = _normalize_loop_inputs(inputs, iterations)

    # (iteration, node_id) -> (first cycle the registered value is readable,
    # value).  Only back-edge sources need remembering across iterations,
    # but keeping every node is simpler and the graphs are small.
    registered: dict[tuple[int, int], tuple[int, int]] = {}
    history: list[dict[int, int]] = []
    for i in range(iterations):
        issue_cycle = ii * i
        by_id, by_name = frames[i]
        values: dict[int, int] = {}
        for node_id in order:
            node = graph.node(node_id)
            compute_cycle = issue_cycle + stages[node_id]
            edge = graph.back_edge_of(node_id)
            if node.kind is OpKind.PHI and edge is not None \
                    and i >= edge.distance:
                ready_cycle, carried = registered[(i - edge.distance, edge.src)]
                if ready_cycle > compute_cycle:
                    raise ValueError(
                        f"loop-carried value {edge.src} -> phi {node_id} is "
                        f"registered at cycle {ready_cycle} but read at "
                        f"cycle {compute_cycle} (iteration {i}, II {ii})")
                values[node_id] = _mask(carried, node.width)
            else:
                for operand in node.operands:
                    if stages[operand] > stages[node_id]:
                        raise ValueError(
                            f"operand {operand} of node {node_id} is "
                            f"scheduled after its consumer")
                values[node_id] = _evaluate_node(graph, node, values, by_id,
                                                 by_name)
            registered[(i, node_id)] = (compute_cycle + 1, values[node_id])
        history.append(values)
    return history


def _evaluate_shift(kind: OpKind, value: int, amount: int, value_width: int,
                    result_width: int) -> int:
    # The barrel-shifter lowering only consumes the shift-amount bits that
    # address positions inside the word; mirror that here so the interpreter
    # and the netlist agree for out-of-range amounts.
    max_stage = max(1, (result_width - 1).bit_length())
    amount = amount & ((1 << max_stage) - 1)
    if kind in (OpKind.ROTL, OpKind.ROTR):
        amount %= result_width
    value = value & ((1 << result_width) - 1)
    if kind is OpKind.SHL:
        return _mask(value << amount, result_width)
    if kind is OpKind.SHRL:
        return _mask(value >> amount, result_width)
    if kind is OpKind.SHRA:
        signed = _to_signed(value, result_width)
        return _mask(signed >> amount, result_width)
    if kind is OpKind.ROTL:
        return _mask((value << amount) | (value >> (result_width - amount)),
                     result_width) if amount else value
    # ROTR
    return _mask((value >> amount) | (value << (result_width - amount)),
                 result_width) if amount else value
