"""Structural verification of dataflow graphs."""

from __future__ import annotations

from repro.ir.graph import DataflowGraph
from repro.ir.ops import OpKind, signature_of
from repro.ir.analysis import topological_order


class IRVerificationError(Exception):
    """Raised when a dataflow graph violates a structural invariant."""


def verify_graph(graph: DataflowGraph) -> None:
    """Check structural invariants of ``graph``.

    Verified properties:

    * the graph is acyclic;
    * every operand reference resolves to an existing node;
    * operand counts respect each opcode's signature;
    * every node has a positive bit width;
    * constants carry a ``value`` attribute that fits in their width;
    * bit slices stay within their operand's width.

    Raises:
        IRVerificationError: describing the first violation found.
    """
    try:
        topological_order(graph)
    except ValueError as exc:
        raise IRVerificationError(str(exc)) from exc

    for node in graph.nodes():
        signature = signature_of(node.kind)
        count = len(node.operands)
        if count < signature.min_operands:
            raise IRVerificationError(
                f"{graph.name}:{node.name}: {node.kind.value} needs at least "
                f"{signature.min_operands} operands, has {count}")
        if signature.max_operands is not None and count > signature.max_operands:
            raise IRVerificationError(
                f"{graph.name}:{node.name}: {node.kind.value} accepts at most "
                f"{signature.max_operands} operands, has {count}")
        for operand in node.operands:
            if operand not in graph:
                raise IRVerificationError(
                    f"{graph.name}:{node.name}: dangling operand node {operand}")
        if node.width <= 0:
            raise IRVerificationError(
                f"{graph.name}:{node.name}: non-positive width {node.width}")
        if node.kind is OpKind.CONSTANT:
            value = node.attrs.get("value")
            if value is None:
                raise IRVerificationError(
                    f"{graph.name}:{node.name}: constant without a value")
            if value < 0 or value >= (1 << node.width):
                raise IRVerificationError(
                    f"{graph.name}:{node.name}: constant {value} does not fit in "
                    f"{node.width} bits")
        if node.kind is OpKind.BIT_SLICE:
            start = int(node.attrs.get("start", 0))
            operand_width = graph.node(node.operands[0]).width
            if start < 0 or start + node.width > operand_width:
                raise IRVerificationError(
                    f"{graph.name}:{node.name}: slice [{start}, {start + node.width}) "
                    f"out of range for {operand_width}-bit operand")
