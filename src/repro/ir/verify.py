"""Structural verification of dataflow graphs and II schedules."""

from __future__ import annotations

from typing import Mapping

from repro.ir.graph import DataflowGraph
from repro.ir.ops import OpKind, signature_of
from repro.ir.analysis import topological_order


class IRVerificationError(Exception):
    """Raised when a dataflow graph violates a structural invariant."""


def verify_graph(graph: DataflowGraph) -> None:
    """Check structural invariants of ``graph``.

    Verified properties:

    * the forward graph (back-edges excluded) is acyclic;
    * every operand reference resolves to an existing node;
    * operand counts respect each opcode's signature;
    * every node has a positive bit width;
    * constants carry a ``value`` attribute that fits in their width;
    * bit slices stay within their operand's width;
    * every ``phi`` node carries exactly one back-edge with positive
      distance, every back-edge targets a ``phi``, and the carried value's
      width matches the phi's.

    Raises:
        IRVerificationError: describing the first violation found.
    """
    try:
        topological_order(graph)
    except ValueError as exc:
        raise IRVerificationError(str(exc)) from exc

    for edge in graph.back_edges():
        if edge.src not in graph:
            raise IRVerificationError(
                f"{graph.name}: back-edge of phi {edge.phi} names missing "
                f"source node {edge.src}")
        if edge.distance < 1:
            raise IRVerificationError(
                f"{graph.name}: back-edge of phi {edge.phi} has "
                f"non-positive distance {edge.distance}")
        phi = graph.node(edge.phi)
        src = graph.node(edge.src)
        if src.width != phi.width:
            raise IRVerificationError(
                f"{graph.name}:{phi.name}: back-edge carries a "
                f"{src.width}-bit value into a {phi.width}-bit phi")

    for node in graph.nodes():
        signature = signature_of(node.kind)
        count = len(node.operands)
        if count < signature.min_operands:
            raise IRVerificationError(
                f"{graph.name}:{node.name}: {node.kind.value} needs at least "
                f"{signature.min_operands} operands, has {count}")
        if signature.max_operands is not None and count > signature.max_operands:
            raise IRVerificationError(
                f"{graph.name}:{node.name}: {node.kind.value} accepts at most "
                f"{signature.max_operands} operands, has {count}")
        for operand in node.operands:
            if operand not in graph:
                raise IRVerificationError(
                    f"{graph.name}:{node.name}: dangling operand node {operand}")
        if node.width <= 0:
            raise IRVerificationError(
                f"{graph.name}:{node.name}: non-positive width {node.width}")
        if node.kind is OpKind.CONSTANT:
            value = node.attrs.get("value")
            if value is None:
                raise IRVerificationError(
                    f"{graph.name}:{node.name}: constant without a value")
            if value < 0 or value >= (1 << node.width):
                raise IRVerificationError(
                    f"{graph.name}:{node.name}: constant {value} does not fit in "
                    f"{node.width} bits")
        if node.kind is OpKind.BIT_SLICE:
            start = int(node.attrs.get("start", 0))
            operand_width = graph.node(node.operands[0]).width
            if start < 0 or start + node.width > operand_width:
                raise IRVerificationError(
                    f"{graph.name}:{node.name}: slice [{start}, {start + node.width}) "
                    f"out of range for {operand_width}-bit operand")
        if node.kind is OpKind.PHI and graph.back_edge_of(node.node_id) is None:
            raise IRVerificationError(
                f"{graph.name}:{node.name}: phi node without a loop "
                f"back-edge")


def verify_ii_schedule(graph: DataflowGraph, stages: Mapping[int, int],
                       ii: int, iterations: int = 4,
                       num_vectors: int = 3) -> None:
    """Check that an II schedule respects both constraints *and* semantics.

    Structural checks: every node is scheduled, forward dependencies never
    run backwards, and each back-edge ``src -> phi`` at distance ``d``
    satisfies ``stage(src) - stage(phi) <= ii * d - 1`` (the carried value
    passes through its loop register before iteration ``i + d`` reads it).

    Semantic check: the schedule is executed cycle-accurately with
    iterations issued every ``ii`` cycles
    (:func:`~repro.ir.interpreter.simulate_pipelined_loop`) on a few
    deterministic pseudo-random input vectors, and the produced outputs
    must equal the golden sequential loop interpreter's
    (:func:`~repro.ir.interpreter.evaluate_loop`) for every iteration.

    Raises:
        IRVerificationError: describing the first violation found.
    """
    import random

    from repro.ir.interpreter import evaluate_loop, simulate_pipelined_loop

    if int(ii) < 1:
        raise IRVerificationError(f"{graph.name}: non-positive II {ii}")
    for node in graph.nodes():
        if node.node_id not in stages:
            raise IRVerificationError(
                f"{graph.name}:{node.name}: node missing from the schedule")
        for operand in node.operands:
            if stages[operand] > stages[node.node_id]:
                raise IRVerificationError(
                    f"{graph.name}:{node.name}: operand {operand} is "
                    f"scheduled after its consumer")
    for edge in graph.back_edges():
        slack = ii * edge.distance - 1
        span = stages[edge.src] - stages[edge.phi]
        if span > slack:
            raise IRVerificationError(
                f"{graph.name}: back-edge {edge.src} -> {edge.phi} spans "
                f"{span} stages but II {ii} x distance {edge.distance} "
                f"allows only {slack}")

    rng = random.Random(0)
    params = graph.parameters()
    for _ in range(num_vectors):
        inputs = {node.name: rng.getrandbits(node.width) for node in params}
        golden = evaluate_loop(graph, inputs, iterations)
        simulated = simulate_pipelined_loop(graph, stages, ii, inputs,
                                            iterations)
        if simulated != golden:
            raise IRVerificationError(
                f"{graph.name}: pipelined execution at II {ii} diverges "
                f"from the sequential loop semantics on inputs {inputs}")
