"""Structural analyses over dataflow graphs.

These are the building blocks both the SDC scheduler and the ISDC subgraph
extractor rely on: topological orders, reachability sets, per-graph
statistics.  Everything here is pure and does not mutate the graph.

Since the unified kernel refactor these functions are thin wrappers over the
shared levelized-CSR :class:`~repro.kernel.GraphView` (cached per graph and
invalidated by ``DataflowGraph.structural_version``), so repeated analyses of
the same graph reuse one substrate instead of re-walking Python dicts.  The
outputs are unchanged: the exact deterministic Kahn order, the same sets and
depth dicts as the historical implementations (enforced by the parity tests
in ``tests/kernel/``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.ir.graph import DataflowGraph
from repro.ir.ops import OpKind
from repro.kernel import GraphView, reachable_mask


def topological_order(graph: DataflowGraph) -> list[int]:
    """Return node ids in a topological order (operands before users).

    Uses Kahn's algorithm; ties are broken by ascending node id so the order
    is deterministic.

    Raises:
        ValueError: if the graph contains a cycle.
    """
    return GraphView.from_dataflow(graph).order_ids()


def reverse_topological_order(graph: DataflowGraph) -> list[int]:
    """Return node ids in reverse topological order (users before operands)."""
    return list(reversed(topological_order(graph)))


def reachable_from(graph: DataflowGraph, node_id: int) -> set[int]:
    """Ids of all nodes reachable *downstream* from ``node_id`` (inclusive)."""
    view = GraphView.from_dataflow(graph)
    mask = reachable_mask(view, [view.index_of[node_id]])
    return {int(view.order[i]) for i in np.nonzero(mask)[0]}


def reaching_to(graph: DataflowGraph, node_id: int) -> set[int]:
    """Ids of all nodes *upstream* of ``node_id`` (inclusive)."""
    view = GraphView.from_dataflow(graph)
    mask = reachable_mask(view, [view.index_of[node_id]], backward=True)
    return {int(view.order[i]) for i in np.nonzero(mask)[0]}


def is_connected(graph: DataflowGraph, src: int, dst: int) -> bool:
    """True if there is a directed path from ``src`` to ``dst``."""
    if src == dst:
        return True
    return dst in reachable_from(graph, src)


def longest_path_lengths(graph: DataflowGraph) -> dict[int, int]:
    """Length (in edges) of the longest path from any source to each node."""
    view = GraphView.from_dataflow(graph)
    levels = view.levels
    return {nid: int(levels[i]) for i, nid in enumerate(view.order_ids())}


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics of a dataflow graph.

    Attributes:
        num_nodes: total node count (including sources and outputs).
        num_operations: nodes that are neither sources nor outputs.
        num_params: primary-input count.
        num_constants: constant-literal count.
        num_outputs: primary-output count.
        num_edges: dataflow edge count (operand references).
        total_bits: sum of result widths over operation nodes.
        max_depth: longest source-to-sink path length in edges
            (back-edges excluded).
        num_back_edges: loop back-edge count (0 for feed-forward designs).
        kind_histogram: operation count per opcode name.
    """

    num_nodes: int
    num_operations: int
    num_params: int
    num_constants: int
    num_outputs: int
    num_edges: int
    total_bits: int
    max_depth: int
    kind_histogram: dict[str, int]
    num_back_edges: int = 0


def graph_statistics(graph: DataflowGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``graph``."""
    histogram: Counter[str] = Counter()
    num_params = 0
    num_constants = 0
    num_outputs = 0
    num_edges = 0
    total_bits = 0
    for node in graph.nodes():
        histogram[node.kind.value] += 1
        num_edges += len(node.operands)
        if node.kind is OpKind.PARAM:
            num_params += 1
        elif node.kind is OpKind.CONSTANT:
            num_constants += 1
        elif node.kind is OpKind.OUTPUT:
            num_outputs += 1
        else:
            total_bits += node.width
    depths = longest_path_lengths(graph) if len(graph) else {}
    num_operations = len(graph) - num_params - num_constants - num_outputs
    return GraphStatistics(
        num_nodes=len(graph),
        num_operations=num_operations,
        num_params=num_params,
        num_constants=num_constants,
        num_outputs=num_outputs,
        num_edges=num_edges,
        total_bits=total_bits,
        max_depth=max(depths.values()) if depths else 0,
        kind_histogram=dict(histogram),
        num_back_edges=len(graph.back_edges()),
    )
