"""Word-level HLS intermediate representation.

The IR models the dataflow graph (DFG) that an HLS scheduler operates on:
typed operation nodes (additions, multiplications, shifts, selects, ...)
carrying bit widths, connected by SSA values.  It is the stand-in for the
Google XLS IR used in the paper -- scheduling only ever consumes the DAG
structure, the per-operation delay/area characterisation, and the result
bit widths, all of which this package provides.

Public entry points:

* :class:`~repro.ir.ops.OpKind` -- the opcode enumeration.
* :class:`~repro.ir.node.Node` / :class:`~repro.ir.node.Value` -- graph elements.
* :class:`~repro.ir.graph.DataflowGraph` -- the DFG container.
* :class:`~repro.ir.builder.GraphBuilder` -- convenience construction API.
* :mod:`~repro.ir.textual` -- a human-readable text format (parse / print).
* :mod:`~repro.ir.analysis` -- topological order, reachability, statistics.
* :func:`~repro.ir.verify.verify_graph` -- structural validation.
"""

from repro.ir.ops import OpKind, OpSignature, signature_of
from repro.ir.node import Node, Value
from repro.ir.graph import DataflowGraph
from repro.ir.builder import GraphBuilder
from repro.ir.analysis import (
    topological_order,
    reverse_topological_order,
    reachable_from,
    reaching_to,
    graph_statistics,
    GraphStatistics,
)
from repro.ir.verify import verify_graph, IRVerificationError
from repro.ir.textual import graph_to_text, graph_from_text
from repro.ir.interpreter import evaluate_graph, evaluate_outputs

__all__ = [
    "OpKind",
    "OpSignature",
    "signature_of",
    "Node",
    "Value",
    "DataflowGraph",
    "GraphBuilder",
    "topological_order",
    "reverse_topological_order",
    "reachable_from",
    "reaching_to",
    "graph_statistics",
    "GraphStatistics",
    "verify_graph",
    "IRVerificationError",
    "graph_to_text",
    "graph_from_text",
    "evaluate_graph",
    "evaluate_outputs",
]
