"""Human-readable text format for dataflow graphs.

The format is a flat list of SSA assignments, one node per line::

    design my_design
    n0 = param() : 32  # x
    n1 = param() : 32  # y
    n2 = add(n0, n1) : 32
    n3 = output(n2) : 32  # sum

Attributes are printed as ``key=value`` pairs inside the parentheses after
the operands, e.g. ``n4 = constant(value=7) : 8``.  The parser accepts
exactly what the printer emits, which is all the round-trip tests require.
"""

from __future__ import annotations

import re

from repro.ir.graph import DataflowGraph
from repro.ir.ops import OpKind


def graph_to_text(graph: DataflowGraph) -> str:
    """Serialise ``graph`` to the textual format."""
    lines = [f"design {graph.name}"]
    for node in graph.nodes():
        args = [f"n{operand}" for operand in node.operands]
        for key in sorted(node.attrs):
            if key == "width":
                continue
            args.append(f"{key}={node.attrs[key]}")
        arg_text = ", ".join(args)
        line = f"n{node.node_id} = {node.kind.value}({arg_text}) : {node.width}"
        default_name = f"{node.kind.value}_{node.node_id}"
        if node.name and node.name != default_name:
            line += f"  # {node.name}"
        lines.append(line)
    return "\n".join(lines) + "\n"


_LINE_RE = re.compile(
    r"^n(?P<id>\d+)\s*=\s*(?P<kind>[a-z_]+)\((?P<args>[^)]*)\)\s*:\s*(?P<width>\d+)"
    r"(?:\s*#\s*(?P<name>.*))?$")


def graph_from_text(text: str) -> DataflowGraph:
    """Parse the textual format back into a :class:`DataflowGraph`.

    Raises:
        ValueError: on malformed lines or forward references.
    """
    lines = [line.strip() for line in text.strip().splitlines() if line.strip()]
    if not lines or not lines[0].startswith("design "):
        raise ValueError("textual IR must start with a 'design <name>' line")
    graph = DataflowGraph(lines[0].split(None, 1)[1].strip())
    id_map: dict[int, int] = {}

    for line in lines[1:]:
        match = _LINE_RE.match(line)
        if not match:
            raise ValueError(f"malformed IR line: {line!r}")
        text_id = int(match.group("id"))
        kind = OpKind(match.group("kind"))
        width = int(match.group("width"))
        name = (match.group("name") or "").strip()

        operands: list[int] = []
        attrs: dict[str, object] = {}
        args = match.group("args").strip()
        if args:
            for piece in (p.strip() for p in args.split(",")):
                if "=" in piece:
                    key, _, raw = piece.partition("=")
                    raw = raw.strip()
                    try:
                        attrs[key.strip()] = int(raw)
                    except ValueError:
                        attrs[key.strip()] = raw
                elif piece.startswith("n"):
                    ref = int(piece[1:])
                    if ref not in id_map:
                        raise ValueError(f"forward reference to n{ref} in: {line!r}")
                    operands.append(id_map[ref])
                else:
                    raise ValueError(f"unrecognised operand {piece!r} in: {line!r}")

        node = graph.add_node(kind, operands, width=width, name=name, **attrs)
        id_map[text_id] = node.node_id
    return graph
