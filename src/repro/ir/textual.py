"""Human-readable text format for dataflow graphs.

The format is a flat list of SSA assignments, one node per line::

    design my_design
    clock 2500
    n0 = param() : 32  # x
    n1 = param() : 32  # y
    n2 = add(n0, n1) : 32
    n3 = output(n2) : 32  # sum

Attributes are printed as ``key=value`` pairs inside the parentheses after
the operands, e.g. ``n4 = constant(value=7) : 8``.  Names and string
attribute values that are not simple identifier tokens (whitespace, ``#``,
commas, a leading digit, ...) are JSON-quoted so that printing and parsing
are exact inverses.

Pipelined loops serialise their back-edges as trailing ``backedge`` lines::

    n2 = phi(n1) : 32  # acc
    n4 = add(n2, n0) : 32
    ...
    backedge n4 -> n2 distance=1

meaning: the value ``n4`` produces in iteration ``i`` is carried into the
phi ``n2`` of iteration ``i + 1``.

The optional ``clock <picoseconds>`` directive records the design's target
clock period for file-based ingestion (``runner campaign --design x.ir``);
:func:`graph_from_text` ignores it, :func:`parse_design_text` returns it.

The parser is a real ingestion path, not just the printer's inverse: every
diagnostic is a :class:`ValueError` naming the 1-based line number, and
malformed input (unknown opcodes, duplicate ids, forward or dangling
references, bad widths, stray tokens) is rejected explicitly rather than
surfacing ``KeyError``/``IndexError`` from the graph layer.
"""

from __future__ import annotations

import json
import re

from repro.ir.graph import DataflowGraph
from repro.ir.ops import OpKind

_SAFE_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\-./]*")

_NODE_LINE_RE = re.compile(
    r"^n(?P<id>\d+)\s*=\s*(?P<kind>[a-z_]+)\s*\((?P<args>.*)\)\s*:\s*"
    r"(?P<width>\d+)\s*(?:#\s*(?P<name>.*))?$")

_BACKEDGE_LINE_RE = re.compile(
    r"^backedge\s+n(?P<src>\d+)\s*->\s*n(?P<phi>\d+)\s+"
    r"distance\s*=\s*(?P<distance>-?\d+)\s*$")

_OPERAND_RE = re.compile(r"n\d+")


def _quote(value: str) -> str:
    """Render a name/string verbatim when safe, JSON-quoted otherwise."""
    if _SAFE_TOKEN_RE.fullmatch(value):
        return value
    return json.dumps(value)


def _format_attr_value(key: str, value: object) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return _quote(value)
    raise ValueError(
        f"attribute {key!r} has unserialisable type {type(value).__name__}")


def graph_to_text(graph: DataflowGraph) -> str:
    """Serialise ``graph`` to the textual format.

    Raises:
        ValueError: if an attribute value is neither ``int`` nor ``str``.
    """
    lines = [f"design {_quote(graph.name)}"]
    for node in graph.nodes():
        args = [f"n{operand}" for operand in node.operands]
        for key in sorted(node.attrs):
            if key == "width":
                continue
            args.append(f"{key}={_format_attr_value(key, node.attrs[key])}")
        arg_text = ", ".join(args)
        line = f"n{node.node_id} = {node.kind.value}({arg_text}) : {node.width}"
        default_name = f"{node.kind.value}_{node.node_id}"
        if node.name and node.name != default_name:
            line += f"  # {_quote(node.name)}"
        lines.append(line)
    for edge in graph.back_edges():
        lines.append(f"backedge n{edge.src} -> n{edge.phi} "
                     f"distance={edge.distance}")
    return "\n".join(lines) + "\n"


def _parse_quoted(raw: str, line_no: int, what: str) -> str:
    try:
        value = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"line {line_no}: malformed quoted {what} {raw!r}: {exc}") from None
    if not isinstance(value, str):
        raise ValueError(
            f"line {line_no}: quoted {what} {raw!r} is not a string")
    return value


def _split_args(args: str, line_no: int) -> list[str]:
    """Split an argument list on commas, respecting JSON-quoted strings."""
    pieces: list[str] = []
    current: list[str] = []
    in_string = False
    escape = False
    for ch in args:
        if in_string:
            current.append(ch)
            if escape:
                escape = False
            elif ch == "\\":
                escape = True
            elif ch == '"':
                in_string = False
        elif ch == '"':
            in_string = True
            current.append(ch)
        elif ch == ",":
            pieces.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if in_string:
        raise ValueError(f"line {line_no}: unterminated string in arguments")
    tail = "".join(current).strip()
    if pieces or tail:
        pieces.append(tail)
    if any(not piece for piece in pieces):
        raise ValueError(f"line {line_no}: empty argument in list {args!r}")
    return pieces


def _parse_attr_value(raw: str, line_no: int) -> object:
    if raw.startswith('"'):
        return _parse_quoted(raw, line_no, "attribute value")
    try:
        return int(raw)
    except ValueError:
        pass
    if _SAFE_TOKEN_RE.fullmatch(raw):
        return raw
    raise ValueError(f"line {line_no}: malformed attribute value {raw!r}")


def _parse_name(raw: str, line_no: int) -> str:
    raw = raw.strip()
    if raw.startswith('"'):
        return _parse_quoted(raw, line_no, "name")
    return raw


def parse_design_text(text: str) -> tuple[DataflowGraph, float | None]:
    """Parse the textual format, returning the graph and its clock directive.

    Returns:
        ``(graph, clock_period_ps)`` where the clock is ``None`` when the
        file carries no ``clock`` directive.

    Raises:
        ValueError: on any malformed input, always naming the 1-based line
            number of the offending line.  The parser never lets
            ``KeyError``/``IndexError`` escape from the graph layer.
    """
    graph: DataflowGraph | None = None
    clock_ps: float | None = None
    id_map: dict[int, int] = {}

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("//"):
            continue

        if graph is None:
            if not line.startswith("design"):
                raise ValueError(
                    f"line {line_no}: textual IR must start with a "
                    f"'design <name>' line, got {line!r}")
            rest = line[len("design"):].strip()
            if not rest:
                raise ValueError(f"line {line_no}: design line without a name")
            graph = DataflowGraph(_parse_name(rest, line_no))
            continue

        if line.startswith("design"):
            raise ValueError(f"line {line_no}: duplicate 'design' line")

        if line.startswith("clock"):
            rest = line[len("clock"):].strip()
            if clock_ps is not None:
                raise ValueError(f"line {line_no}: duplicate 'clock' line")
            try:
                clock_ps = float(rest)
            except ValueError:
                raise ValueError(
                    f"line {line_no}: malformed clock period {rest!r}") from None
            if not clock_ps > 0:
                raise ValueError(
                    f"line {line_no}: clock period must be positive, "
                    f"got {clock_ps}")
            continue

        if line.startswith("backedge"):
            match = _BACKEDGE_LINE_RE.match(line)
            if not match:
                raise ValueError(
                    f"line {line_no}: malformed backedge line {line!r} "
                    f"(expected 'backedge nSRC -> nPHI distance=D')")
            src_ref = int(match.group("src"))
            phi_ref = int(match.group("phi"))
            distance = int(match.group("distance"))
            for ref in (src_ref, phi_ref):
                if ref not in id_map:
                    raise ValueError(
                        f"line {line_no}: backedge references undefined "
                        f"node n{ref}")
            try:
                graph.add_back_edge(id_map[phi_ref], id_map[src_ref], distance)
            except (ValueError, KeyError) as exc:
                raise ValueError(f"line {line_no}: {exc}") from None
            continue

        match = _NODE_LINE_RE.match(line)
        if not match:
            raise ValueError(f"line {line_no}: malformed IR line {line!r}")
        text_id = int(match.group("id"))
        if text_id in id_map:
            raise ValueError(f"line {line_no}: duplicate node id n{text_id}")
        try:
            kind = OpKind(match.group("kind"))
        except ValueError:
            raise ValueError(
                f"line {line_no}: unknown opcode "
                f"{match.group('kind')!r}") from None
        width = int(match.group("width"))
        if width <= 0:
            raise ValueError(f"line {line_no}: non-positive width {width}")
        name = _parse_name(match.group("name") or "", line_no)

        operands: list[int] = []
        attrs: dict[str, object] = {}
        for piece in _split_args(match.group("args"), line_no):
            if "=" in piece and not piece.startswith('"'):
                key, _, raw = piece.partition("=")
                key = key.strip()
                raw = raw.strip()
                if not _SAFE_TOKEN_RE.fullmatch(key):
                    raise ValueError(
                        f"line {line_no}: malformed attribute key {key!r}")
                if key == "width":
                    raise ValueError(
                        f"line {line_no}: 'width' attribute is not allowed; "
                        f"use the ': <width>' suffix")
                if key in attrs:
                    raise ValueError(
                        f"line {line_no}: duplicate attribute {key!r}")
                attrs[key] = _parse_attr_value(raw, line_no)
            elif _OPERAND_RE.fullmatch(piece):
                ref = int(piece[1:])
                if ref not in id_map:
                    raise ValueError(
                        f"line {line_no}: reference to undefined node "
                        f"n{ref} (forward references are not allowed)")
                operands.append(id_map[ref])
            else:
                raise ValueError(
                    f"line {line_no}: unrecognised argument {piece!r}")

        try:
            node = graph.add_node(kind, operands, width=width, name=name,
                                  **attrs)
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(f"line {line_no}: {exc}") from None
        id_map[text_id] = node.node_id

    if graph is None:
        raise ValueError("textual IR must start with a 'design <name>' line")
    return graph, clock_ps


def graph_from_text(text: str) -> DataflowGraph:
    """Parse the textual format back into a :class:`DataflowGraph`.

    Raises:
        ValueError: on malformed input (with the offending line number).
    """
    graph, _ = parse_design_text(text)
    return graph
