"""Opcode definitions for the word-level HLS IR.

Each opcode carries a small signature describing how many operands it takes
and how its result bit width is derived from the operand widths.  The widths
matter twice in this reproduction: the technology model derives gate-level
delay/area from them, and the ISDC fanout score (Eq. 3 of the paper) weights
registers by their bit count.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Sequence


class OpKind(enum.Enum):
    """Word-level operation kinds supported by the IR.

    The set mirrors the arithmetic/logic/bit-manipulation subset of the XLS
    IR that appears in datapath-style designs (the only designs the paper
    schedules): no control flow, no memory operations.
    """

    # Sources / sinks.
    PARAM = "param"          # primary input
    CONSTANT = "constant"    # literal
    OUTPUT = "output"        # primary output marker (identity)

    # Arithmetic.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    UDIV = "udiv"
    UMOD = "umod"
    NEG = "neg"

    # Bitwise logic.
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    ANDN = "andn"            # a & ~b

    # Reductions.
    AND_REDUCE = "and_reduce"
    OR_REDUCE = "or_reduce"
    XOR_REDUCE = "xor_reduce"

    # Shifts / rotates.
    SHL = "shl"
    SHRL = "shrl"            # logical shift right
    SHRA = "shra"            # arithmetic shift right
    ROTL = "rotl"
    ROTR = "rotr"

    # Comparisons (1-bit result).
    EQ = "eq"
    NE = "ne"
    ULT = "ult"
    ULE = "ule"
    UGT = "ugt"
    UGE = "uge"
    SLT = "slt"
    SGT = "sgt"

    # Selection / bit manipulation.
    SEL = "sel"              # sel(cond, on_true, on_false)
    CONCAT = "concat"
    BIT_SLICE = "bit_slice"
    ZERO_EXT = "zero_ext"
    SIGN_EXT = "sign_ext"
    IDENTITY = "identity"

    # Wide helpers common in the benchmark datapaths.
    MULADD = "muladd"        # a * b + c (fused)
    CLZ = "clz"              # count leading zeros
    POPCOUNT = "popcount"

    # Pipelined loops.
    PHI = "phi"              # loop-carried value: init operand + one back-edge

    @property
    def is_source(self) -> bool:
        """True for nodes with no dataflow operands (graph sources)."""
        return self in (OpKind.PARAM, OpKind.CONSTANT)

    @property
    def is_commutative(self) -> bool:
        return self in _COMMUTATIVE

    @property
    def is_comparison(self) -> bool:
        return self in _COMPARISONS

    @property
    def is_free(self) -> bool:
        """True for operations that synthesise to pure wiring (zero delay)."""
        return self in _FREE_OPS


_COMMUTATIVE = {
    OpKind.ADD,
    OpKind.MUL,
    OpKind.AND,
    OpKind.OR,
    OpKind.XOR,
    OpKind.EQ,
    OpKind.NE,
}

_COMPARISONS = {
    OpKind.EQ,
    OpKind.NE,
    OpKind.ULT,
    OpKind.ULE,
    OpKind.UGT,
    OpKind.UGE,
    OpKind.SLT,
    OpKind.SGT,
}

# Operations that are implemented purely with wires once lowered to gates.
# PHI is free too: a loop-carried value lives in the pipeline register its
# back-edge implies, and the init/recurrence mux folds into that register's
# input -- the phi itself contributes no combinational delay.
_FREE_OPS = {
    OpKind.PARAM,
    OpKind.CONSTANT,
    OpKind.OUTPUT,
    OpKind.CONCAT,
    OpKind.BIT_SLICE,
    OpKind.ZERO_EXT,
    OpKind.SIGN_EXT,
    OpKind.IDENTITY,
    OpKind.PHI,
}


@dataclass(frozen=True)
class OpSignature:
    """Static signature of an opcode.

    Attributes:
        kind: the opcode this signature describes.
        min_operands: minimum number of operands.
        max_operands: maximum number of operands (``None`` for variadic).
        result_width: callable mapping operand widths (and node attributes)
            to the result width.
    """

    kind: OpKind
    min_operands: int
    max_operands: int | None
    result_width: Callable[[Sequence[int], dict], int]


def _same_as_first(widths: Sequence[int], attrs: dict) -> int:
    return widths[0]


def _max_width(widths: Sequence[int], attrs: dict) -> int:
    return max(widths)

def _one_bit(widths: Sequence[int], attrs: dict) -> int:
    return 1


def _sum_width(widths: Sequence[int], attrs: dict) -> int:
    return sum(widths)


def _attr_width(widths: Sequence[int], attrs: dict) -> int:
    width = attrs.get("width")
    if width is None:
        raise ValueError("node requires an explicit 'width' attribute")
    return int(width)


def _mul_width(widths: Sequence[int], attrs: dict) -> int:
    # Word-level multiply keeps the max operand width by default (XLS-style
    # umul with explicit result width can override via the 'width' attribute).
    explicit = attrs.get("width")
    if explicit is not None:
        return int(explicit)
    return max(widths)


def _clog2(value: int) -> int:
    if value <= 1:
        return 1
    return (value - 1).bit_length()


def _count_width(widths: Sequence[int], attrs: dict) -> int:
    return _clog2(widths[0] + 1)


_SIGNATURES: dict[OpKind, OpSignature] = {}


def _register(kind: OpKind, min_ops: int, max_ops: int | None, width_fn) -> None:
    _SIGNATURES[kind] = OpSignature(kind, min_ops, max_ops, width_fn)


_register(OpKind.PARAM, 0, 0, _attr_width)
_register(OpKind.CONSTANT, 0, 0, _attr_width)
_register(OpKind.OUTPUT, 1, 1, _same_as_first)

_register(OpKind.ADD, 2, 2, _max_width)
_register(OpKind.SUB, 2, 2, _max_width)
_register(OpKind.MUL, 2, 2, _mul_width)
_register(OpKind.UDIV, 2, 2, _same_as_first)
_register(OpKind.UMOD, 2, 2, _same_as_first)
_register(OpKind.NEG, 1, 1, _same_as_first)

_register(OpKind.AND, 2, None, _max_width)
_register(OpKind.OR, 2, None, _max_width)
_register(OpKind.XOR, 2, None, _max_width)
_register(OpKind.NOT, 1, 1, _same_as_first)
_register(OpKind.ANDN, 2, 2, _max_width)

_register(OpKind.AND_REDUCE, 1, 1, _one_bit)
_register(OpKind.OR_REDUCE, 1, 1, _one_bit)
_register(OpKind.XOR_REDUCE, 1, 1, _one_bit)

_register(OpKind.SHL, 2, 2, _same_as_first)
_register(OpKind.SHRL, 2, 2, _same_as_first)
_register(OpKind.SHRA, 2, 2, _same_as_first)
_register(OpKind.ROTL, 2, 2, _same_as_first)
_register(OpKind.ROTR, 2, 2, _same_as_first)

for _cmp in (OpKind.EQ, OpKind.NE, OpKind.ULT, OpKind.ULE, OpKind.UGT,
             OpKind.UGE, OpKind.SLT, OpKind.SGT):
    _register(_cmp, 2, 2, _one_bit)

_register(OpKind.SEL, 3, 3, lambda widths, attrs: max(widths[1], widths[2]))
_register(OpKind.CONCAT, 2, None, _sum_width)
_register(OpKind.BIT_SLICE, 1, 1, _attr_width)
_register(OpKind.ZERO_EXT, 1, 1, _attr_width)
_register(OpKind.SIGN_EXT, 1, 1, _attr_width)
_register(OpKind.IDENTITY, 1, 1, _same_as_first)

_register(OpKind.MULADD, 3, 3, _mul_width)
_register(OpKind.CLZ, 1, 1, _count_width)
_register(OpKind.POPCOUNT, 1, 1, _count_width)

_register(OpKind.PHI, 1, 1, _same_as_first)


def signature_of(kind: OpKind) -> OpSignature:
    """Return the :class:`OpSignature` for ``kind``."""
    return _SIGNATURES[kind]


def infer_result_width(kind: OpKind, operand_widths: Sequence[int],
                       attrs: dict | None = None) -> int:
    """Infer the result bit width of ``kind`` applied to ``operand_widths``.

    Args:
        kind: the opcode.
        operand_widths: bit widths of the operands, in operand order.
        attrs: optional node attributes (``width`` for explicit-width ops,
            slice bounds, constant values, ...).

    Returns:
        The result bit width.

    Raises:
        ValueError: if the operand count violates the opcode signature.
    """
    attrs = attrs or {}
    sig = signature_of(kind)
    count = len(operand_widths)
    if count < sig.min_operands:
        raise ValueError(
            f"{kind.value} needs at least {sig.min_operands} operands, got {count}")
    if sig.max_operands is not None and count > sig.max_operands:
        raise ValueError(
            f"{kind.value} accepts at most {sig.max_operands} operands, got {count}")
    return sig.result_width(operand_widths, attrs)
