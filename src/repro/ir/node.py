"""Node and Value objects of the dataflow graph."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.ir.ops import OpKind


@dataclass(frozen=True)
class Value:
    """An SSA value produced by a node.

    The paper's Eq. 3 sums over the ``k`` results of a node; in this IR every
    node produces exactly one result, so a :class:`Value` is identified by the
    producing node id alone.  Keeping a distinct class (rather than reusing the
    node id) keeps call sites explicit about whether they talk about the
    operation or the wire it drives.

    Attributes:
        node_id: id of the producing node.
        width: bit width of the value.
    """

    node_id: int
    width: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Value(n{self.node_id}:{self.width}b)"


@dataclass
class Node:
    """A word-level operation in the dataflow graph.

    Attributes:
        node_id: unique integer id within the graph.
        kind: the opcode.
        operands: ids of the nodes whose results feed this node, in operand
            order.  Duplicates are allowed (e.g. ``add(x, x)``).
        width: bit width of the (single) result.
        name: optional human-readable name; auto-generated if empty.
        attrs: opcode-specific attributes (constant value, slice start,
            extension width, ...).
    """

    node_id: int
    kind: OpKind
    operands: tuple[int, ...]
    width: int
    name: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"node {self.name or self.node_id} has width {self.width}")
        if not self.name:
            self.name = f"{self.kind.value}_{self.node_id}"

    @property
    def result(self) -> Value:
        """The value produced by this node."""
        return Value(self.node_id, self.width)

    @property
    def results(self) -> tuple[Value, ...]:
        """All results of the node (always a single element in this IR)."""
        return (self.result,)

    @property
    def is_source(self) -> bool:
        return self.kind.is_source

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ops = ", ".join(f"n{o}" for o in self.operands)
        return f"Node(n{self.node_id} = {self.kind.value}({ops}) : {self.width}b)"
