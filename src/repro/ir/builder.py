"""Fluent construction API for dataflow graphs.

The builder wraps :class:`~repro.ir.graph.DataflowGraph` with methods named
after the opcodes, returning :class:`~repro.ir.node.Node` handles that can be
passed directly as operands.  Benchmark design generators are written against
this API, which keeps them short and close to the pseudocode of the
corresponding algorithm (CRC, SHA-256 round, ...).
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.ir.graph import DataflowGraph
from repro.ir.node import Node
from repro.ir.ops import OpKind

NodeLike = Union[Node, int]


def _node_id(node: NodeLike) -> int:
    return node.node_id if isinstance(node, Node) else int(node)


class GraphBuilder:
    """Builds a :class:`DataflowGraph` through opcode-named methods.

    Example:
        >>> b = GraphBuilder("adder")
        >>> x = b.param("x", 8)
        >>> y = b.param("y", 8)
        >>> s = b.add(x, y)
        >>> _ = b.output(s, "sum")
        >>> len(b.graph)
        4
    """

    def __init__(self, name: str = "design") -> None:
        self.graph = DataflowGraph(name)

    # ----------------------------------------------------------- sources

    def param(self, name: str, width: int) -> Node:
        """Declare a primary input of the given width."""
        return self.graph.add_node(OpKind.PARAM, (), width=width, name=name)

    def constant(self, value: int, width: int, name: str = "") -> Node:
        """Create a constant literal node."""
        masked = value & ((1 << width) - 1)
        return self.graph.add_node(OpKind.CONSTANT, (), width=width, name=name,
                                   value=masked)

    def output(self, value: NodeLike, name: str = "") -> Node:
        """Mark ``value`` as a primary output."""
        return self.graph.add_node(OpKind.OUTPUT, (_node_id(value),), name=name)

    # -------------------------------------------------------- arithmetic

    def _binary(self, kind: OpKind, a: NodeLike, b: NodeLike, name: str = "",
                width: int | None = None) -> Node:
        return self.graph.add_node(kind, (_node_id(a), _node_id(b)), width=width,
                                   name=name)

    def add(self, a: NodeLike, b: NodeLike, name: str = "") -> Node:
        return self._binary(OpKind.ADD, a, b, name)

    def sub(self, a: NodeLike, b: NodeLike, name: str = "") -> Node:
        return self._binary(OpKind.SUB, a, b, name)

    def mul(self, a: NodeLike, b: NodeLike, name: str = "",
            width: int | None = None) -> Node:
        return self._binary(OpKind.MUL, a, b, name, width)

    def udiv(self, a: NodeLike, b: NodeLike, name: str = "") -> Node:
        return self._binary(OpKind.UDIV, a, b, name)

    def umod(self, a: NodeLike, b: NodeLike, name: str = "") -> Node:
        return self._binary(OpKind.UMOD, a, b, name)

    def neg(self, a: NodeLike, name: str = "") -> Node:
        return self.graph.add_node(OpKind.NEG, (_node_id(a),), name=name)

    def muladd(self, a: NodeLike, b: NodeLike, c: NodeLike, name: str = "",
               width: int | None = None) -> Node:
        return self.graph.add_node(
            OpKind.MULADD, (_node_id(a), _node_id(b), _node_id(c)),
            width=width, name=name)

    # ------------------------------------------------------------- logic

    def and_(self, *operands: NodeLike, name: str = "") -> Node:
        return self.graph.add_node(OpKind.AND, tuple(_node_id(o) for o in operands),
                                   name=name)

    def or_(self, *operands: NodeLike, name: str = "") -> Node:
        return self.graph.add_node(OpKind.OR, tuple(_node_id(o) for o in operands),
                                   name=name)

    def xor(self, *operands: NodeLike, name: str = "") -> Node:
        return self.graph.add_node(OpKind.XOR, tuple(_node_id(o) for o in operands),
                                   name=name)

    def not_(self, a: NodeLike, name: str = "") -> Node:
        return self.graph.add_node(OpKind.NOT, (_node_id(a),), name=name)

    def andn(self, a: NodeLike, b: NodeLike, name: str = "") -> Node:
        return self._binary(OpKind.ANDN, a, b, name)

    def and_reduce(self, a: NodeLike, name: str = "") -> Node:
        return self.graph.add_node(OpKind.AND_REDUCE, (_node_id(a),), name=name)

    def or_reduce(self, a: NodeLike, name: str = "") -> Node:
        return self.graph.add_node(OpKind.OR_REDUCE, (_node_id(a),), name=name)

    def xor_reduce(self, a: NodeLike, name: str = "") -> Node:
        return self.graph.add_node(OpKind.XOR_REDUCE, (_node_id(a),), name=name)

    # ------------------------------------------------------ shifts / rotates

    def shl(self, a: NodeLike, amount: NodeLike, name: str = "") -> Node:
        return self._binary(OpKind.SHL, a, amount, name)

    def shrl(self, a: NodeLike, amount: NodeLike, name: str = "") -> Node:
        return self._binary(OpKind.SHRL, a, amount, name)

    def shra(self, a: NodeLike, amount: NodeLike, name: str = "") -> Node:
        return self._binary(OpKind.SHRA, a, amount, name)

    def rotl(self, a: NodeLike, amount: NodeLike, name: str = "") -> Node:
        return self._binary(OpKind.ROTL, a, amount, name)

    def rotr(self, a: NodeLike, amount: NodeLike, name: str = "") -> Node:
        return self._binary(OpKind.ROTR, a, amount, name)

    def shl_const(self, a: NodeLike, amount: int, name: str = "") -> Node:
        """Shift left by a constant amount (constant node + SHL)."""
        width = self.graph.node(_node_id(a)).width
        shift = self.constant(amount, max(1, amount.bit_length() or 1))
        del width
        return self.shl(a, shift, name)

    def rotr_const(self, a: NodeLike, amount: int, name: str = "") -> Node:
        """Rotate right by a constant amount."""
        shift = self.constant(amount, max(1, amount.bit_length() or 1))
        return self.rotr(a, shift, name)

    def shrl_const(self, a: NodeLike, amount: int, name: str = "") -> Node:
        """Logical shift right by a constant amount."""
        shift = self.constant(amount, max(1, amount.bit_length() or 1))
        return self.shrl(a, shift, name)

    # ------------------------------------------------------------ compares

    def eq(self, a: NodeLike, b: NodeLike, name: str = "") -> Node:
        return self._binary(OpKind.EQ, a, b, name)

    def ne(self, a: NodeLike, b: NodeLike, name: str = "") -> Node:
        return self._binary(OpKind.NE, a, b, name)

    def ult(self, a: NodeLike, b: NodeLike, name: str = "") -> Node:
        return self._binary(OpKind.ULT, a, b, name)

    def ule(self, a: NodeLike, b: NodeLike, name: str = "") -> Node:
        return self._binary(OpKind.ULE, a, b, name)

    def ugt(self, a: NodeLike, b: NodeLike, name: str = "") -> Node:
        return self._binary(OpKind.UGT, a, b, name)

    def uge(self, a: NodeLike, b: NodeLike, name: str = "") -> Node:
        return self._binary(OpKind.UGE, a, b, name)

    def slt(self, a: NodeLike, b: NodeLike, name: str = "") -> Node:
        return self._binary(OpKind.SLT, a, b, name)

    def sgt(self, a: NodeLike, b: NodeLike, name: str = "") -> Node:
        return self._binary(OpKind.SGT, a, b, name)

    # ------------------------------------------- selection / bit manipulation

    def select(self, cond: NodeLike, on_true: NodeLike, on_false: NodeLike,
               name: str = "") -> Node:
        return self.graph.add_node(
            OpKind.SEL, (_node_id(cond), _node_id(on_true), _node_id(on_false)),
            name=name)

    def concat(self, *operands: NodeLike, name: str = "") -> Node:
        return self.graph.add_node(OpKind.CONCAT,
                                   tuple(_node_id(o) for o in operands), name=name)

    def bit_slice(self, a: NodeLike, start: int, width: int, name: str = "") -> Node:
        return self.graph.add_node(OpKind.BIT_SLICE, (_node_id(a),), width=width,
                                   name=name, start=start)

    def zero_ext(self, a: NodeLike, width: int, name: str = "") -> Node:
        return self.graph.add_node(OpKind.ZERO_EXT, (_node_id(a),), width=width,
                                   name=name)

    def sign_ext(self, a: NodeLike, width: int, name: str = "") -> Node:
        return self.graph.add_node(OpKind.SIGN_EXT, (_node_id(a),), width=width,
                                   name=name)

    def identity(self, a: NodeLike, name: str = "") -> Node:
        return self.graph.add_node(OpKind.IDENTITY, (_node_id(a),), name=name)

    # ------------------------------------------------------- pipelined loops

    def phi(self, init: NodeLike, name: str = "") -> Node:
        """Declare a loop-carried value initialised to ``init``.

        Close the loop later with :meth:`back_edge` once the recurrence
        value exists.
        """
        return self.graph.add_node(OpKind.PHI, (_node_id(init),), name=name)

    def back_edge(self, phi: NodeLike, src: NodeLike, distance: int = 1):
        """Close a loop: carry ``src``'s value into ``phi``, ``distance``
        iterations later."""
        return self.graph.add_back_edge(_node_id(phi), _node_id(src), distance)

    def clz(self, a: NodeLike, name: str = "") -> Node:
        return self.graph.add_node(OpKind.CLZ, (_node_id(a),), name=name)

    def popcount(self, a: NodeLike, name: str = "") -> Node:
        return self.graph.add_node(OpKind.POPCOUNT, (_node_id(a),), name=name)

    # ------------------------------------------------------------- helpers

    def add_tree(self, operands: Iterable[NodeLike], name: str = "") -> Node:
        """Sum a list of operands with a balanced adder tree."""
        items = [self.graph.node(_node_id(o)) for o in operands]
        if not items:
            raise ValueError("add_tree needs at least one operand")
        level = 0
        while len(items) > 1:
            next_items = []
            for i in range(0, len(items) - 1, 2):
                next_items.append(self.add(items[i], items[i + 1],
                                           name=f"{name}_l{level}_{i // 2}" if name else ""))
            if len(items) % 2:
                next_items.append(items[-1])
            items = next_items
            level += 1
        return items[0]

    def xor_tree(self, operands: Iterable[NodeLike], name: str = "") -> Node:
        """XOR a list of operands with a balanced tree."""
        items = [self.graph.node(_node_id(o)) for o in operands]
        if not items:
            raise ValueError("xor_tree needs at least one operand")
        while len(items) > 1:
            next_items = []
            for i in range(0, len(items) - 1, 2):
                next_items.append(self.xor(items[i], items[i + 1]))
            if len(items) % 2:
                next_items.append(items[-1])
            items = next_items
        return items[0]
