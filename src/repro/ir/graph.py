"""The dataflow graph (DFG) container.

A :class:`DataflowGraph` is a DAG of :class:`~repro.ir.node.Node` objects.
Edges run from operand producers to consumers.  The container maintains both
forward (users) and backward (operands) adjacency so that the scheduler and
the subgraph extractor can walk in either direction cheaply.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

import networkx as nx

from repro.ir.node import Node
from repro.ir.ops import OpKind, infer_result_width
from repro.kernel.delta import record_add, record_remove


class DataflowGraph:
    """A directed acyclic graph of word-level operations.

    Nodes are created through :meth:`add_node` (or the higher-level
    :class:`~repro.ir.builder.GraphBuilder`) and are immutable once added,
    except for their ``attrs`` dictionary.

    Attributes:
        name: design name, used in reports and benchmark tables.
    """

    def __init__(self, name: str = "design") -> None:
        self.name = name
        self._nodes: dict[int, Node] = {}
        self._users: dict[int, list[int]] = {}
        self._next_id = 0
        self._version = 0

    @property
    def structural_version(self) -> int:
        """Monotonic counter advanced on every structural edit.

        The kernel caches its levelized-CSR :class:`~repro.kernel.GraphView`
        on the graph keyed by this counter; node additions and removals
        invalidate the cached view (small runs of them are patched into it
        instead of forcing a rebuild), attribute edits (renames) do not.
        """
        return self._version

    # ------------------------------------------------------------------ build

    def add_node(self, kind: OpKind, operands: Iterable[int] = (),
                 width: int | None = None, name: str = "",
                 **attrs: Any) -> Node:
        """Create a node and add it to the graph.

        Args:
            kind: opcode of the new node.
            operands: ids of already-present operand nodes.
            width: explicit result width; inferred from the operands when
                omitted (required for ``PARAM``/``CONSTANT``/width-changing ops).
            name: optional readable name.
            **attrs: opcode-specific attributes (e.g. ``value`` for constants).

        Returns:
            The created :class:`Node`.

        Raises:
            KeyError: if an operand id does not exist in the graph.
            ValueError: on operand-count or width violations.
        """
        operand_ids = tuple(operands)
        for operand in operand_ids:
            if operand not in self._nodes:
                raise KeyError(f"operand node {operand} not in graph {self.name!r}")
        if width is not None:
            attrs = dict(attrs)
            attrs.setdefault("width", width)
        operand_widths = [self._nodes[o].width for o in operand_ids]
        resolved_width = width if width is not None else infer_result_width(
            kind, operand_widths, attrs)
        # Explicit widths still go through inference for ops that demand a
        # 'width' attribute, so validate operand counts either way.
        infer_result_width(kind, operand_widths, {**attrs, "width": resolved_width})

        node = Node(self._next_id, kind, operand_ids, resolved_width, name, dict(attrs))
        self._nodes[node.node_id] = node
        self._users[node.node_id] = []
        for operand in operand_ids:
            self._users[operand].append(node.node_id)
        self._next_id += 1
        self._version += 1
        record_add(self, node.node_id, operand_ids, node.is_source)
        return node

    def remove_node(self, node_id: int) -> None:
        """Remove a sink node (one with no users) from the graph.

        Restricting removal to user-free nodes keeps every remaining node's
        operand list valid and is what lets the kernel patch its cached
        :class:`~repro.kernel.GraphView` instead of rebuilding it; remove
        consumers first to take out a whole cone.

        Raises:
            KeyError: if ``node_id`` is not in the graph.
            ValueError: if the node still has users.
        """
        node = self._nodes.get(node_id)
        if node is None:
            raise KeyError(f"node {node_id} not in graph {self.name!r}")
        if self._users[node_id]:
            raise ValueError(
                f"node {node_id} still has users {self._users[node_id]} in "
                f"graph {self.name!r}; remove them first")
        del self._nodes[node_id]
        del self._users[node_id]
        for operand in set(node.operands):
            self._users[operand] = [u for u in self._users[operand]
                                    if u != node_id]
        self._version += 1
        record_remove(self, node_id)

    # ----------------------------------------------------------------- access

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def node(self, node_id: int) -> Node:
        """Return the node with id ``node_id``."""
        return self._nodes[node_id]

    def nodes(self) -> list[Node]:
        """All nodes in insertion (id) order."""
        return [self._nodes[i] for i in sorted(self._nodes)]

    def node_ids(self) -> list[int]:
        """All node ids in ascending order."""
        return sorted(self._nodes)

    def operands_of(self, node_id: int) -> tuple[int, ...]:
        """Ids of the operand nodes of ``node_id`` (with duplicates)."""
        return self._nodes[node_id].operands

    def users_of(self, node_id: int) -> list[int]:
        """Ids of the nodes consuming the result of ``node_id``."""
        return list(self._users[node_id])

    def num_users(self, node_id: int) -> int:
        """Number of *distinct* consumer nodes of ``node_id``'s result.

        This is the ``num_users`` term of the paper's Eq. 3 (the HLS-IR level
        fanout of the register holding the value).
        """
        return len(set(self._users[node_id]))

    def parameters(self) -> list[Node]:
        """All primary-input (``PARAM``) nodes."""
        return [n for n in self.nodes() if n.kind is OpKind.PARAM]

    def outputs(self) -> list[Node]:
        """Primary outputs: explicit ``OUTPUT`` nodes, else sink nodes."""
        explicit = [n for n in self.nodes() if n.kind is OpKind.OUTPUT]
        if explicit:
            return explicit
        return [n for n in self.nodes()
                if not self._users[n.node_id] and not n.is_source]

    def source_ids(self) -> set[int]:
        """Ids of all source (PARAM / CONSTANT) nodes."""
        return {n.node_id for n in self.nodes() if n.is_source}

    # ------------------------------------------------------------------ edits

    def set_name(self, node_id: int, name: str) -> None:
        """Rename a node (affects reports only)."""
        self._nodes[node_id].name = name

    # -------------------------------------------------------------- interop

    def to_networkx(self) -> nx.DiGraph:
        """Export to a :class:`networkx.DiGraph` (node attrs: kind, width, name)."""
        graph = nx.DiGraph(name=self.name)
        for node in self.nodes():
            graph.add_node(node.node_id, kind=node.kind, width=node.width,
                           name=node.name)
        for node in self.nodes():
            for operand in node.operands:
                graph.add_edge(operand, node.node_id)
        return graph

    def subgraph_nodes(self, node_ids: Iterable[int]) -> list[Node]:
        """Return the nodes with the given ids, in ascending id order."""
        wanted = sorted(set(node_ids))
        return [self._nodes[i] for i in wanted]

    def copy(self, name: str | None = None) -> "DataflowGraph":
        """Deep-copy the graph (nodes keep their ids)."""
        clone = DataflowGraph(name or self.name)
        clone._next_id = self._next_id
        for node_id, node in self._nodes.items():
            clone._nodes[node_id] = Node(node.node_id, node.kind, node.operands,
                                         node.width, node.name, dict(node.attrs))
        clone._users = {k: list(v) for k, v in self._users.items()}
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataflowGraph({self.name!r}, {len(self)} nodes)"
