"""The dataflow graph (DFG) container.

A :class:`DataflowGraph` is a DAG of :class:`~repro.ir.node.Node` objects.
Edges run from operand producers to consumers.  The container maintains both
forward (users) and backward (operands) adjacency so that the scheduler and
the subgraph extractor can walk in either direction cheaply.

Pipelined loops add *back-edges*: a ``PHI`` node's forward operand is its
initial value, and one registered :class:`BackEdge` names the node whose
result the phi carries into later loop iterations, ``distance`` iterations
downstream.  Back-edges live outside the operand lists on purpose -- the
forward graph stays a DAG, so every levelization, topological order, delay
matrix and analysis keeps working unchanged; only the II-aware scheduler
and the loop interpreter consult them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator

import networkx as nx

from repro.ir.node import Node
from repro.ir.ops import OpKind, infer_result_width
from repro.kernel.delta import record_add, record_remove


@dataclass(frozen=True)
class BackEdge:
    """One loop-carried dependency: ``src``'s value feeds ``phi`` next time.

    Attributes:
        phi: node id of the receiving ``PHI`` node.
        src: node id whose result is carried around the loop.
        distance: iteration distance (>= 1); the value produced by iteration
            ``i`` is consumed by the phi of iteration ``i + distance``.
    """

    phi: int
    src: int
    distance: int


class DataflowGraph:
    """A directed acyclic graph of word-level operations.

    Nodes are created through :meth:`add_node` (or the higher-level
    :class:`~repro.ir.builder.GraphBuilder`) and are immutable once added,
    except for their ``attrs`` dictionary.

    Attributes:
        name: design name, used in reports and benchmark tables.
    """

    def __init__(self, name: str = "design") -> None:
        self.name = name
        self._nodes: dict[int, Node] = {}
        self._users: dict[int, list[int]] = {}
        self._back_edges: dict[int, BackEdge] = {}
        self._next_id = 0
        self._version = 0

    @property
    def structural_version(self) -> int:
        """Monotonic counter advanced on every structural edit.

        The kernel caches its levelized-CSR :class:`~repro.kernel.GraphView`
        on the graph keyed by this counter; node additions and removals
        invalidate the cached view (small runs of them are patched into it
        instead of forcing a rebuild), attribute edits (renames) do not.
        """
        return self._version

    # ------------------------------------------------------------------ build

    def add_node(self, kind: OpKind, operands: Iterable[int] = (),
                 width: int | None = None, name: str = "",
                 **attrs: Any) -> Node:
        """Create a node and add it to the graph.

        Args:
            kind: opcode of the new node.
            operands: ids of already-present operand nodes.
            width: explicit result width; inferred from the operands when
                omitted (required for ``PARAM``/``CONSTANT``/width-changing ops).
            name: optional readable name.
            **attrs: opcode-specific attributes (e.g. ``value`` for constants).

        Returns:
            The created :class:`Node`.

        Raises:
            KeyError: if an operand id does not exist in the graph.
            ValueError: on operand-count or width violations.
        """
        operand_ids = tuple(operands)
        for operand in operand_ids:
            if operand not in self._nodes:
                raise KeyError(f"operand node {operand} not in graph {self.name!r}")
        if width is not None:
            attrs = dict(attrs)
            attrs.setdefault("width", width)
        operand_widths = [self._nodes[o].width for o in operand_ids]
        resolved_width = width if width is not None else infer_result_width(
            kind, operand_widths, attrs)
        # Explicit widths still go through inference for ops that demand a
        # 'width' attribute, so validate operand counts either way.
        infer_result_width(kind, operand_widths, {**attrs, "width": resolved_width})

        node = Node(self._next_id, kind, operand_ids, resolved_width, name, dict(attrs))
        self._nodes[node.node_id] = node
        self._users[node.node_id] = []
        for operand in operand_ids:
            self._users[operand].append(node.node_id)
        self._next_id += 1
        self._version += 1
        record_add(self, node.node_id, operand_ids, node.is_source)
        return node

    def add_back_edge(self, phi_id: int, src_id: int, distance: int) -> BackEdge:
        """Register the loop-carried back-edge of a ``PHI`` node.

        Args:
            phi_id: id of the receiving ``PHI`` node.
            src_id: id of the node whose value is carried around the loop.
            distance: iteration distance (at least 1).

        Returns:
            The registered :class:`BackEdge`.

        Raises:
            KeyError: if either node id is not in the graph.
            ValueError: if ``phi_id`` is not a ``PHI`` node, already has a
                back-edge, or ``distance`` is not positive.
        """
        for node_id in (phi_id, src_id):
            if node_id not in self._nodes:
                raise KeyError(f"node {node_id} not in graph {self.name!r}")
        phi = self._nodes[phi_id]
        if phi.kind is not OpKind.PHI:
            raise ValueError(
                f"back-edge target node {phi_id} is {phi.kind.value!r}, "
                f"not a phi, in graph {self.name!r}")
        if phi_id in self._back_edges:
            raise ValueError(
                f"phi node {phi_id} already has a back-edge in graph "
                f"{self.name!r}")
        if int(distance) < 1:
            raise ValueError(
                f"back-edge distance must be >= 1, got {distance}")
        edge = BackEdge(phi=phi_id, src=src_id, distance=int(distance))
        self._back_edges[phi_id] = edge
        return edge

    def back_edges(self) -> list[BackEdge]:
        """All loop back-edges, ordered by phi node id."""
        return [self._back_edges[phi] for phi in sorted(self._back_edges)]

    def back_edge_of(self, phi_id: int) -> BackEdge | None:
        """The back-edge of ``phi_id``, if one is registered."""
        return self._back_edges.get(phi_id)

    @property
    def has_back_edges(self) -> bool:
        """True when the graph models a pipelined loop."""
        return bool(self._back_edges)

    def remove_node(self, node_id: int) -> None:
        """Remove a sink node (one with no users) from the graph.

        Restricting removal to user-free nodes keeps every remaining node's
        operand list valid and is what lets the kernel patch its cached
        :class:`~repro.kernel.GraphView` instead of rebuilding it; remove
        consumers first to take out a whole cone.

        Raises:
            KeyError: if ``node_id`` is not in the graph.
            ValueError: if the node still has users, or is the source of a
                loop back-edge.
        """
        node = self._nodes.get(node_id)
        if node is None:
            raise KeyError(f"node {node_id} not in graph {self.name!r}")
        if self._users[node_id]:
            raise ValueError(
                f"node {node_id} still has users {self._users[node_id]} in "
                f"graph {self.name!r}; remove them first")
        loop_users = [e.phi for e in self._back_edges.values()
                      if e.src == node_id and e.phi != node_id]
        if loop_users:
            raise ValueError(
                f"node {node_id} still feeds loop back-edges into phis "
                f"{loop_users} in graph {self.name!r}; remove them first")
        self._back_edges.pop(node_id, None)
        del self._nodes[node_id]
        del self._users[node_id]
        for operand in set(node.operands):
            self._users[operand] = [u for u in self._users[operand]
                                    if u != node_id]
        self._version += 1
        record_remove(self, node_id)

    # ----------------------------------------------------------------- access

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def node(self, node_id: int) -> Node:
        """Return the node with id ``node_id``."""
        return self._nodes[node_id]

    def nodes(self) -> list[Node]:
        """All nodes in insertion (id) order."""
        return [self._nodes[i] for i in sorted(self._nodes)]

    def node_ids(self) -> list[int]:
        """All node ids in ascending order."""
        return sorted(self._nodes)

    def operands_of(self, node_id: int) -> tuple[int, ...]:
        """Ids of the operand nodes of ``node_id`` (with duplicates)."""
        return self._nodes[node_id].operands

    def users_of(self, node_id: int) -> list[int]:
        """Ids of the nodes consuming the result of ``node_id``."""
        return list(self._users[node_id])

    def num_users(self, node_id: int) -> int:
        """Number of *distinct* consumer nodes of ``node_id``'s result.

        This is the ``num_users`` term of the paper's Eq. 3 (the HLS-IR level
        fanout of the register holding the value).
        """
        return len(set(self._users[node_id]))

    def parameters(self) -> list[Node]:
        """All primary-input (``PARAM``) nodes."""
        return [n for n in self.nodes() if n.kind is OpKind.PARAM]

    def outputs(self) -> list[Node]:
        """Primary outputs: explicit ``OUTPUT`` nodes, else sink nodes."""
        explicit = [n for n in self.nodes() if n.kind is OpKind.OUTPUT]
        if explicit:
            return explicit
        return [n for n in self.nodes()
                if not self._users[n.node_id] and not n.is_source]

    def source_ids(self) -> set[int]:
        """Ids of all source (PARAM / CONSTANT) nodes."""
        return {n.node_id for n in self.nodes() if n.is_source}

    # ------------------------------------------------------------------ edits

    def set_name(self, node_id: int, name: str) -> None:
        """Rename a node (affects reports only)."""
        self._nodes[node_id].name = name

    # -------------------------------------------------------------- interop

    def to_networkx(self) -> nx.DiGraph:
        """Export to a :class:`networkx.DiGraph` (node attrs: kind, width, name)."""
        graph = nx.DiGraph(name=self.name)
        for node in self.nodes():
            graph.add_node(node.node_id, kind=node.kind, width=node.width,
                           name=node.name)
        for node in self.nodes():
            for operand in node.operands:
                graph.add_edge(operand, node.node_id)
        for edge in self.back_edges():
            graph.add_edge(edge.src, edge.phi, back=True,
                           distance=edge.distance)
        return graph

    def subgraph_nodes(self, node_ids: Iterable[int]) -> list[Node]:
        """Return the nodes with the given ids, in ascending id order."""
        wanted = sorted(set(node_ids))
        return [self._nodes[i] for i in wanted]

    def copy(self, name: str | None = None) -> "DataflowGraph":
        """Deep-copy the graph (nodes keep their ids)."""
        clone = DataflowGraph(name or self.name)
        clone._next_id = self._next_id
        for node_id, node in self._nodes.items():
            clone._nodes[node_id] = Node(node.node_id, node.kind, node.operands,
                                         node.width, node.name, dict(node.attrs))
        clone._users = {k: list(v) for k, v in self._users.items()}
        clone._back_edges = dict(self._back_edges)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataflowGraph({self.name!r}, {len(self)} nodes)"
