"""repro: a reproduction of ISDC, feedback-guided iterative SDC scheduling for HLS.

The package is organised by subsystem (see DESIGN.md for the full inventory):

* :mod:`repro.ir` -- the word-level HLS dataflow-graph IR.
* :mod:`repro.tech` -- technology characterisation (cell library, operator model).
* :mod:`repro.netlist` -- gate-level lowering, logic optimisation, STA.
* :mod:`repro.aig` -- and-inverter graphs (depth feedback, Fig. 8).
* :mod:`repro.synth` -- the downstream "logic synthesis + STA" flow.
* :mod:`repro.sdc` -- baseline SDC scheduling (Cong & Zhang / XLS formulation).
* :mod:`repro.isdc` -- the paper's contribution: the feedback-guided loop.
* :mod:`repro.designs` -- the 17-design Table-I benchmark suite.
* :mod:`repro.experiments` -- harnesses regenerating every table and figure.

Quickstart::

    from repro.designs import build_crc32
    from repro.isdc import IsdcConfig, IsdcScheduler

    result = IsdcScheduler(IsdcConfig(clock_period_ps=2500)).schedule(build_crc32())
    print(result.initial_report.num_registers, "->", result.final_report.num_registers)
"""

from repro.ir import DataflowGraph, GraphBuilder, OpKind
from repro.isdc import IsdcConfig, IsdcScheduler
from repro.sdc import PipelineAnalyzer, Schedule, SdcScheduler
from repro.synth import (
    EstimatorBackend,
    FlowBackend,
    LocalSynthesisBackend,
    SynthesisFlow,
    create_backend,
)

__version__ = "0.2.0"

__all__ = [
    "DataflowGraph",
    "EstimatorBackend",
    "FlowBackend",
    "GraphBuilder",
    "LocalSynthesisBackend",
    "OpKind",
    "IsdcConfig",
    "IsdcScheduler",
    "PipelineAnalyzer",
    "Schedule",
    "SdcScheduler",
    "SynthesisFlow",
    "create_backend",
    "__version__",
]
