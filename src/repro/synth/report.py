"""Synthesis/STA report objects."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SynthesisReport:
    """Post-synthesis report for one combinational block.

    Attributes:
        name: name of the synthesised block (design or subgraph).
        delay_ps: post-synthesis critical-path delay in picoseconds.
        num_gates: logic-gate count after optimisation.
        num_gates_unoptimized: logic-gate count straight out of lowering.
        area_um2: cell area after optimisation.
        aig_depth: AND-level depth of the block's AIG (``None`` unless the
            flow was asked to compute it).
        node_ids: IR node ids covered by the block (empty for whole designs
            evaluated without subgraph context).
    """

    name: str
    delay_ps: float
    num_gates: int
    num_gates_unoptimized: int
    area_um2: float
    aig_depth: int | None = None
    node_ids: tuple[int, ...] = ()

    @property
    def gate_reduction(self) -> float:
        """Fraction of gates removed by logic optimisation."""
        if self.num_gates_unoptimized == 0:
            return 0.0
        return 1.0 - self.num_gates / self.num_gates_unoptimized
