"""The downstream synthesis + STA flow."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.aig.from_netlist import netlist_to_aig
from repro.ir.graph import DataflowGraph
from repro.netlist.lowering import lower_subgraph
from repro.netlist.optimizer import LogicOptimizer
from repro.netlist.sta import StaticTimingAnalysis
from repro.synth.report import SynthesisReport
from repro.tech.library import TechLibrary
from repro.tech.sky130 import sky130_library


class SynthesisFlow:
    """Lower → optimise → STA pipeline over IR subgraphs.

    This class is the "downstream tool" of the ISDC loop.  It is intentionally
    stateless apart from its configuration so that evaluations can be memoised
    externally (see :class:`~repro.synth.cache.EvaluationCache`).

    Args:
        library: technology library; defaults to the synthetic SKY130 library.
        optimize: run the logic optimiser before STA (disable to model a raw
            mapping flow; the gap to the naive estimate shrinks accordingly).
        balance: enable the optimiser's tree-balancing pass.
        compute_aig: also build the AIG and record its depth in every report.
    """

    def __init__(self, library: TechLibrary | None = None, optimize: bool = True,
                 balance: bool = True, compute_aig: bool = False) -> None:
        self.library = library or sky130_library()
        self.optimize = optimize
        self.compute_aig = compute_aig
        self._optimizer = LogicOptimizer(self.library, balance=balance)
        self._sta = StaticTimingAnalysis(self.library)

    def signature(self) -> str:
        """Configuration identity of this flow, for persisted-result keys.

        Every knob that changes reported numbers is included -- the flow
        family, the optimiser settings and the *content* signature of the
        technology library (:meth:`~repro.tech.library.TechLibrary.signature`),
        so two differently-characterised libraries can never share disk
        records even when they share a name.  Parallelism knobs (worker
        counts) are deliberately excluded, and the family tag is the fixed
        string ``SynthesisFlow`` rather than the concrete class:
        :class:`~repro.synth.backend.LocalSynthesisBackend` is bit-identical
        to the serial flow, so the two legitimately share persisted
        results.  A subclass that changes reported numbers must override
        this method.
        """
        return ("SynthesisFlow("
                f"optimize={self.optimize},"
                f"balance={self._optimizer.balance},"
                f"compute_aig={self.compute_aig},"
                f"library={self.library.signature()})")

    def evaluate_subgraph(self, graph: DataflowGraph, node_ids: Iterable[int],
                          name: str = "") -> SynthesisReport:
        """Synthesise the induced subgraph over ``node_ids`` and report timing.

        Args:
            graph: the containing dataflow graph.
            node_ids: IR node ids forming the combinational block.
            name: report name; defaults to ``<design>_sub<N>``.

        Returns:
            A :class:`SynthesisReport` whose ``delay_ps`` is the post-synthesis
            critical-path delay of the block.
        """
        wanted = tuple(sorted(set(node_ids)))
        block_name = name or f"{graph.name}_sub{len(wanted)}"
        lowered = lower_subgraph(graph, wanted, name=block_name)
        netlist = lowered.netlist
        gates_unoptimized = netlist.num_logic_gates()

        if self.optimize:
            netlist, _ = self._optimizer.optimize(netlist)

        timing = self._sta.run(netlist)
        aig_depth = None
        if self.compute_aig:
            aig_depth = netlist_to_aig(netlist).depth()

        return SynthesisReport(
            name=block_name,
            delay_ps=timing.critical_path_delay_ps,
            num_gates=netlist.num_logic_gates(),
            num_gates_unoptimized=gates_unoptimized,
            area_um2=netlist.area(self.library),
            aig_depth=aig_depth,
            node_ids=wanted,
        )

    def evaluate_batch(self, graph: DataflowGraph,
                       node_sets: Sequence[Iterable[int]],
                       names: Sequence[str] | None = None
                       ) -> list[SynthesisReport]:
        """Evaluate several subgraphs of one graph, in input order.

        The base implementation is serial; :class:`LocalSynthesisBackend`
        overrides it with a process-pool fan-out.

        Args:
            graph: the containing dataflow graph.
            node_sets: one node-id collection per subgraph.
            names: optional per-subgraph report names.

        Returns:
            One report per node set, in the same order.
        """
        if names is None:
            names = [""] * len(node_sets)
        return [self.evaluate_subgraph(graph, node_ids, name=name)
                for node_ids, name in zip(node_sets, names)]

    def evaluate_graph(self, graph: DataflowGraph, name: str = "") -> SynthesisReport:
        """Synthesise an entire dataflow graph as one combinational block."""
        return self.evaluate_subgraph(graph, graph.node_ids(), name or graph.name)

    def stage_delay(self, graph: DataflowGraph, stage_nodes: Iterable[int]) -> float:
        """Post-synthesis delay of one pipeline stage (convenience wrapper)."""
        nodes = [nid for nid in stage_nodes if not graph.node(nid).is_source]
        if not nodes:
            return 0.0
        return self.evaluate_subgraph(graph, nodes).delay_ps
