"""Memoisation of subgraph synthesis evaluations.

Subgraph evaluation dominates ISDC runtime (the paper reports a 40x runtime
multiplier), and identical subgraphs recur across iterations once the schedule
stabilises.  The cache keys on a *structural fingerprint* of the induced
subgraph (op kinds, widths, attributes, edges and boundary -- see
:mod:`repro.synth.fingerprint`), so a hit is guaranteed to be a structurally
identical block even across distinct graphs, distinct node ids, or graphs
that happen to share a name.

An optional on-disk layer makes repeated experiment runs warm: pass
``disk_path`` (or a shared :class:`~repro.store.ArtifactStore` via ``store``)
and every fresh evaluation is persisted as a ``synth-eval`` artifact-store
record, every future cache construction pre-loads matching records.  Records
are scoped by the backend's configuration signature
(:func:`backend_signature`): an estimator's guesses are never served as STA
numbers and two differently-characterised libraries never share records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.ir.graph import DataflowGraph
from repro.store import (SYNTH_EVAL_BODY_SCHEMA, ArtifactStore, StoreRecord,
                         synth_eval_key)
from repro.synth.fingerprint import subgraph_fingerprint
from repro.synth.report import SynthesisReport


def backend_signature(backend) -> str:
    """Configuration signature of a backend, for persisted-record scoping.

    Reports persisted by one backend configuration must never be served to a
    differently-configured one, so every disk record carries this signature
    and mismatching records are skipped on load.

    Backends declare their own identity via an explicit ``signature()``
    method (see :meth:`~repro.synth.flow.SynthesisFlow.signature`), which is
    expected to cover everything that changes reported numbers -- including
    the *content* identity of the technology library / delay model, which
    the old attribute-probing fallback silently conflated across
    characterisations.  The fallback below remains only for third-party
    backends that predate the protocol; it now at least appends the
    library's content signature when one is available.
    """
    declared = getattr(backend, "signature", None)
    if callable(declared):
        return declared()
    parts = [type(backend).__name__]
    for attribute in ("optimize", "compute_aig", "pessimism"):
        if hasattr(backend, attribute):
            parts.append(f"{attribute}={getattr(backend, attribute)}")
    optimizer = getattr(backend, "_optimizer", None)
    if optimizer is not None:
        parts.append(f"balance={optimizer.balance}")
    library = getattr(backend, "library", None)
    if library is not None:
        content = getattr(library, "signature", None)
        label = content() if callable(content) else \
            getattr(library, "name", type(library).__name__)
        parts.append(f"library={label}")
    return ",".join(parts)


#: Deprecated alias kept for code written against the pre-store cache.
_backend_signature = backend_signature


@dataclass
class CacheStatistics:
    """Hit/miss counters of an :class:`EvaluationCache`.

    A *miss* is any lookup the in-memory layer could not answer.  Misses
    split into ``disk_hits`` (answered by a disk-warmed record, no synthesis
    run) and ``synth_runs`` (forwarded to the backend); ``misses ==
    disk_hits + synth_runs`` always holds.  Consumers reporting "distinct
    subgraphs synthesised" must read ``synth_runs``, not ``misses``.
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    synth_runs: int = 0
    disk_loaded: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0


class EvaluationCache:
    """Caches :class:`SynthesisReport` objects per structural fingerprint.

    Args:
        backend: the downstream flow used on cache misses; anything
            satisfying :class:`~repro.synth.backend.FlowBackend` (including a
            plain :class:`~repro.synth.flow.SynthesisFlow`).
        disk_path: optional path to an artifact-store file.  Existing
            ``synth-eval`` records under this backend's signature are
            pre-loaded; fresh evaluations are appended.  The file is opened
            tolerantly: corrupt or foreign-format lines degrade to a cold
            cache, never to a failed run.
        store: an already-open :class:`~repro.store.ArtifactStore` to share
            (e.g. one file holding campaign records and evaluations);
            mutually exclusive with ``disk_path``.

    Attributes:
        backend: the wrapped flow backend.
        stats: hit/miss counters.
    """

    def __init__(self, backend, disk_path: str | Path | None = None,
                 store: ArtifactStore | None = None) -> None:
        if disk_path is not None and store is not None:
            raise ValueError("pass disk_path or store, not both")
        self.backend = backend
        self.stats = CacheStatistics()
        self._entries: dict[str, SynthesisReport] = {}
        # Disk-warmed records live in a second-level dict so that answering
        # from them is visible in the accounting (stats.disk_hits) instead of
        # masquerading as a synthesis run.
        self._disk_entries: dict[str, SynthesisReport] = {}
        self._backend_key = backend_signature(backend)
        if store is not None:
            self._store: ArtifactStore | None = store
        elif disk_path is not None:
            self._store = ArtifactStore(disk_path).open_for_append(
                tolerant=True)
        else:
            self._store = None
        self._load_disk()

    # -------------------------------------------------------------- evaluate

    def evaluate(self, graph: DataflowGraph, node_ids: Iterable[int],
                 name: str = "") -> SynthesisReport:
        """Return the (possibly cached) synthesis report of one subgraph."""
        return self.evaluate_batch(graph, [tuple(node_ids)], [name])[0]

    def evaluate_batch(self, graph: DataflowGraph,
                       node_sets: Sequence[Iterable[int]],
                       names: Sequence[str] | None = None
                       ) -> list[SynthesisReport]:
        """Evaluate a batch of subgraphs, answering from the cache where possible.

        Only the distinct missing subgraphs are forwarded to the backend (in
        one ``evaluate_batch`` call, so a parallel backend fans them out);
        duplicates within the batch are evaluated once and counted as one
        miss plus hits, matching serial semantics.  A miss answered by the
        disk-warmed layer counts as a disk hit, not a synthesis run.  Results
        come back in input order.

        Args:
            graph: the containing dataflow graph.
            node_sets: one node-id collection per subgraph.
            names: optional per-subgraph report names (used on misses only).

        Returns:
            One report per requested node set, in the same order.
        """
        normalized = [tuple(sorted(set(node_ids))) for node_ids in node_sets]
        if names is None:
            names = [""] * len(normalized)
        keys = [subgraph_fingerprint(graph, node_ids) for node_ids in normalized]

        missing_order: list[str] = []
        missing_seen: set[str] = set()
        missing_sets: list[tuple[int, ...]] = []
        missing_names: list[str] = []
        for key, node_ids, name in zip(keys, normalized, names):
            if key in self._entries or key in missing_seen:
                self.stats.hits += 1
                continue
            self.stats.misses += 1
            if key in self._disk_entries:
                self.stats.disk_hits += 1
                self._entries[key] = self._disk_entries[key]
                continue
            self.stats.synth_runs += 1
            missing_order.append(key)
            missing_seen.add(key)
            missing_sets.append(node_ids)
            missing_names.append(name)

        if missing_sets:
            reports = self.backend.evaluate_batch(graph, missing_sets,
                                                  missing_names)
            for key, report in zip(missing_order, reports):
                self._entries[key] = report
                self._store_disk(key, report)

        return [self._entries[key] for key in keys]

    # ------------------------------------------------------------ disk layer

    def _load_disk(self) -> None:
        """Warm the second-level dict from the store's ``synth-eval`` records.

        Only records written under *this* backend's signature are loaded;
        records from other configurations (or legacy records whose old-style
        signature can no longer match any current backend) stay on disk,
        ignored.  Malformed bodies are skipped, never fatal.
        """
        if self._store is None:
            return
        for record in self._store.kind("synth-eval"):
            body = record.body
            if body.get("backend") != self._backend_key:
                continue  # persisted by a differently-configured backend
            try:
                report = SynthesisReport(
                    name=body["name"],
                    delay_ps=float(body["delay_ps"]),
                    num_gates=int(body["num_gates"]),
                    num_gates_unoptimized=int(body["num_gates_unoptimized"]),
                    area_um2=float(body["area_um2"]),
                    aig_depth=body.get("aig_depth"),
                    node_ids=tuple(body.get("node_ids") or ()),
                )
                fingerprint = body["fingerprint"]
            except (KeyError, TypeError, ValueError):
                continue  # skip malformed bodies rather than fail the run
            if fingerprint not in self._disk_entries:
                self._disk_entries[fingerprint] = report
                self.stats.disk_loaded += 1

    def _store_disk(self, key: str, report: SynthesisReport) -> None:
        if self._store is None:
            return
        body = {
            "fingerprint": key,
            "backend": self._backend_key,
            "name": report.name,
            "delay_ps": report.delay_ps,
            "num_gates": report.num_gates,
            "num_gates_unoptimized": report.num_gates_unoptimized,
            "area_um2": report.area_um2,
            "aig_depth": report.aig_depth,
            "node_ids": list(report.node_ids),
        }
        self._store.put(StoreRecord(
            kind="synth-eval",
            key=synth_eval_key(self._backend_key, key),
            schema=SYNTH_EVAL_BODY_SCHEMA,
            body=body,
            t=time.time()))

    # -------------------------------------------------------------- plumbing

    @property
    def flow(self):
        """Backward-compatible alias for :attr:`backend`."""
        return self.backend

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all cached entries and reset statistics.

        The disk store and the records pre-loaded from it are untouched, so
        lookups after a clear can still be answered by the disk layer.
        """
        self._entries.clear()
        self.stats = CacheStatistics(disk_loaded=len(self._disk_entries))
