"""Memoisation of subgraph synthesis evaluations.

Subgraph evaluation dominates ISDC runtime (the paper reports a 40x runtime
multiplier), and identical subgraphs recur across iterations once the schedule
stabilises.  The cache keys on a *structural fingerprint* of the induced
subgraph (op kinds, widths, attributes, edges and boundary -- see
:mod:`repro.synth.fingerprint`), so a hit is guaranteed to be a structurally
identical block even across distinct graphs, distinct node ids, or graphs
that happen to share a name.

An optional on-disk layer (append-only JSON lines) makes repeated experiment
runs warm: pass ``disk_path`` and every fresh evaluation is persisted, every
future cache construction pre-loads it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.ir.graph import DataflowGraph
from repro.synth.fingerprint import subgraph_fingerprint
from repro.synth.report import SynthesisReport


def _backend_signature(backend) -> str:
    """Configuration signature of a backend, for disk-cache compatibility.

    Reports persisted by one backend configuration must never be served to a
    differently-configured one (an estimator's guesses are not STA numbers,
    an unoptimised flow's delays are not an optimised flow's), so every disk
    record carries this signature and mismatching records are skipped on load.
    """
    parts = [type(backend).__name__]
    for attribute in ("optimize", "compute_aig", "pessimism"):
        if hasattr(backend, attribute):
            parts.append(f"{attribute}={getattr(backend, attribute)}")
    optimizer = getattr(backend, "_optimizer", None)
    if optimizer is not None:
        parts.append(f"balance={optimizer.balance}")
    library = getattr(backend, "library", None)
    if library is not None:
        parts.append(f"library={getattr(library, 'name', type(library).__name__)}")
    return ",".join(parts)


@dataclass
class CacheStatistics:
    """Hit/miss counters of an :class:`EvaluationCache`.

    A *miss* is any lookup the in-memory layer could not answer.  Misses
    split into ``disk_hits`` (answered by a disk-warmed record, no synthesis
    run) and ``synth_runs`` (forwarded to the backend); ``misses ==
    disk_hits + synth_runs`` always holds.  Consumers reporting "distinct
    subgraphs synthesised" must read ``synth_runs``, not ``misses``.
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    synth_runs: int = 0
    disk_loaded: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0


class EvaluationCache:
    """Caches :class:`SynthesisReport` objects per structural fingerprint.

    Args:
        backend: the downstream flow used on cache misses; anything
            satisfying :class:`~repro.synth.backend.FlowBackend` (including a
            plain :class:`~repro.synth.flow.SynthesisFlow`).
        disk_path: optional path to a JSON-lines cache file.  Existing
            entries are pre-loaded; fresh evaluations are appended.

    Attributes:
        backend: the wrapped flow backend.
        stats: hit/miss counters.
    """

    def __init__(self, backend, disk_path: str | Path | None = None) -> None:
        self.backend = backend
        self.stats = CacheStatistics()
        self._entries: dict[str, SynthesisReport] = {}
        # Disk-warmed records live in a second-level dict so that answering
        # from them is visible in the accounting (stats.disk_hits) instead of
        # masquerading as a synthesis run.
        self._disk_entries: dict[str, SynthesisReport] = {}
        self._disk_path = Path(disk_path) if disk_path is not None else None
        self._backend_key = _backend_signature(backend)
        self._load_disk()

    # -------------------------------------------------------------- evaluate

    def evaluate(self, graph: DataflowGraph, node_ids: Iterable[int],
                 name: str = "") -> SynthesisReport:
        """Return the (possibly cached) synthesis report of one subgraph."""
        return self.evaluate_batch(graph, [tuple(node_ids)], [name])[0]

    def evaluate_batch(self, graph: DataflowGraph,
                       node_sets: Sequence[Iterable[int]],
                       names: Sequence[str] | None = None
                       ) -> list[SynthesisReport]:
        """Evaluate a batch of subgraphs, answering from the cache where possible.

        Only the distinct missing subgraphs are forwarded to the backend (in
        one ``evaluate_batch`` call, so a parallel backend fans them out);
        duplicates within the batch are evaluated once and counted as one
        miss plus hits, matching serial semantics.  A miss answered by the
        disk-warmed layer counts as a disk hit, not a synthesis run.  Results
        come back in input order.

        Args:
            graph: the containing dataflow graph.
            node_sets: one node-id collection per subgraph.
            names: optional per-subgraph report names (used on misses only).

        Returns:
            One report per requested node set, in the same order.
        """
        normalized = [tuple(sorted(set(node_ids))) for node_ids in node_sets]
        if names is None:
            names = [""] * len(normalized)
        keys = [subgraph_fingerprint(graph, node_ids) for node_ids in normalized]

        missing_order: list[str] = []
        missing_seen: set[str] = set()
        missing_sets: list[tuple[int, ...]] = []
        missing_names: list[str] = []
        for key, node_ids, name in zip(keys, normalized, names):
            if key in self._entries or key in missing_seen:
                self.stats.hits += 1
                continue
            self.stats.misses += 1
            if key in self._disk_entries:
                self.stats.disk_hits += 1
                self._entries[key] = self._disk_entries[key]
                continue
            self.stats.synth_runs += 1
            missing_order.append(key)
            missing_seen.add(key)
            missing_sets.append(node_ids)
            missing_names.append(name)

        if missing_sets:
            reports = self.backend.evaluate_batch(graph, missing_sets,
                                                  missing_names)
            for key, report in zip(missing_order, reports):
                self._entries[key] = report
                self._store_disk(key, report)

        return [self._entries[key] for key in keys]

    # ------------------------------------------------------------ disk layer

    def _load_disk(self) -> None:
        if self._disk_path is None or not self._disk_path.exists():
            return
        for line in self._disk_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if record.get("backend") != self._backend_key:
                    continue  # persisted by a differently-configured backend
                report = SynthesisReport(
                    name=record["name"],
                    delay_ps=float(record["delay_ps"]),
                    num_gates=int(record["num_gates"]),
                    num_gates_unoptimized=int(record["num_gates_unoptimized"]),
                    area_um2=float(record["area_um2"]),
                    aig_depth=record.get("aig_depth"),
                    node_ids=tuple(record.get("node_ids", ())),
                )
                key = record["key"]
            except (KeyError, TypeError, ValueError, json.JSONDecodeError):
                continue  # skip corrupt lines rather than fail the run
            if key not in self._disk_entries:
                self._disk_entries[key] = report
                self.stats.disk_loaded += 1

    def _store_disk(self, key: str, report: SynthesisReport) -> None:
        if self._disk_path is None:
            return
        record = {
            "key": key,
            "backend": self._backend_key,
            "name": report.name,
            "delay_ps": report.delay_ps,
            "num_gates": report.num_gates,
            "num_gates_unoptimized": report.num_gates_unoptimized,
            "area_um2": report.area_um2,
            "aig_depth": report.aig_depth,
            "node_ids": list(report.node_ids),
        }
        self._disk_path.parent.mkdir(parents=True, exist_ok=True)
        with self._disk_path.open("a") as handle:
            handle.write(json.dumps(record) + "\n")

    # -------------------------------------------------------------- plumbing

    @property
    def flow(self):
        """Backward-compatible alias for :attr:`backend`."""
        return self.backend

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all cached entries and reset statistics.

        The disk file and the records pre-loaded from it are untouched, so
        lookups after a clear can still be answered by the disk layer.
        """
        self._entries.clear()
        self.stats = CacheStatistics(disk_loaded=len(self._disk_entries))
