"""Memoisation of subgraph synthesis evaluations.

Subgraph evaluation dominates ISDC runtime (the paper reports a 40x runtime
multiplier), and identical subgraphs recur across iterations once the schedule
stabilises.  The cache keys on the design name and the exact node-id set, so a
hit is guaranteed to be an identical block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.ir.graph import DataflowGraph
from repro.synth.flow import SynthesisFlow
from repro.synth.report import SynthesisReport


@dataclass
class CacheStatistics:
    """Hit/miss counters of an :class:`EvaluationCache`."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0


@dataclass
class EvaluationCache:
    """Caches :class:`SynthesisReport` objects per (design, node set).

    Attributes:
        flow: the underlying synthesis flow used on cache misses.
        stats: hit/miss counters.
    """

    flow: SynthesisFlow
    stats: CacheStatistics = field(default_factory=CacheStatistics)
    _entries: dict[tuple[str, tuple[int, ...]], SynthesisReport] = field(
        default_factory=dict, repr=False)

    def evaluate(self, graph: DataflowGraph, node_ids: Iterable[int],
                 name: str = "") -> SynthesisReport:
        """Return the (possibly cached) synthesis report of a subgraph."""
        key = (graph.name, tuple(sorted(set(node_ids))))
        if key in self._entries:
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        report = self.flow.evaluate_subgraph(graph, key[1], name=name)
        self._entries[key] = report
        return report

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all cached entries and reset statistics."""
        self._entries.clear()
        self.stats = CacheStatistics()
