"""Downstream-tool flow: logic synthesis + static timing analysis.

This package is the reproduction's "downstream tool" from the paper's Fig. 2:
it accepts a combinational subgraph of the HLS IR, lowers it to gates,
optimises the logic and reports the post-synthesis critical-path delay.  The
ISDC feedback loop only ever consumes that one number per subgraph, exactly
as the paper's flow consumes the Yosys + OpenSTA report.

Concrete tools plug in behind the :class:`FlowBackend` protocol (see
:mod:`repro.synth.backend`); :class:`LocalSynthesisBackend` is the default
lower -> optimise -> STA pipeline with parallel batch dispatch, and
:class:`EstimatorBackend` is a cheap closed-form stand-in for quick mode.
"""

from repro.synth.report import SynthesisReport
from repro.synth.flow import SynthesisFlow
from repro.synth.backend import (
    BACKENDS,
    EstimatorBackend,
    FlowBackend,
    LocalSynthesisBackend,
    create_backend,
)
from repro.synth.cache import CacheStatistics, EvaluationCache
from repro.synth.estimator import CharacterizedOperatorModel, NaiveDelayEstimator
from repro.synth.fingerprint import canonical_subgraph, subgraph_fingerprint

__all__ = [
    "BACKENDS",
    "CacheStatistics",
    "CharacterizedOperatorModel",
    "EstimatorBackend",
    "EvaluationCache",
    "FlowBackend",
    "LocalSynthesisBackend",
    "NaiveDelayEstimator",
    "SynthesisFlow",
    "SynthesisReport",
    "canonical_subgraph",
    "create_backend",
    "subgraph_fingerprint",
]
