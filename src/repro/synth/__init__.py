"""Downstream-tool flow: logic synthesis + static timing analysis.

This package is the reproduction's "downstream tool" from the paper's Fig. 2:
it accepts a combinational subgraph of the HLS IR, lowers it to gates,
optimises the logic and reports the post-synthesis critical-path delay.  The
ISDC feedback loop only ever consumes that one number per subgraph, exactly
as the paper's flow consumes the Yosys + OpenSTA report.
"""

from repro.synth.report import SynthesisReport
from repro.synth.flow import SynthesisFlow
from repro.synth.cache import EvaluationCache
from repro.synth.estimator import CharacterizedOperatorModel, NaiveDelayEstimator

__all__ = [
    "SynthesisReport",
    "SynthesisFlow",
    "EvaluationCache",
    "CharacterizedOperatorModel",
    "NaiveDelayEstimator",
]
