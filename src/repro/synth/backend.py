"""Pluggable flow backends for subgraph evaluation.

The ISDC loop only ever consumes one :class:`~repro.synth.report.SynthesisReport`
per subgraph, so any "downstream tool" that produces such reports can plug in
behind the :class:`FlowBackend` protocol -- the local gate-level simulator,
a cheap analytical estimator, or (in the future) a real Yosys/OpenSTA flow.

Two backends ship today:

* :class:`LocalSynthesisBackend` -- the default lower -> optimise -> STA
  pipeline, with a process-pool :meth:`~LocalSynthesisBackend.evaluate_batch`
  that mirrors the paper's parallel dispatch of subgraphs to the downstream
  flow (Section III: the "40x runtime multiplier" is wall-clock amortised by
  fanning evaluations out).
* :class:`EstimatorBackend` -- a closed-form longest-path estimator for quick
  mode: orders of magnitude cheaper, no netlists, same report shape.

Use :func:`create_backend` to construct one by name.
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol, Sequence, runtime_checkable

from repro.ir.graph import DataflowGraph
from repro.parallel import PersistentPool, effective_jobs, split_round_robin
from repro.synth.flow import SynthesisFlow
from repro.synth.report import SynthesisReport
from repro.tech.delay_model import OperatorModel
from repro.tech.library import TechLibrary
from repro.tech.sky130 import sky130_library


@runtime_checkable
class FlowBackend(Protocol):
    """What the evaluation stack requires of a downstream flow.

    Any object exposing these two methods (plus a ``library`` attribute for
    register-overhead lookups) can serve :class:`~repro.isdc.feedback.FeedbackEngine`,
    :class:`~repro.sdc.pipeline.PipelineAnalyzer` and the experiment
    harnesses.  ``evaluate_batch`` must return results in input order.
    """

    library: TechLibrary

    def evaluate_subgraph(self, graph: DataflowGraph, node_ids: Iterable[int],
                          name: str = "") -> SynthesisReport:
        """Evaluate one induced subgraph."""
        ...

    def evaluate_batch(self, graph: DataflowGraph,
                       node_sets: Sequence[Iterable[int]],
                       names: Sequence[str] | None = None
                       ) -> list[SynthesisReport]:
        """Evaluate a batch of subgraphs, preserving input order."""
        ...


def _evaluate_chunk(payload: tuple) -> list[SynthesisReport]:
    """Worker-side evaluation of one chunk of a batch (module-level: picklable)."""
    flow, graph, chunk = payload
    return [flow.evaluate_subgraph(graph, node_ids, name=name)
            for node_ids, name in chunk]


class LocalSynthesisBackend(SynthesisFlow):
    """The default backend: local synthesis flow with parallel batch dispatch.

    Single-subgraph evaluation is inherited from :class:`SynthesisFlow`;
    :meth:`evaluate_batch` fans the batch out over a persistent process pool
    when ``jobs > 1``.  Chunks are dealt round-robin and results re-assembled
    by index, so the output order (and every floating-point value in it) is
    identical to a serial run.

    Args:
        library: technology library; defaults to the synthetic SKY130 library.
        optimize: run the logic optimiser before STA.
        balance: enable the optimiser's tree-balancing pass.
        compute_aig: also record AIG depth in every report.
        jobs: maximum worker processes for batch evaluation (1 = serial).
    """

    def __init__(self, library: TechLibrary | None = None, optimize: bool = True,
                 balance: bool = True, compute_aig: bool = False,
                 jobs: int = 1) -> None:
        super().__init__(library, optimize=optimize, balance=balance,
                         compute_aig=compute_aig)
        self.jobs = max(1, int(jobs))
        self._pool = PersistentPool(self.jobs)

    def evaluate_batch(self, graph: DataflowGraph,
                       node_sets: Sequence[Iterable[int]],
                       names: Sequence[str] | None = None
                       ) -> list[SynthesisReport]:
        """Evaluate several subgraphs, in parallel when ``jobs > 1``."""
        if names is None:
            names = [""] * len(node_sets)
        tasks = list(zip([tuple(node_ids) for node_ids in node_sets], names))
        workers = effective_jobs(self.jobs, len(tasks))
        if workers <= 1:
            return super().evaluate_batch(graph, [t[0] for t in tasks],
                                          [t[1] for t in tasks])
        indexed = list(enumerate(tasks))
        chunks = [c for c in split_round_robin(indexed, workers) if c]
        payloads = [(self._plain_flow(), graph, [task for _, task in chunk])
                    for chunk in chunks]
        results: list[SynthesisReport | None] = [None] * len(tasks)
        for chunk, reports in zip(chunks, self._pool.map(_evaluate_chunk,
                                                         payloads)):
            for (index, _), report in zip(chunk, reports):
                results[index] = report
        return results  # type: ignore[return-value]

    def _plain_flow(self) -> SynthesisFlow:
        """A picklable :class:`SynthesisFlow` twin shipped to the workers."""
        flow = SynthesisFlow(self.library, optimize=self.optimize,
                             balance=self._optimizer.balance,
                             compute_aig=self.compute_aig)
        return flow

    def close(self) -> None:
        """Shut down the worker pool (safe to call more than once)."""
        self._pool.close()

    def __enter__(self) -> "LocalSynthesisBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class EstimatorBackend:
    """Cheap analytical backend for quick mode: no lowering, no netlists.

    The delay of a subgraph is the longest path through its induced DAG,
    summing isolated per-operation delays from the closed-form
    :class:`~repro.tech.delay_model.OperatorModel` -- exactly the classic SDC
    critical-path view, packaged behind the backend protocol so the whole
    evaluation stack (cache, feedback engine, analyzer, experiments) runs
    unchanged, just orders of magnitude faster.  Gate and area figures are
    rough width-proportional estimates and are flagged as such in the report
    name-space (an estimator report never claims optimisation savings:
    ``num_gates == num_gates_unoptimized``).

    Args:
        library: technology library for the operator model.
        pessimism: multiplicative guard band on per-operation delays.
    """

    def __init__(self, library: TechLibrary | None = None,
                 pessimism: float = 1.0, **_ignored: Any) -> None:
        self.library = library or sky130_library()
        self.model = OperatorModel(self.library, pessimism=pessimism)

    def signature(self) -> str:
        """Configuration identity of this backend, for persisted-result keys.

        Estimator figures must never be served as synthesis figures (or
        vice versa), so the family tag differs from the synthesis flow's;
        the delay-model signature carries the formula version, guard band
        and the library's content identity.
        """
        return f"EstimatorBackend({self.model.signature()})"

    def evaluate_subgraph(self, graph: DataflowGraph, node_ids: Iterable[int],
                          name: str = "") -> SynthesisReport:
        """Longest-path delay estimate of the induced subgraph.

        The propagation is one masked kernel sweep: members outside the
        subgraph neither receive nor relay values, and predecessor-less
        members start from zero (``floor=0.0``), exactly the induced-DAG
        longest path the per-node loop used to compute.
        """
        import numpy as np

        from repro.kernel import GraphView, forward_propagate

        view = GraphView.from_dataflow(graph)
        wanted = tuple(sorted(set(node_ids)))
        mask = np.zeros(view.num_nodes, dtype=bool)
        mask[view.dense_of(wanted)] = True
        delays = np.zeros(view.num_nodes, dtype=float)
        gates = 0
        for nid in wanted:
            node = graph.node(nid)
            if node.is_source:
                continue
            delays[view.index_of[nid]] = self.model.node_delay(node)
            gates += node.width * max(1, len(node.operands))
        values, _ = forward_propagate(view, delays, mask=mask, floor=0.0)
        critical = float(values[mask].max()) if wanted else 0.0
        return SynthesisReport(
            name=name or f"{graph.name}_est{len(wanted)}",
            delay_ps=critical,
            num_gates=gates,
            num_gates_unoptimized=gates,
            area_um2=0.0,
            aig_depth=None,
            node_ids=wanted,
        )

    def evaluate_batch(self, graph: DataflowGraph,
                       node_sets: Sequence[Iterable[int]],
                       names: Sequence[str] | None = None
                       ) -> list[SynthesisReport]:
        """Serial batch evaluation (the estimator is too cheap to fan out)."""
        if names is None:
            names = [""] * len(node_sets)
        return [self.evaluate_subgraph(graph, node_ids, name=name)
                for node_ids, name in zip(node_sets, names)]

    def evaluate_graph(self, graph: DataflowGraph, name: str = "") -> SynthesisReport:
        """Estimate an entire dataflow graph as one combinational block."""
        return self.evaluate_subgraph(graph, graph.node_ids(), name or graph.name)

    def stage_delay(self, graph: DataflowGraph, stage_nodes: Iterable[int]) -> float:
        """Estimated delay of one pipeline stage (convenience wrapper)."""
        nodes = [nid for nid in stage_nodes if not graph.node(nid).is_source]
        if not nodes:
            return 0.0
        return self.evaluate_subgraph(graph, nodes).delay_ps


BACKENDS: dict[str, type] = {
    "local": LocalSynthesisBackend,
    "estimator": EstimatorBackend,
}


def create_backend(kind: str = "local", library: TechLibrary | None = None,
                   **options: Any) -> FlowBackend:
    """Construct a flow backend by registry name.

    Args:
        kind: one of :data:`BACKENDS` (currently ``local`` or ``estimator``).
        library: technology library forwarded to the backend.
        **options: backend-specific keyword options (e.g. ``jobs``,
            ``optimize``); options a backend does not understand are rejected
            by its constructor, except :class:`EstimatorBackend` which ignores
            synthesis-only knobs.

    Raises:
        ValueError: for an unknown backend name.
    """
    try:
        factory = BACKENDS[kind]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(f"unknown flow backend {kind!r}; expected one of {known}")
    if factory is EstimatorBackend:
        options = {key: value for key, value in options.items()
                   if key in ("pessimism",)}
    return factory(library, **options)


__all__ = ["BACKENDS", "EstimatorBackend", "FlowBackend",
           "LocalSynthesisBackend", "create_backend"]
