"""Per-operation delay estimators.

Two estimators are provided:

* :class:`CharacterizedOperatorModel` characterises every (opcode, width)
  combination *in isolation* by actually lowering a single operation and
  running the downstream flow on it.  This is the faithful reproduction of
  the paper's setup, where operator delays are pre-characterised through the
  logic synthesiser for the target library.
* :class:`NaiveDelayEstimator` sums isolated delays along IR paths, which is
  precisely the critical-path estimate the original SDC scheduler uses
  (Section II of the paper); ISDC's feedback replaces these sums with
  measured subgraph delays.
"""

from __future__ import annotations

from repro.ir.builder import GraphBuilder
from repro.ir.graph import DataflowGraph
from repro.ir.node import Node
from repro.ir.ops import OpKind
from repro.synth.flow import SynthesisFlow
from repro.tech.delay_model import OperatorModel
from repro.tech.library import TechLibrary
from repro.tech.sky130 import sky130_library


class CharacterizedOperatorModel:
    """Operator delays characterised by single-operation synthesis runs.

    Args:
        library: technology library used by the characterisation flow.
        optimize: whether the characterisation flow optimises logic (matches
            how standalone operators would be characterised in practice).
        pessimism: multiplicative guard band applied to characterised delays.
            Real characterisation flows guard-band for wire load, process
            variation and the context the operator will be instantiated in;
            the paper's Fig. 1 shows XLS estimates routinely exceeding
            post-synthesis STA by 25 % and more, which the default models.
    """

    def __init__(self, library: TechLibrary | None = None, optimize: bool = True,
                 pessimism: float = 1.25) -> None:
        self.library = library or sky130_library()
        if pessimism < 1.0:
            raise ValueError(f"pessimism must be >= 1.0, got {pessimism}")
        self.pessimism = pessimism
        self._flow = SynthesisFlow(self.library, optimize=optimize)
        self._fallback = OperatorModel(self.library, pessimism=1.0)
        self._cache: dict[tuple, float] = {}

    def node_delay(self, node: Node) -> float:
        """Isolated post-synthesis delay estimate (ps) of ``node``."""
        if node.kind.is_free:
            return 0.0
        key = self._characterization_key(node)
        if key not in self._cache:
            self._cache[key] = self._characterize(node)
        return self._cache[key] * self.pessimism

    def _characterization_key(self, node: Node) -> tuple:
        shift_by_constant = False
        if node.kind in (OpKind.SHL, OpKind.SHRL, OpKind.SHRA, OpKind.ROTL,
                         OpKind.ROTR):
            shift_by_constant = "constant_shift" in node.attrs
        return (node.kind, node.width, len(node.operands), shift_by_constant)

    def _characterize(self, node: Node) -> float:
        """Synthesise a standalone instance of ``node``'s operation."""
        builder = GraphBuilder(f"char_{node.kind.value}_{node.width}")
        operands = []
        for index in range(len(node.operands)):
            operands.append(builder.param(f"op{index}", node.width).node_id)
        try:
            isolated = builder.graph.add_node(node.kind, operands,
                                              width=node.width, **dict(node.attrs))
        except (ValueError, KeyError):
            return self._fallback.delay(node.kind, node.width,
                                        max(2, len(node.operands)))
        builder.output(isolated)
        report = self._flow.evaluate_subgraph(builder.graph,
                                              [isolated.node_id],
                                              name=builder.graph.name)
        return report.delay_ps

    def preload(self, graph: DataflowGraph) -> None:
        """Characterise every operation appearing in ``graph`` up front."""
        for node in graph.nodes():
            self.node_delay(node)


class NaiveDelayEstimator:
    """Sums isolated operator delays along IR paths (the classic SDC view).

    Args:
        model: any object exposing ``node_delay(node) -> float``; defaults to
            the closed-form :class:`~repro.tech.delay_model.OperatorModel`.
    """

    def __init__(self, model: OperatorModel | CharacterizedOperatorModel | None = None
                 ) -> None:
        self.model = model or OperatorModel()

    def node_delay(self, node: Node) -> float:
        """Isolated delay of one node."""
        return self.model.node_delay(node)

    def path_delay(self, graph: DataflowGraph, path: list[int]) -> float:
        """Sum of isolated delays along an explicit node-id path."""
        return sum(self.node_delay(graph.node(nid)) for nid in path)

    def critical_path_delay(self, graph: DataflowGraph, source: int, sink: int,
                            delays: dict[int, float] | None = None) -> float:
        """Largest delay sum over any path from ``source`` to ``sink``.

        One kernel single-source longest-path sweep over the graph's shared
        :class:`~repro.kernel.GraphView` (values only, no path).

        Returns ``-1.0`` if ``sink`` is unreachable from ``source``.
        """
        from repro.kernel import GraphView, UNREACHED, longest_path_from

        view = GraphView.from_dataflow(graph)
        if delays is None:
            delays = {n.node_id: self.node_delay(n) for n in graph.nodes()}
        values, _ = longest_path_from(view, view.delay_vector(delays),
                                      view.index_of[source],
                                      with_parents=False)
        value = values[view.index_of[sink]]
        return float(value) if value != UNREACHED else -1.0
