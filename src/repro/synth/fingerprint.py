"""Structural fingerprints of induced IR subgraphs.

The evaluation cache must key on *what gets synthesised*, not on which graph
object or node ids happened to describe it: two graphs may share a name while
differing structurally, and the same structural block recurs across designs
(and across repeated builds of the same design).  A fingerprint canonically
serialises exactly the information :func:`repro.netlist.lowering.lower_subgraph`
consumes:

* the induced nodes in lowering (topological) order -- op kind, result width
  and opcode-specific attributes;
* the edge structure, with in-set operands referenced by topological rank;
* the boundary: external non-constant operands become primary inputs (only
  their identity and width matter), external constants are materialised
  (their value matters);
* which in-set nodes are netlist outputs (results used outside the set, or
  not used at all).

Equal fingerprints therefore lower to identical netlists and yield identical
synthesis reports; node ids, graph names and report names never enter the key.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.ir.graph import DataflowGraph
from repro.ir.ops import OpKind


def canonical_subgraph(graph: DataflowGraph, node_ids: Iterable[int]) -> tuple:
    """Canonical structural form of the induced subgraph over ``node_ids``.

    Returns a nested tuple that is equal for structurally identical blocks
    and hashable/serialisable.  See the module docstring for what it encodes.
    """
    from repro.ir.analysis import topological_order

    wanted = set(node_ids)
    order = [nid for nid in topological_order(graph) if nid in wanted]
    rank = {nid: position for position, nid in enumerate(order)}

    external_index: dict[int, int] = {}
    entries = []
    for nid in order:
        node = graph.node(nid)
        operand_refs = []
        for operand in node.operands:
            if operand in wanted:
                operand_refs.append(("n", rank[operand]))
                continue
            producer = graph.node(operand)
            if producer.kind is OpKind.CONSTANT:
                operand_refs.append(("c", producer.width,
                                     int(producer.attrs["value"])))
            else:
                if operand not in external_index:
                    external_index[operand] = len(external_index)
                operand_refs.append(("i", external_index[operand],
                                     producer.width))
        attrs = tuple(sorted((key, repr(value))
                             for key, value in node.attrs.items()))
        is_output = (not node.is_source
                     and (not graph.users_of(nid)
                          or any(user not in wanted
                                 for user in graph.users_of(nid))))
        entries.append((node.kind.value, node.width, attrs,
                        tuple(operand_refs), is_output))
    return tuple(entries)


def subgraph_fingerprint(graph: DataflowGraph, node_ids: Iterable[int]) -> str:
    """Hex digest uniquely identifying the structure of an induced subgraph."""
    digest = hashlib.sha256(repr(canonical_subgraph(graph, node_ids)).encode())
    return digest.hexdigest()
