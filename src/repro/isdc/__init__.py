"""ISDC: subgraph extraction-based feedback-guided iterative SDC scheduling.

This package is the paper's primary contribution:

* :mod:`~repro.isdc.delay_matrix` -- the pairwise critical-path delay matrix
  ``D[n][n]`` and its feedback update (Alg. 1);
* :mod:`~repro.isdc.reformulate` -- the O(n^2) delay re-propagation used to
  rebuild SDC timing constraints each iteration (Alg. 2), plus an O(n^3)
  Floyd-Warshall-style reference used in the accuracy ablation;
* :mod:`~repro.isdc.extraction` -- combinational path enumeration from a
  schedule, delay-driven and fanout-driven ranking (Eq. 3), and expansion of
  paths to cones and windows;
* :mod:`~repro.isdc.feedback` -- evaluation of extracted subgraphs through the
  downstream synthesis flow (with memoisation);
* :mod:`~repro.isdc.scheduler` -- the iterative loop tying it all together;
* :mod:`~repro.isdc.config` / :mod:`~repro.isdc.metrics` -- configuration and
  per-iteration history (register usage, slack, estimation error, runtime).
"""

from repro.isdc.config import IsdcConfig, ExtractionStrategy, ExpansionStrategy
from repro.isdc.delay_matrix import DelayMatrix
from repro.isdc.extraction import (
    CandidatePath,
    SubgraphExtractor,
    enumerate_candidate_paths,
)
from repro.isdc.feedback import FeedbackEngine, SubgraphFeedback
from repro.isdc.metrics import IterationRecord, IsdcResult
from repro.isdc.reformulate import propagate_delays, floyd_warshall_refine
from repro.isdc.scheduler import IsdcScheduler

__all__ = [
    "IsdcConfig",
    "ExtractionStrategy",
    "ExpansionStrategy",
    "DelayMatrix",
    "CandidatePath",
    "SubgraphExtractor",
    "enumerate_candidate_paths",
    "FeedbackEngine",
    "SubgraphFeedback",
    "IterationRecord",
    "IsdcResult",
    "propagate_delays",
    "floyd_warshall_refine",
    "IsdcScheduler",
]
