"""Per-iteration history and final results of the ISDC loop."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sdc.pipeline import PipelineReport
from repro.sdc.scheduler import Schedule


@dataclass(frozen=True)
class IterationRecord:
    """Snapshot of one ISDC iteration.

    Attributes:
        iteration: 0 for the initial (plain SDC) schedule, then 1, 2, ...
        num_stages: pipeline depth of the iteration's schedule.
        num_registers: pipeline register bits of the iteration's schedule.
        subgraphs_evaluated: subgraphs sent to the downstream flow this
            iteration (0 for the initial schedule).
        matrix_updates: delay-matrix entries lowered by feedback + propagation.
        estimation_error: mean relative error of the scheduler's stage-delay
            estimates against post-synthesis STA (``None`` when tracking is
            disabled).
        naive_estimation_error: the same error computed with the original
            (feedback-free) delay matrix -- the "original SDC" curve of the
            paper's Fig. 7.
        runtime_s: wall-clock time spent in this iteration.
        solver_runtime_s: wall-clock time of the iteration's scheduling
            re-solve (constraint/LP update or rebuild, LP solve, rounding
            repair); for iteration 0 the baseline's constraint build + solve.
        synthesis_runtime_s: wall-clock time spent extracting subgraphs and
            evaluating them through the downstream flow (0 for iteration 0).
    """

    iteration: int
    num_stages: int
    num_registers: int
    subgraphs_evaluated: int = 0
    matrix_updates: int = 0
    estimation_error: float | None = None
    naive_estimation_error: float | None = None
    runtime_s: float = 0.0
    solver_runtime_s: float = 0.0
    synthesis_runtime_s: float = 0.0


@dataclass
class IsdcResult:
    """Final outcome of an ISDC run.

    Attributes:
        design: design name.
        initial_schedule: the plain-SDC starting point.
        final_schedule: the schedule of the best (lowest-register) iteration.
        initial_report: pipeline report of the starting point.
        final_report: pipeline report of the best iteration.
        history: one :class:`IterationRecord` per iteration, in order.
        iterations: number of refinement iterations actually run.
        total_runtime_s: total wall-clock scheduling time (including the
            initial SDC schedule and all feedback evaluations).
        baseline_runtime_s: wall-clock time of the initial SDC schedule alone.
        subgraphs_evaluated: total distinct subgraphs synthesised (true
            backend runs; disk-cache answers are excluded).
        solver: the re-solve strategy the run used ("full" or "incremental").
        solver_runtime_s: cumulative scheduling-solve time across the run
            (sum of the per-iteration ``solver_runtime_s``).
        synthesis_runtime_s: cumulative subgraph extraction + downstream
            evaluation time across the run.
    """

    design: str
    initial_schedule: Schedule
    final_schedule: Schedule
    initial_report: PipelineReport
    final_report: PipelineReport
    history: list[IterationRecord] = field(default_factory=list)
    iterations: int = 0
    total_runtime_s: float = 0.0
    baseline_runtime_s: float = 0.0
    subgraphs_evaluated: int = 0
    solver: str = "full"
    solver_runtime_s: float = 0.0
    synthesis_runtime_s: float = 0.0

    @property
    def register_reduction(self) -> float:
        """Fractional register reduction relative to the initial schedule."""
        initial = self.initial_report.num_registers
        if initial == 0:
            return 0.0
        return 1.0 - self.final_report.num_registers / initial

    @property
    def stage_reduction(self) -> float:
        """Fractional pipeline-stage reduction relative to the initial schedule."""
        initial = self.initial_report.num_stages
        if initial == 0:
            return 0.0
        return 1.0 - self.final_report.num_stages / initial

    @property
    def runtime_ratio(self) -> float:
        """ISDC runtime divided by the baseline SDC runtime."""
        if self.baseline_runtime_s <= 0:
            return float("inf")
        return self.total_runtime_s / self.baseline_runtime_s

    def register_trajectory(self) -> list[int]:
        """Register usage per iteration (for the Fig. 5 / Fig. 6 curves)."""
        return [record.num_registers for record in self.history]

    def estimation_error_trajectory(self) -> list[float | None]:
        """Estimation error per iteration (for the Fig. 7 curves)."""
        return [record.estimation_error for record in self.history]
