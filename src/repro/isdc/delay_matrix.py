"""The pairwise critical-path delay matrix D[n][n] and its feedback update.

This implements Algorithm 1 of the paper: the matrix is initialised with the
naive estimates (individual delays on the diagonal, summed critical-path
delays for connected pairs, ``-1`` for unconnected pairs), and every measured
subgraph lowers the entries of all node pairs the subgraph covers -- but only
when the measured delay is smaller than the current estimate, so each
evaluation is exploited maximally without ever making estimates worse.

Storage stays dense (the SDC solver slices whole rows/columns), but the
initialisation routes through the kernel's dense/sparse dispatcher, and when
the sparse sweep built the matrix its connectivity pattern -- which is exact
reachability, and *static* across the whole ISDC loop because feedback only
ever lowers connected entries -- is kept on the side.  The Algorithm 2
re-propagation (:mod:`repro.isdc.reformulate`) then sweeps just the
connected pairs instead of whole ``n``-wide rows.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.ir.graph import DataflowGraph
from repro.kernel import GraphView, SparseMatrix, auto_critical_path_matrix
from repro.sdc.delays import NOT_CONNECTED


class DelayMatrix:
    """Estimated critical-path delay for every node pair of a graph.

    The matrix itself stays a plain numpy array, but its row/column order,
    node indexing and the connectivity used by the re-propagation pass all
    come from the graph's shared kernel :class:`~repro.kernel.GraphView`
    (:attr:`view`), so every ISDC layer agrees on one substrate.

    Attributes:
        graph: the dataflow graph the matrix describes.
        matrix: the underlying ``(n, n)`` float array (``NOT_CONNECTED`` for
            unconnected pairs).
        index_of: node id -> row/column index.
    """

    def __init__(self, graph: DataflowGraph, matrix: np.ndarray,
                 index_of: dict[int, int]) -> None:
        self.graph = graph
        self.matrix = matrix
        self.index_of = index_of
        self._order: list[int] | None = None  # derived lazily, shared by copies
        self._dirty: set[tuple[int, int]] = set()
        self._pattern: SparseMatrix | None = None
        self._pattern_t: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._pattern_view: GraphView | None = None

    @property
    def view(self) -> GraphView:
        """The shared levelized-CSR view of :attr:`graph` (kernel cache)."""
        return GraphView.from_dataflow(self.graph)

    # ------------------------------------------------------------ construction

    @classmethod
    def from_graph(cls, graph: DataflowGraph, delays: Mapping[int, float]
                   ) -> "DelayMatrix":
        """Initialise from naive estimates (Alg. 1 lines 1--9).

        Uses the kernel's dense/sparse dispatcher; when the sparse sweep
        produced the matrix, its pattern is retained for the sparse
        Algorithm 2 sweeps.
        """
        view = GraphView.from_dataflow(graph)
        dense, sparse = auto_critical_path_matrix(view,
                                                  view.delay_vector(delays))
        instance = cls(graph, dense, dict(view.index_of))
        instance._order = view.order_ids()
        if sparse is not None:
            instance._pattern = sparse
            instance._pattern_view = view
        return instance

    def copy(self) -> "DelayMatrix":
        """Deep copy (the ISDC loop keeps the running matrix across iterations).

        Only the matrix itself is duplicated; the derived node order and the
        immutable connectivity pattern are shared with the source, so a copy
        per ISDC iteration stays cheap at 100k nodes.
        """
        duplicate = DelayMatrix(self.graph, self.matrix.copy(),
                                dict(self.index_of))
        duplicate._order = self._order
        duplicate._dirty = set(self._dirty)
        duplicate._pattern = self._pattern
        duplicate._pattern_t = self._pattern_t
        duplicate._pattern_view = self._pattern_view
        return duplicate

    # ----------------------------------------------------------------- access

    def _node_order(self) -> list[int]:
        """Node ids in matrix order (cached; do not mutate the result)."""
        if self._order is None:
            self._order = sorted(self.index_of, key=self.index_of.get)
        return self._order

    def node_order(self) -> list[int]:
        """Node ids in matrix row/column order."""
        return list(self._node_order())

    def get(self, u: int, v: int) -> float:
        """Estimated critical-path delay from node ``u`` to node ``v``."""
        return float(self.matrix[self.index_of[u], self.index_of[v]])

    def is_connected(self, u: int, v: int) -> bool:
        """True if the matrix records a combinational path from ``u`` to ``v``."""
        return self.get(u, v) != NOT_CONNECTED

    def individual_delay(self, node_id: int) -> float:
        """Isolated delay of one node (the matrix diagonal)."""
        index = self.index_of[node_id]
        return float(self.matrix[index, index])

    def set(self, u: int, v: int, delay: float) -> None:
        """Overwrite one entry (used by the reformulation pass).

        Connecting or disconnecting a pair this way invalidates the cached
        connectivity pattern, sending re-propagation back to the dense
        sweeps (plain lowering of a connected entry keeps it).
        """
        row, col = self.index_of[u], self.index_of[v]
        if ((self.matrix[row, col] == NOT_CONNECTED)
                != (delay == NOT_CONNECTED)):
            self._pattern = None
            self._pattern_t = None
            self._pattern_view = None
        self.matrix[row, col] = delay
        self._dirty.add((u, v))

    # -------------------------------------------------- connectivity pattern

    def connectivity_pattern(self) -> SparseMatrix | None:
        """The static reachability pattern, when known exactly.

        Row ``v`` of the returned :class:`~repro.kernel.SparseMatrix` lists
        the dense indices of ``v``'s ancestors (diagonal included) -- exactly
        the non-``NOT_CONNECTED`` entries of :attr:`matrix`, for the whole
        life of the matrix, because feedback and re-propagation only lower
        connected entries.  ``None`` when the matrix was built densely or
        was edited out of pattern; callers then use the dense sweeps.
        """
        if self._pattern is None or self._pattern_view is not self.view:
            return None
        return self._pattern

    def descendant_pattern(self) -> (
            tuple[np.ndarray, np.ndarray, np.ndarray] | None):
        """CSR arrays ``(indptr, indices, data)`` of the transposed pattern.

        Row ``u`` lists the dense indices of ``u``'s descendants (diagonal
        included).  Cached; ``None`` whenever :meth:`connectivity_pattern`
        is.
        """
        pattern = self.connectivity_pattern()
        if pattern is None:
            return None
        if self._pattern_t is None:
            self._pattern_t = pattern.transpose_arrays()
        return self._pattern_t

    # ------------------------------------------------------------ dirty pairs

    def mark_dirty_indices(self, rows: np.ndarray, cols: np.ndarray) -> None:
        """Record changed entries by matrix index (for vectorised writers)."""
        order = self._node_order()
        self._dirty.update((order[int(r)], order[int(c)])
                           for r, c in zip(rows, cols))

    def dirty_pairs(self) -> set[tuple[int, int]]:
        """Node-id pairs whose entries changed since the last consume."""
        return set(self._dirty)

    def consume_dirty(self) -> set[tuple[int, int]]:
        """Return the accumulated dirty pairs and reset the tracker.

        The ISDC loop drains this once per iteration and hands the delta to
        :meth:`repro.sdc.problem.ScheduleProblem.update_timing`.
        """
        dirty = self._dirty
        self._dirty = set()
        return dirty

    # --------------------------------------------------------------- feedback

    def update_with_subgraph(self, node_ids: Iterable[int], delay_ps: float) -> int:
        """Fold one measured subgraph delay into the matrix (Alg. 1 lines 10--14).

        For every ordered pair ``(u, v)`` of nodes covered by the subgraph
        that is currently connected and whose estimate exceeds ``delay_ps``,
        the estimate is lowered to ``delay_ps``.

        Args:
            node_ids: IR nodes covered by the evaluated subgraph.
            delay_ps: the post-synthesis delay reported by the downstream flow.

        Returns:
            The number of matrix entries that were lowered.
        """
        indices = np.array(sorted({self.index_of[nid] for nid in node_ids
                                   if nid in self.index_of}), dtype=int)
        if indices.size == 0:
            return 0
        block = self.matrix[np.ix_(indices, indices)]
        improvable = (block != NOT_CONNECTED) & (block > delay_ps)
        count = int(improvable.sum())
        if count:
            block[improvable] = delay_ps
            self.matrix[np.ix_(indices, indices)] = block
            block_rows, block_cols = np.nonzero(improvable)
            self.mark_dirty_indices(indices[block_rows], indices[block_cols])
        return count

    def update_with_feedback(self, feedback: Iterable[tuple[Iterable[int], float]]
                             ) -> int:
        """Apply :meth:`update_with_subgraph` for a batch of measurements."""
        total = 0
        for node_ids, delay_ps in feedback:
            total += self.update_with_subgraph(node_ids, delay_ps)
        return total

    # -------------------------------------------------------------- reporting

    def connected_pairs_over(self, threshold_ps: float) -> int:
        """Number of connected ordered pairs whose estimate exceeds ``threshold_ps``."""
        connected = self.matrix != NOT_CONNECTED
        return int(np.count_nonzero(connected & (self.matrix > threshold_ps)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DelayMatrix({self.graph.name!r}, {self.matrix.shape[0]} nodes)"
