"""Delay re-propagation for SDC reformulation (paper Algorithm 2).

After feedback lowers individual entries of the delay matrix, the estimates
of longer paths that *contain* the measured subgraphs are still the old,
over-conservative sums.  Algorithm 2 re-derives all pairwise estimates in
O(n^2) amortised work per node: a topological sweep recomputes the delay from
every node to ``v`` through ``v``'s operands (taking the worst operand, as a
critical path must), followed by a reverse sweep that propagates through
users to catch complementary paths.  Entries are only ever *lowered* --
pruning over-conservative timing constraints is the whole point.

:func:`floyd_warshall_refine` is the O(n^3) alternative the paper mentions:
it relaxes every pair through every single intermediate node.  It can lower
estimates more aggressively (and occasionally too aggressively, since a
single intermediate does not dominate all parallel paths); the reformulation
accuracy benchmark compares both against post-synthesis ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.isdc.delay_matrix import DelayMatrix
from repro.sdc.delays import NOT_CONNECTED


def propagate_delays(delay_matrix: DelayMatrix) -> int:
    """Re-propagate pairwise delays after feedback updates (Alg. 2 lines 1--16).

    The matrix is modified in place; every lowered entry is also reported to
    the matrix's dirty-pair tracker so the incremental solver can patch just
    the affected timing constraints.

    Both sweeps run level-batched over the graph's shared kernel
    :class:`~repro.kernel.GraphView`: since every edge crosses a level
    boundary, all operand (resp. user) rows a level reads are final before
    the level is written, so one gathered ``max``-reduction per level lowers
    exactly the entries the historical per-node loops lowered.

    Returns:
        The total number of matrix entries that were lowered.
    """
    view = delay_matrix.view
    matrix = delay_matrix.matrix
    index_of = delay_matrix.index_of
    # Dense position -> matrix row/column (identity when the matrix was built
    # from the same view, but kept explicit so hand-constructed index maps
    # keep working).
    col_of = np.asarray([index_of[nid] for nid in view.order_ids()],
                        dtype=np.int64)
    changed = 0

    # Forward sweep: recompute the delay from every node u to v through v's
    # operands, using the (possibly feedback-lowered) delays to the operands.
    # Predecessor columns are folded positionally (first operand, second
    # operand, ...) with elementwise maxima -- in-degrees are small, so this
    # is a few whole-column operations per level.
    for level in range(1, view.num_levels):
        rows = view.level_nodes(level)
        starts = view.pred_indptr[rows]
        counts = view.pred_indptr[rows + 1] - starts
        columns = col_of[rows]
        own_delays = matrix[columns, columns]
        incoming = matrix[:, col_of[view.pred_indices[starts]]]
        best = np.where(incoming != NOT_CONNECTED, incoming + own_delays,
                        NOT_CONNECTED)
        for position in range(1, int(counts.max())):
            present = counts > position
            preds = col_of[view.pred_indices[starts[present] + position]]
            incoming = matrix[:, preds]
            candidates = np.where(incoming != NOT_CONNECTED,
                                  incoming + own_delays[present],
                                  NOT_CONNECTED)
            best[:, present] = np.maximum(best[:, present], candidates)
        best[columns, np.arange(columns.size)] = NOT_CONNECTED  # diagonal
        current = matrix[:, columns]
        improve = ((best != NOT_CONNECTED)
                   & ((current > best) | (current == NOT_CONNECTED)))
        count = int(improve.sum())
        if count:
            matrix[:, columns] = np.where(improve, best, current)
            changed_rows, changed_positions = np.nonzero(improve)
            delay_matrix.mark_dirty_indices(changed_rows,
                                            columns[changed_positions])
            changed += count

    # Reverse sweep: propagate through users to catch the complementary
    # direction (delays from u forward into each of its users' cones).
    for level in range(view.num_levels - 1, -1, -1):
        nodes = view.level_nodes(level)
        starts = view.succ_indptr[nodes]
        counts = view.succ_indptr[nodes + 1] - starts
        with_users = counts > 0
        if not with_users.any():
            continue
        nodes, starts, counts = nodes[with_users], starts[with_users], counts[with_users]
        rows = col_of[nodes]
        own_delays = matrix[rows, rows]
        outgoing = matrix[col_of[view.succ_indices[starts]], :]
        best = np.where(outgoing != NOT_CONNECTED,
                        outgoing + own_delays[:, None], NOT_CONNECTED)
        for position in range(1, int(counts.max())):
            present = counts > position
            users = col_of[view.succ_indices[starts[present] + position]]
            outgoing = matrix[users, :]
            candidates = np.where(outgoing != NOT_CONNECTED,
                                  outgoing + own_delays[present, None],
                                  NOT_CONNECTED)
            best[present] = np.maximum(best[present], candidates)
        best[np.arange(rows.size), rows] = NOT_CONNECTED  # diagonal
        current = matrix[rows, :]
        improve = ((best != NOT_CONNECTED)
                   & ((current > best) | (current == NOT_CONNECTED)))
        count = int(improve.sum())
        if count:
            matrix[rows, :] = np.where(improve, best, current)
            changed_positions, changed_cols = np.nonzero(improve)
            delay_matrix.mark_dirty_indices(rows[changed_positions],
                                            changed_cols)
            changed += count

    return changed


def floyd_warshall_refine(delay_matrix: DelayMatrix) -> int:
    """O(n^3) refinement relaxing every pair through every intermediate node.

    For every intermediate ``w``, the delay of a path from ``u`` to ``v``
    through ``w`` is bounded by ``D[u][w] + D[w][v] - d(w)`` (``w``'s own
    delay would otherwise be counted twice).  Entries are lowered to that
    bound where it is smaller.  The matrix is modified in place.

    Returns:
        The total number of matrix entries that were lowered.
    """
    matrix = delay_matrix.matrix
    size = matrix.shape[0]
    changed = 0
    diagonal = matrix.diagonal().copy()
    for w in range(size):
        to_w = matrix[:, w]
        from_w = matrix[w, :]
        valid = (to_w[:, None] != NOT_CONNECTED) & (from_w[None, :] != NOT_CONNECTED)
        if not valid.any():
            continue
        candidates = to_w[:, None] + from_w[None, :] - diagonal[w]
        current = matrix
        improve = valid & (current > candidates) & (current != NOT_CONNECTED)
        np.fill_diagonal(improve, False)
        count = int(improve.sum())
        if count:
            matrix[improve] = candidates[improve]
            improved_rows, improved_cols = np.nonzero(improve)
            delay_matrix.mark_dirty_indices(improved_rows, improved_cols)
            changed += count
    return changed
