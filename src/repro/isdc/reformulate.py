"""Delay re-propagation for SDC reformulation (paper Algorithm 2).

After feedback lowers individual entries of the delay matrix, the estimates
of longer paths that *contain* the measured subgraphs are still the old,
over-conservative sums.  Algorithm 2 re-derives all pairwise estimates in
O(n^2) amortised work per node: a topological sweep recomputes the delay from
every node to ``v`` through ``v``'s operands (taking the worst operand, as a
critical path must), followed by a reverse sweep that propagates through
users to catch complementary paths.  Entries are only ever *lowered* --
pruning over-conservative timing constraints is the whole point.

:func:`floyd_warshall_refine` is the O(n^3) alternative the paper mentions:
it relaxes every pair through every single intermediate node.  It can lower
estimates more aggressively (and occasionally too aggressively, since a
single intermediate does not dominate all parallel paths); the reformulation
accuracy benchmark compares both against post-synthesis ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.isdc.delay_matrix import DelayMatrix
from repro.kernel import kernel_config
from repro.sdc.delays import NOT_CONNECTED


def propagate_delays(delay_matrix: DelayMatrix) -> int:
    """Re-propagate pairwise delays after feedback updates (Alg. 2 lines 1--16).

    The matrix is modified in place; every lowered entry is also reported to
    the matrix's dirty-pair tracker so the incremental solver can patch just
    the affected timing constraints.

    Both sweeps run level-batched over the graph's shared kernel
    :class:`~repro.kernel.GraphView`: since every edge crosses a level
    boundary, all operand (resp. user) rows a level reads are final before
    the level is written, so one gathered ``max``-reduction per level lowers
    exactly the entries the historical per-node loops lowered.

    When the matrix carries its (static) connectivity pattern and the active
    :class:`~repro.kernel.KernelConfig` favours sparsity, the sweeps iterate
    over connected pairs only instead of whole ``n``-wide rows -- same
    entries lowered to the same values, same dirty pairs, a fraction of the
    work on large sparsely-connected designs.

    Returns:
        The total number of matrix entries that were lowered.
    """
    view = delay_matrix.view
    if kernel_config().wants_sparse(view.num_nodes):
        pattern = delay_matrix.connectivity_pattern()
        if pattern is not None:
            return (_sparse_forward_sweep(delay_matrix, view, pattern)
                    + _sparse_reverse_sweep(delay_matrix, view))
    return _dense_propagate(delay_matrix, view)


def _dense_propagate(delay_matrix: DelayMatrix, view) -> int:
    """The historical whole-row/column level-batched sweeps."""
    matrix = delay_matrix.matrix
    index_of = delay_matrix.index_of
    # Dense position -> matrix row/column (identity when the matrix was built
    # from the same view, but kept explicit so hand-constructed index maps
    # keep working).
    col_of = np.asarray([index_of[nid] for nid in view.order_ids()],
                        dtype=np.int64)
    changed = 0

    # Forward sweep: recompute the delay from every node u to v through v's
    # operands, using the (possibly feedback-lowered) delays to the operands.
    # Predecessor columns are folded positionally (first operand, second
    # operand, ...) with elementwise maxima -- in-degrees are small, so this
    # is a few whole-column operations per level.
    for level in range(1, view.num_levels):
        rows = view.level_nodes(level)
        starts = view.pred_indptr[rows]
        counts = view.pred_indptr[rows + 1] - starts
        columns = col_of[rows]
        own_delays = matrix[columns, columns]
        incoming = matrix[:, col_of[view.pred_indices[starts]]]
        best = np.where(incoming != NOT_CONNECTED, incoming + own_delays,
                        NOT_CONNECTED)
        for position in range(1, int(counts.max())):
            present = counts > position
            preds = col_of[view.pred_indices[starts[present] + position]]
            incoming = matrix[:, preds]
            candidates = np.where(incoming != NOT_CONNECTED,
                                  incoming + own_delays[present],
                                  NOT_CONNECTED)
            best[:, present] = np.maximum(best[:, present], candidates)
        best[columns, np.arange(columns.size)] = NOT_CONNECTED  # diagonal
        current = matrix[:, columns]
        improve = ((best != NOT_CONNECTED)
                   & ((current > best) | (current == NOT_CONNECTED)))
        count = int(improve.sum())
        if count:
            matrix[:, columns] = np.where(improve, best, current)
            changed_rows, changed_positions = np.nonzero(improve)
            delay_matrix.mark_dirty_indices(changed_rows,
                                            columns[changed_positions])
            changed += count

    # Reverse sweep: propagate through users to catch the complementary
    # direction (delays from u forward into each of its users' cones).
    for level in range(view.num_levels - 1, -1, -1):
        nodes = view.level_nodes(level)
        starts = view.succ_indptr[nodes]
        counts = view.succ_indptr[nodes + 1] - starts
        with_users = counts > 0
        if not with_users.any():
            continue
        nodes, starts, counts = nodes[with_users], starts[with_users], counts[with_users]
        rows = col_of[nodes]
        own_delays = matrix[rows, rows]
        outgoing = matrix[col_of[view.succ_indices[starts]], :]
        best = np.where(outgoing != NOT_CONNECTED,
                        outgoing + own_delays[:, None], NOT_CONNECTED)
        for position in range(1, int(counts.max())):
            present = counts > position
            users = col_of[view.succ_indices[starts[present] + position]]
            outgoing = matrix[users, :]
            candidates = np.where(outgoing != NOT_CONNECTED,
                                  outgoing + own_delays[present, None],
                                  NOT_CONNECTED)
            best[present] = np.maximum(best[present], candidates)
        best[np.arange(rows.size), rows] = NOT_CONNECTED  # diagonal
        current = matrix[rows, :]
        improve = ((best != NOT_CONNECTED)
                   & ((current > best) | (current == NOT_CONNECTED)))
        count = int(improve.sum())
        if count:
            matrix[rows, :] = np.where(improve, best, current)
            changed_positions, changed_cols = np.nonzero(improve)
            delay_matrix.mark_dirty_indices(rows[changed_positions],
                                            changed_cols)
            changed += count

    return changed


def _group_max(owners: np.ndarray, keys: np.ndarray, values: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Segmented max of ``values`` grouped by ``(owner, key)``.

    Returns the group owners, keys and maxima.  ``max`` is exact and
    order-independent, so the result is bit-identical to any positional
    fold over the same candidates.
    """
    grouping = np.lexsort((keys, owners))
    owners_sorted = owners[grouping]
    keys_sorted = keys[grouping]
    boundary = np.empty(owners_sorted.size, dtype=bool)
    boundary[0] = True
    np.logical_or(owners_sorted[1:] != owners_sorted[:-1],
                  keys_sorted[1:] != keys_sorted[:-1], out=boundary[1:])
    starts = np.nonzero(boundary)[0]
    return (owners_sorted[starts], keys_sorted[starts],
            np.maximum.reduceat(values[grouping], starts))


def _sparse_forward_sweep(delay_matrix: DelayMatrix, view, pattern) -> int:
    """Forward Alg. 2 sweep over connected pairs only.

    For a node ``v``, the dense sweep maximises ``D[u][p] + D[v][v]`` over
    operands ``p`` for *every* row ``u``; but the candidate is real only
    when ``u`` reaches ``p``, i.e. for the ancestors listed in ``p``'s
    pattern row.  Gathering exactly those entries per level reproduces the
    dense sweep's lowered values bit-for-bit (same additions, same maxima)
    and its dirty set.
    """
    matrix = delay_matrix.matrix
    index_of = delay_matrix.index_of
    col_of = np.asarray([index_of[nid] for nid in view.order_ids()],
                        dtype=np.int64)
    pat_indptr, pat_indices = pattern.indptr, pattern.indices
    pred_indptr, pred_indices = view.pred_indptr, view.pred_indices
    changed = 0
    for level in range(1, view.num_levels):
        nodes = view.level_nodes(level)
        parts_u: list[np.ndarray] = []
        parts_val: list[np.ndarray] = []
        part_owner: list[int] = []
        part_len: list[int] = []
        for v in nodes:
            column = col_of[v]
            own_delay = matrix[column, column]
            for slot in range(pred_indptr[v], pred_indptr[v + 1]):
                pred = pred_indices[slot]
                ancestors = pat_indices[pat_indptr[pred]:pat_indptr[pred + 1]]
                parts_u.append(ancestors)
                parts_val.append(matrix[col_of[ancestors], col_of[pred]]
                                 + own_delay)
                part_owner.append(v)
                part_len.append(ancestors.size)
        if not parts_u:
            continue
        owners = np.repeat(np.asarray(part_owner, dtype=np.int64),
                           np.asarray(part_len, dtype=np.int64))
        group_v, group_u, best = _group_max(owners, np.concatenate(parts_u),
                                            np.concatenate(parts_val))
        rows = col_of[group_u]
        cols = col_of[group_v]
        current = matrix[rows, cols]
        improve = current > best  # connected pairs: current is never NC
        count = int(improve.sum())
        if count:
            matrix[rows[improve], cols[improve]] = best[improve]
            delay_matrix.mark_dirty_indices(rows[improve], cols[improve])
            changed += count
    return changed


def _sparse_reverse_sweep(delay_matrix: DelayMatrix, view) -> int:
    """Reverse Alg. 2 sweep over connected pairs only.

    Mirrors :func:`_sparse_forward_sweep` through users: for node ``u`` and
    user ``s``, candidates ``D[s][w] + D[u][u]`` exist exactly for the
    descendants ``w`` in ``s``'s transposed pattern row.
    """
    matrix = delay_matrix.matrix
    index_of = delay_matrix.index_of
    col_of = np.asarray([index_of[nid] for nid in view.order_ids()],
                        dtype=np.int64)
    t_indptr, t_indices, _t_data = delay_matrix.descendant_pattern()
    succ_indptr, succ_indices = view.succ_indptr, view.succ_indices
    changed = 0
    for level in range(view.num_levels - 1, -1, -1):
        nodes = view.level_nodes(level)
        parts_w: list[np.ndarray] = []
        parts_val: list[np.ndarray] = []
        part_owner: list[int] = []
        part_len: list[int] = []
        for u in nodes:
            row = col_of[u]
            own_delay = matrix[row, row]
            for slot in range(succ_indptr[u], succ_indptr[u + 1]):
                user = succ_indices[slot]
                descendants = t_indices[t_indptr[user]:t_indptr[user + 1]]
                parts_w.append(descendants)
                parts_val.append(matrix[col_of[user], col_of[descendants]]
                                 + own_delay)
                part_owner.append(u)
                part_len.append(descendants.size)
        if not parts_w:
            continue
        owners = np.repeat(np.asarray(part_owner, dtype=np.int64),
                           np.asarray(part_len, dtype=np.int64))
        group_u, group_w, best = _group_max(owners, np.concatenate(parts_w),
                                            np.concatenate(parts_val))
        rows = col_of[group_u]
        cols = col_of[group_w]
        current = matrix[rows, cols]
        improve = current > best
        count = int(improve.sum())
        if count:
            matrix[rows[improve], cols[improve]] = best[improve]
            delay_matrix.mark_dirty_indices(rows[improve], cols[improve])
            changed += count
    return changed


def floyd_warshall_refine(delay_matrix: DelayMatrix) -> int:
    """O(n^3) refinement relaxing every pair through every intermediate node.

    For every intermediate ``w``, the delay of a path from ``u`` to ``v``
    through ``w`` is bounded by ``D[u][w] + D[w][v] - d(w)`` (``w``'s own
    delay would otherwise be counted twice).  Entries are lowered to that
    bound where it is smaller.  The matrix is modified in place.

    Returns:
        The total number of matrix entries that were lowered.
    """
    matrix = delay_matrix.matrix
    size = matrix.shape[0]
    changed = 0
    diagonal = matrix.diagonal().copy()
    for w in range(size):
        to_w = matrix[:, w]
        from_w = matrix[w, :]
        valid = (to_w[:, None] != NOT_CONNECTED) & (from_w[None, :] != NOT_CONNECTED)
        if not valid.any():
            continue
        candidates = to_w[:, None] + from_w[None, :] - diagonal[w]
        current = matrix
        improve = valid & (current > candidates) & (current != NOT_CONNECTED)
        np.fill_diagonal(improve, False)
        count = int(improve.sum())
        if count:
            matrix[improve] = candidates[improve]
            improved_rows, improved_cols = np.nonzero(improve)
            delay_matrix.mark_dirty_indices(improved_rows, improved_cols)
            changed += count
    return changed
