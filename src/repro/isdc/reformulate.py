"""Delay re-propagation for SDC reformulation (paper Algorithm 2).

After feedback lowers individual entries of the delay matrix, the estimates
of longer paths that *contain* the measured subgraphs are still the old,
over-conservative sums.  Algorithm 2 re-derives all pairwise estimates in
O(n^2) amortised work per node: a topological sweep recomputes the delay from
every node to ``v`` through ``v``'s operands (taking the worst operand, as a
critical path must), followed by a reverse sweep that propagates through
users to catch complementary paths.  Entries are only ever *lowered* --
pruning over-conservative timing constraints is the whole point.

:func:`floyd_warshall_refine` is the O(n^3) alternative the paper mentions:
it relaxes every pair through every single intermediate node.  It can lower
estimates more aggressively (and occasionally too aggressively, since a
single intermediate does not dominate all parallel paths); the reformulation
accuracy benchmark compares both against post-synthesis ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.ir.analysis import reverse_topological_order, topological_order
from repro.isdc.delay_matrix import DelayMatrix
from repro.sdc.delays import NOT_CONNECTED


def _lower_entries(delay_matrix: DelayMatrix, column: int,
                   candidates: np.ndarray) -> int:
    """Lower ``matrix[:, column]`` to ``candidates`` where justified.

    An entry is overwritten when the candidate is valid (connected) and either
    the current entry is larger or the pair was previously marked unconnected.
    Changed entries are recorded in the matrix's dirty-pair tracker.

    Returns:
        Number of entries changed.
    """
    matrix = delay_matrix.matrix
    current = matrix[:, column]
    valid = candidates != NOT_CONNECTED
    improve = valid & ((current > candidates) | (current == NOT_CONNECTED))
    count = int(improve.sum())
    if count:
        current[improve] = candidates[improve]
        matrix[:, column] = current
        changed_rows = np.nonzero(improve)[0]
        delay_matrix.mark_dirty_indices(changed_rows,
                                        np.full(count, column, dtype=int))
    return count


def propagate_delays(delay_matrix: DelayMatrix) -> int:
    """Re-propagate pairwise delays after feedback updates (Alg. 2 lines 1--16).

    The matrix is modified in place; every lowered entry is also reported to
    the matrix's dirty-pair tracker so the incremental solver can patch just
    the affected timing constraints.

    Returns:
        The total number of matrix entries that were lowered.
    """
    graph = delay_matrix.graph
    matrix = delay_matrix.matrix
    index_of = delay_matrix.index_of
    changed = 0

    # Forward sweep: recompute the delay from every node u to v through v's
    # operands, using the (possibly feedback-lowered) delays to the operands.
    for node_id in topological_order(graph):
        column = index_of[node_id]
        own_delay = matrix[column, column]
        operand_columns = sorted({index_of[o] for o in graph.operands_of(node_id)})
        if not operand_columns:
            continue
        incoming = matrix[:, operand_columns]
        connected = incoming != NOT_CONNECTED
        candidates = np.where(connected, incoming + own_delay, NOT_CONNECTED)
        best = candidates.max(axis=1)
        best[column] = NOT_CONNECTED  # never touch the diagonal here
        changed += _lower_entries(delay_matrix, column, best)

    # Reverse sweep: propagate through users to catch the complementary
    # direction (delays from u forward into each of its users' cones).
    for node_id in reverse_topological_order(graph):
        row = index_of[node_id]
        own_delay = matrix[row, row]
        user_rows = sorted({index_of[u] for u in graph.users_of(node_id)})
        if not user_rows:
            continue
        outgoing = matrix[user_rows, :]
        connected = outgoing != NOT_CONNECTED
        candidates = np.where(connected, outgoing + own_delay, NOT_CONNECTED)
        best = candidates.max(axis=0)
        best[row] = NOT_CONNECTED
        current = matrix[row, :]
        valid = best != NOT_CONNECTED
        improve = valid & ((current > best) | (current == NOT_CONNECTED))
        count = int(improve.sum())
        if count:
            current[improve] = best[improve]
            matrix[row, :] = current
            changed_cols = np.nonzero(improve)[0]
            delay_matrix.mark_dirty_indices(np.full(count, row, dtype=int),
                                            changed_cols)
            changed += count

    return changed


def floyd_warshall_refine(delay_matrix: DelayMatrix) -> int:
    """O(n^3) refinement relaxing every pair through every intermediate node.

    For every intermediate ``w``, the delay of a path from ``u`` to ``v``
    through ``w`` is bounded by ``D[u][w] + D[w][v] - d(w)`` (``w``'s own
    delay would otherwise be counted twice).  Entries are lowered to that
    bound where it is smaller.  The matrix is modified in place.

    Returns:
        The total number of matrix entries that were lowered.
    """
    matrix = delay_matrix.matrix
    size = matrix.shape[0]
    changed = 0
    diagonal = matrix.diagonal().copy()
    for w in range(size):
        to_w = matrix[:, w]
        from_w = matrix[w, :]
        valid = (to_w[:, None] != NOT_CONNECTED) & (from_w[None, :] != NOT_CONNECTED)
        if not valid.any():
            continue
        candidates = to_w[:, None] + from_w[None, :] - diagonal[w]
        current = matrix
        improve = valid & (current > candidates) & (current != NOT_CONNECTED)
        np.fill_diagonal(improve, False)
        count = int(improve.sum())
        if count:
            matrix[improve] = candidates[improve]
            improved_rows, improved_cols = np.nonzero(improve)
            delay_matrix.mark_dirty_indices(improved_rows, improved_cols)
            changed += count
    return changed
