"""The ISDC iterative scheduling loop (paper Section III-A, Fig. 2)."""

from __future__ import annotations

import time

import numpy as np

from repro.ir.graph import DataflowGraph
from repro.isdc.config import IsdcConfig
from repro.isdc.delay_matrix import DelayMatrix
from repro.isdc.extraction import SubgraphExtractor
from repro.isdc.feedback import FeedbackEngine
from repro.isdc.metrics import IsdcResult, IterationRecord
from repro.isdc.reformulate import propagate_delays
from repro.sdc.pipeline import PipelineAnalyzer, count_pipeline_registers
from repro.sdc.problem import ScheduleProblem
from repro.sdc.scheduler import Schedule, SdcScheduler
from repro.sdc.solver import ScheduleSolver, create_solver
from repro.synth.backend import create_backend
from repro.synth.estimator import CharacterizedOperatorModel
from repro.tech.delay_model import OperatorModel
from repro.tech.library import TechLibrary
from repro.tech.sky130 import sky130_library


class IsdcScheduler:
    """Feedback-guided iterative SDC scheduler.

    The loop mirrors the paper's Fig. 2: schedule with plain SDC, extract
    combinational subgraphs from the schedule, measure their post-synthesis
    delays, fold the measurements into the pairwise delay matrix (Alg. 1),
    re-propagate the matrix (Alg. 2), update the timing constraints, re-solve
    the LP, and repeat until register usage stops improving.

    One persistent :class:`~repro.sdc.problem.ScheduleProblem` (built by the
    baseline SDC schedule) is held for the whole loop, so the register
    weights, users map and constraint system are computed once per graph.
    How the per-iteration re-solve uses it is the config's ``solver`` knob:
    ``"full"`` rebuilds everything from the delay matrix each iteration,
    ``"incremental"`` patches only the timing bounds the iteration's dirty
    delay-matrix entries touched.  Both strategies produce byte-identical
    schedules and histories; after a run, ``last_problem`` and
    ``last_solver`` expose the rebuild/patch counters.

    Args:
        config: loop configuration; a default :class:`IsdcConfig` is used
            when omitted.
        library: technology library shared by the delay model, the feedback
            flow and the pipeline analyser.
        delay_model: override the isolated-operation delay model (mostly for
            tests); by default a characterised or closed-form model is chosen
            according to ``config.use_characterized_delays``.
    """

    def __init__(self, config: IsdcConfig | None = None,
                 library: TechLibrary | None = None,
                 delay_model=None) -> None:
        self.config = config or IsdcConfig()
        self.library = library or sky130_library()
        if delay_model is not None:
            self.delay_model = delay_model
        elif self.config.use_characterized_delays:
            self.delay_model = CharacterizedOperatorModel(self.library)
        else:
            self.delay_model = OperatorModel(self.library)
        if self.config.register_overhead_ps is None:
            self.register_overhead_ps = self.library.register_delay_ps
        else:
            self.register_overhead_ps = float(self.config.register_overhead_ps)
        self.timing_budget_ps = self.config.clock_period_ps - self.register_overhead_ps
        if self.timing_budget_ps <= 0:
            raise ValueError("clock period does not cover the register overhead")
        self.extractor = SubgraphExtractor(self.config)
        backend = create_backend(self.config.backend, self.library,
                                 optimize=self.config.optimize_subgraphs,
                                 jobs=self.config.jobs)
        self.feedback = FeedbackEngine(self.library,
                                       backend=backend,
                                       cache_path=self.config.cache_path)
        self.analyzer = PipelineAnalyzer(flow=self.feedback.backend,
                                         library=self.library)
        self.last_problem: ScheduleProblem | None = None
        self.last_solver: ScheduleSolver | None = None

    # ------------------------------------------------------------------ public

    def schedule(self, graph: DataflowGraph) -> IsdcResult:
        """Run the full ISDC loop on ``graph`` and return the result bundle."""
        config = self.config
        total_start = time.perf_counter()

        baseline = SdcScheduler(delay_model=self.delay_model,
                                clock_period_ps=config.clock_period_ps,
                                register_overhead_ps=self.register_overhead_ps,
                                latency_weight=config.latency_weight)
        base_result = baseline.schedule(graph)
        baseline_runtime = base_result.runtime_s
        problem = base_result.problem
        solver = create_solver(config.solver)
        self.last_problem = problem
        self.last_solver = solver

        delay_matrix = DelayMatrix(graph, base_result.delay_matrix.copy(),
                                   dict(base_result.index_of))
        naive_matrix = DelayMatrix(graph, base_result.delay_matrix.copy(),
                                   dict(base_result.index_of))

        current = base_result.schedule
        current_registers, _ = count_pipeline_registers(current)
        history: list[IterationRecord] = [IterationRecord(
            iteration=0,
            num_stages=current.num_stages,
            num_registers=current_registers,
            estimation_error=self._estimation_error(current, delay_matrix),
            runtime_s=baseline_runtime,
            solver_runtime_s=base_result.solve_runtime_s,
        )]
        self._log(history[-1])

        best_schedule = current
        best_registers = current_registers
        iterations_run = 0
        stale_iterations = 0

        for iteration in range(1, config.max_iterations + 1):
            iteration_start = time.perf_counter()
            subgraphs = self.extractor.extract(current, delay_matrix)
            if not subgraphs:
                break
            feedback = self.feedback.evaluate(graph, subgraphs)
            synthesis_runtime = time.perf_counter() - iteration_start
            updates = delay_matrix.update_with_feedback(
                (item.node_ids, item.delay_ps) for item in feedback)
            updates += propagate_delays(delay_matrix)

            solver_start = time.perf_counter()
            current = self._reschedule(problem, solver, delay_matrix)
            solver_runtime = time.perf_counter() - solver_start
            current_registers, _ = count_pipeline_registers(current)
            iterations_run = iteration

            record = IterationRecord(
                iteration=iteration,
                num_stages=current.num_stages,
                num_registers=current_registers,
                subgraphs_evaluated=len(feedback),
                matrix_updates=updates,
                estimation_error=self._estimation_error(current, delay_matrix),
                naive_estimation_error=self._estimation_error(current, naive_matrix),
                runtime_s=time.perf_counter() - iteration_start,
                solver_runtime_s=solver_runtime,
                synthesis_runtime_s=synthesis_runtime,
            )
            history.append(record)
            self._log(record)

            if current_registers < best_registers:
                best_registers = current_registers
                best_schedule = current
                stale_iterations = 0
            else:
                stale_iterations += 1
            if stale_iterations >= config.patience:
                break

        total_runtime = time.perf_counter() - total_start
        initial_report = self.analyzer.report(base_result.schedule)
        final_report = self.analyzer.report(best_schedule)
        return IsdcResult(
            design=graph.name,
            initial_schedule=base_result.schedule,
            final_schedule=best_schedule,
            initial_report=initial_report,
            final_report=final_report,
            history=history,
            iterations=iterations_run,
            total_runtime_s=total_runtime,
            baseline_runtime_s=baseline_runtime,
            subgraphs_evaluated=self.feedback.evaluations,
            solver=config.solver,
            solver_runtime_s=sum(r.solver_runtime_s for r in history),
            synthesis_runtime_s=sum(r.synthesis_runtime_s for r in history),
        )

    # ----------------------------------------------------------------- helpers

    def _reschedule(self, problem: ScheduleProblem, solver: ScheduleSolver,
                    delay_matrix: DelayMatrix) -> Schedule:
        """Re-solve the persistent problem against the updated delay matrix."""
        dirty = delay_matrix.consume_dirty()
        solution = solver.solve(problem, delay_matrix.matrix,
                                delay_matrix.index_of, dirty)
        return Schedule(graph=problem.graph,
                        clock_period_ps=self.config.clock_period_ps,
                        stages=solution, ii=problem.ii)

    def _estimation_error(self, schedule: Schedule, delay_matrix: DelayMatrix
                          ) -> float | None:
        """Mean relative stage-delay estimation error against synthesis."""
        if not self.config.track_estimation_error:
            return None
        graph = schedule.graph
        stages: list[int] = []
        stage_sets: list[list[int]] = []
        for stage, node_ids in schedule.stage_node_map().items():
            operations = [nid for nid in node_ids if not graph.node(nid).is_source]
            if operations:
                stages.append(stage)
                stage_sets.append(operations)
        if not stage_sets:
            return None
        reports = self.feedback.cache.evaluate_batch(
            graph, stage_sets,
            [f"{graph.name}_stage{stage}" for stage in stages])
        errors: list[float] = []
        for operations, report in zip(stage_sets, reports):
            estimated = self._estimated_stage_delay(delay_matrix, operations)
            if report.delay_ps <= 0:
                continue
            errors.append(abs(estimated - report.delay_ps) / report.delay_ps)
        if not errors:
            return None
        return sum(errors) / len(errors)

    @staticmethod
    def _estimated_stage_delay(delay_matrix: DelayMatrix,
                               node_ids: list[int]) -> float:
        """The scheduler's estimate of a stage's critical combinational delay."""
        indices = [delay_matrix.index_of[nid] for nid in node_ids]
        block = delay_matrix.matrix[np.ix_(indices, indices)]
        return float(block.max()) if block.size else 0.0

    def _log(self, record: IterationRecord) -> None:
        if not self.config.verbose:
            return
        error = ("n/a" if record.estimation_error is None
                 else f"{record.estimation_error:.1%}")
        print(f"[isdc] iter {record.iteration:2d}: stages={record.num_stages:3d} "
              f"registers={record.num_registers:6d} "
              f"subgraphs={record.subgraphs_evaluated:2d} error={error}")
