"""Configuration of the ISDC iterative scheduler."""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass


class ExtractionStrategy(enum.Enum):
    """How candidate paths are ranked before the top-m are extracted.

    ``DELAY`` ranks by estimated critical-path delay (the intuitive baseline
    the paper argues against); ``FANOUT`` ranks by the paper's Eq. 3 score,
    which prefers wide registers with few consumers.
    """

    DELAY = "delay"
    FANOUT = "fanout"


class ExpansionStrategy(enum.Enum):
    """How a selected path is expanded into the evaluated subgraph.

    ``PATH`` evaluates the nodes on the critical path only; ``CONE`` expands
    to the root's full in-stage input cone; ``WINDOW`` merges cones of other
    same-stage roots that share leaves with the selected cone.
    """

    PATH = "path"
    CONE = "cone"
    WINDOW = "window"


@dataclass
class IsdcConfig:
    """Tunable parameters of the ISDC loop.

    Attributes:
        clock_period_ps: target clock period.
        register_overhead_ps: sequential overhead subtracted from the clock
            period to obtain the combinational timing budget; ``None`` uses
            the technology library's register figure.
        subgraphs_per_iteration: how many subgraphs are extracted and sent to
            the downstream flow per iteration (``m`` in the paper; 4/8/16 are
            the ablation settings, 16 the Table-I setting).
        max_iterations: iteration cap (the paper uses 15 for Table I and 30
            for the ablations).
        patience: stop once register usage has not improved for this many
            consecutive iterations.
        extraction: ranking strategy for candidate paths.
        expansion: subgraph expansion strategy.
        use_characterized_delays: characterise isolated operator delays by
            synthesising single operations (paper-faithful) instead of using
            the closed-form model.
        optimize_subgraphs: run the logic optimiser inside the feedback flow.
        latency_weight: tie-breaking objective weight pulling operations
            earlier in the LP.
        track_estimation_error: record per-iteration delay-estimation error
            (needs one extra stage synthesis per iteration; used by Fig. 7).
        verbose: print a one-line summary per iteration.
        solver: re-solve strategy for the per-iteration LP (``"full"``
            rebuilds the constraint system and LP from scratch every
            iteration; ``"incremental"`` keeps one persistent
            :class:`~repro.sdc.problem.ScheduleProblem`, patches only the
            dirty timing bounds and warm-starts the rounding repair).  Both
            produce byte-identical schedules and histories.
        backend: flow-backend registry name for the downstream evaluations
            (``"local"`` for the full synthesis pipeline, ``"estimator"`` for
            the cheap closed-form quick mode).
        jobs: worker processes used by the backend's batch dispatch (1 keeps
            everything serial; results are identical either way).
        cache_path: optional on-disk evaluation-cache file shared across
            runs (JSON lines keyed by structural subgraph fingerprints).
    """

    clock_period_ps: float = 2500.0
    register_overhead_ps: float | None = None
    subgraphs_per_iteration: int = 16
    max_iterations: int = 15
    patience: int = 3
    extraction: ExtractionStrategy = ExtractionStrategy.FANOUT
    expansion: ExpansionStrategy = ExpansionStrategy.WINDOW
    use_characterized_delays: bool = True
    optimize_subgraphs: bool = True
    latency_weight: float = 1e-3
    track_estimation_error: bool = True
    verbose: bool = False
    solver: str = "full"
    backend: str = "local"
    jobs: int = 1
    cache_path: str | None = None

    def __post_init__(self) -> None:
        if self.clock_period_ps <= 0:
            raise ValueError("clock_period_ps must be positive")
        if self.subgraphs_per_iteration < 1:
            raise ValueError("subgraphs_per_iteration must be at least 1")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if self.patience < 1:
            raise ValueError("patience must be at least 1")
        if self.jobs < 1:
            raise ValueError("jobs must be at least 1")
        if self.solver not in ("full", "incremental"):
            raise ValueError(
                f"solver must be 'full' or 'incremental', got {self.solver!r}")
        if isinstance(self.extraction, str):
            self.extraction = ExtractionStrategy(self.extraction)
        if isinstance(self.expansion, str):
            self.expansion = ExpansionStrategy(self.expansion)

    def to_payload(self) -> dict:
        """Canonical JSON-serialisable form of this configuration.

        Enums become their string values; field order is the declaration
        order, so ``json.dumps(config.to_payload(), sort_keys=True)`` is a
        stable identity for campaign job ids and spec fingerprints.
        """
        payload = asdict(self)
        payload["extraction"] = self.extraction.value
        payload["expansion"] = self.expansion.value
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "IsdcConfig":
        """Rebuild a configuration from :meth:`to_payload` output.

        Raises:
            TypeError: on unknown fields (a payload from a newer schema).
            ValueError: on invalid field values.
        """
        return cls(**payload)
