"""Downstream evaluation of extracted subgraphs (the feedback half of the loop)."""

from __future__ import annotations

from dataclasses import dataclass

from pathlib import Path

from repro.ir.graph import DataflowGraph
from repro.isdc.extraction import CandidatePath
from repro.synth.backend import FlowBackend, LocalSynthesisBackend
from repro.synth.cache import EvaluationCache
from repro.tech.library import TechLibrary


@dataclass(frozen=True)
class SubgraphFeedback:
    """Measured delay of one evaluated subgraph.

    Attributes:
        candidate: the candidate path the subgraph was grown from.
        node_ids: IR nodes covered by the subgraph.
        delay_ps: post-synthesis critical-path delay reported by the flow.
        estimated_delay_ps: the scheduler's estimate before feedback (the
            candidate's matrix entry), for reporting estimation error.
        num_gates: logic-gate count of the synthesised subgraph.
    """

    candidate: CandidatePath
    node_ids: frozenset[int]
    delay_ps: float
    estimated_delay_ps: float
    num_gates: int


class FeedbackEngine:
    """Runs extracted subgraphs through the downstream flow, with memoisation.

    In the paper this corresponds to dispatching subgraphs to Yosys/OpenSTA in
    parallel; here every per-iteration batch goes through the evaluation
    cache in one call, and the backend fans the distinct misses out over its
    worker pool (``jobs > 1``) with deterministic result ordering.

    Args:
        library: technology library for the default backend (ignored when an
            explicit ``backend`` is supplied).
        optimize: run the logic optimiser inside the default backend.
        backend: any :class:`~repro.synth.backend.FlowBackend`; defaults to a
            :class:`~repro.synth.backend.LocalSynthesisBackend`.
        jobs: worker processes of the default backend's batch dispatch.
        cache_path: optional on-disk evaluation-cache file (JSON lines),
            pre-warming repeated runs.
    """

    def __init__(self, library: TechLibrary | None = None, optimize: bool = True,
                 backend: FlowBackend | None = None, jobs: int = 1,
                 cache_path: str | Path | None = None) -> None:
        if backend is None:
            backend = LocalSynthesisBackend(library, optimize=optimize, jobs=jobs)
        self.backend = backend
        self.cache = EvaluationCache(backend, disk_path=cache_path)

    def evaluate(self, graph: DataflowGraph,
                 subgraphs: list[tuple[CandidatePath, frozenset[int]]]
                 ) -> list[SubgraphFeedback]:
        """Evaluate a batch of subgraphs and return their feedback records."""
        reports = self.cache.evaluate_batch(
            graph, [node_ids for _, node_ids in subgraphs])
        feedback: list[SubgraphFeedback] = []
        for (candidate, node_ids), report in zip(subgraphs, reports):
            feedback.append(SubgraphFeedback(
                candidate=candidate,
                node_ids=node_ids,
                delay_ps=report.delay_ps,
                estimated_delay_ps=candidate.delay_ps,
                num_gates=report.num_gates,
            ))
        return feedback

    @property
    def evaluations(self) -> int:
        """Number of distinct subgraphs actually synthesised so far.

        Counts true backend runs only: a miss answered by a disk-warmed
        cache record is a :attr:`disk_hits` entry, not a synthesis.
        """
        return self.cache.stats.synth_runs

    @property
    def cache_hits(self) -> int:
        """Number of evaluations answered from the in-memory cache."""
        return self.cache.stats.hits

    @property
    def disk_hits(self) -> int:
        """Number of evaluations answered from the on-disk cache layer."""
        return self.cache.stats.disk_hits
