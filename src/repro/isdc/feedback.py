"""Downstream evaluation of extracted subgraphs (the feedback half of the loop)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import DataflowGraph
from repro.isdc.extraction import CandidatePath
from repro.synth.cache import EvaluationCache
from repro.synth.flow import SynthesisFlow
from repro.tech.library import TechLibrary


@dataclass(frozen=True)
class SubgraphFeedback:
    """Measured delay of one evaluated subgraph.

    Attributes:
        candidate: the candidate path the subgraph was grown from.
        node_ids: IR nodes covered by the subgraph.
        delay_ps: post-synthesis critical-path delay reported by the flow.
        estimated_delay_ps: the scheduler's estimate before feedback (the
            candidate's matrix entry), for reporting estimation error.
        num_gates: logic-gate count of the synthesised subgraph.
    """

    candidate: CandidatePath
    node_ids: frozenset[int]
    delay_ps: float
    estimated_delay_ps: float
    num_gates: int


class FeedbackEngine:
    """Runs extracted subgraphs through the downstream flow, with memoisation.

    In the paper this corresponds to dispatching subgraphs to Yosys/OpenSTA in
    parallel; here the flow is a local simulator, so "dispatch" is a cached
    function call.

    Args:
        library: technology library for the downstream flow.
        optimize: run the logic optimiser inside the flow.
    """

    def __init__(self, library: TechLibrary | None = None, optimize: bool = True) -> None:
        flow = SynthesisFlow(library, optimize=optimize)
        self.cache = EvaluationCache(flow)

    def evaluate(self, graph: DataflowGraph,
                 subgraphs: list[tuple[CandidatePath, frozenset[int]]]
                 ) -> list[SubgraphFeedback]:
        """Evaluate a batch of subgraphs and return their feedback records."""
        feedback: list[SubgraphFeedback] = []
        for candidate, node_ids in subgraphs:
            report = self.cache.evaluate(graph, node_ids)
            feedback.append(SubgraphFeedback(
                candidate=candidate,
                node_ids=node_ids,
                delay_ps=report.delay_ps,
                estimated_delay_ps=candidate.delay_ps,
                num_gates=report.num_gates,
            ))
        return feedback

    @property
    def evaluations(self) -> int:
        """Number of distinct subgraphs synthesised so far."""
        return self.cache.stats.misses

    @property
    def cache_hits(self) -> int:
        """Number of evaluations answered from the cache."""
        return self.cache.stats.hits
