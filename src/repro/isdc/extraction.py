"""Subgraph extraction from a pipeline schedule (paper Section III-B).

Each iteration, ISDC looks at the *previous* schedule and extracts a handful
of combinational subgraphs to send to the downstream flow:

1. **Candidate paths** run from a node ``vi`` to a node ``vj`` scheduled in
   the same stage, where ``vj``'s result is registered (it crosses a stage
   boundary or feeds a primary output).  For every registered ``vj`` the
   candidate uses the in-stage ancestor ``vi`` with the largest estimated
   critical-path delay.
2. **Ranking** is either delay-driven (largest estimated delay first) or
   fanout-driven (the paper's Eq. 3 score: wide registers with few consumers
   first, delay as a tie-breaker).
3. **Expansion** turns the selected path into the evaluated subgraph: the
   path itself, the root's in-stage input cone, or a window merging cones of
   same-stage roots that share leaves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ir.graph import DataflowGraph
from repro.isdc.config import ExpansionStrategy, ExtractionStrategy, IsdcConfig
from repro.isdc.delay_matrix import DelayMatrix
from repro.kernel import (
    GraphView,
    NOT_CONNECTED,
    UNREACHED,
    longest_path_from,
    reachable_indices,
    reconstruct_path,
)
from repro.sdc.scheduler import Schedule


class _ScheduleContext:
    """Shared per-extraction arrays over one (schedule, delay matrix) pair.

    Everything derived from the schedule that costs O(n) to build -- the
    kernel view, the dense stage vector, per-stage traversal masks, the
    individual-delay diagonal, the registered-node list -- is computed once
    here and reused across every candidate of an extraction pass, keeping the
    per-candidate work proportional to the swept cone, not the graph.
    """

    def __init__(self, schedule: Schedule) -> None:
        self.schedule = schedule
        self.view = GraphView.from_dataflow(schedule.graph)
        stages = schedule.stages
        self.stage_vector = np.asarray(
            [stages[nid] for nid in self.view.order_ids()], dtype=np.int64)
        self._stage_masks: dict[int, np.ndarray] = {}
        self._cones: dict[int, np.ndarray] = {}
        self._scratch = np.zeros(self.view.num_nodes, dtype=bool)
        self._delays: np.ndarray | None = None
        self._delays_for: DelayMatrix | None = None
        self._aligned_for: DelayMatrix | None = None
        self._aligned = False
        self._registered: list[int] | None = None

    def stage_mask(self, stage: int) -> np.ndarray:
        """Traversal mask for one stage: same-stage, non-source nodes."""
        if stage not in self._stage_masks:
            self._stage_masks[stage] = ((self.stage_vector == stage)
                                        & ~self.view.source_mask)
        return self._stage_masks[stage]

    def cone_indices(self, root: int) -> np.ndarray:
        """In-stage ancestor cone of ``root`` as ascending dense indices.

        Frontier-compressed and cached per root (candidate enumeration, path
        reconstruction and window expansion all revisit the same cones): the
        sweep reuses one scratch visited buffer, so each cone costs
        O(cone), not O(n).  Like the traversal mask, the result excludes a
        source root.  Do not mutate the returned array.
        """
        if root not in self._cones:
            self._cones[root] = reachable_indices(
                self.view, [self.view.index_of[root]], backward=True,
                mask=self.stage_mask(self.schedule.stage_of(root)),
                scratch=self._scratch)
        return self._cones[root]

    def cone_mask(self, root: int) -> np.ndarray:
        """Boolean in-stage ancestor cone of ``root`` over dense indices."""
        mask = np.zeros(self.view.num_nodes, dtype=bool)
        mask[self.cone_indices(root)] = True
        return mask

    def cone_ids(self, root: int) -> set[int]:
        """In-stage ancestor cone of ``root`` as node ids (root included).

        ``root`` is part of its own cone by definition, even when the
        traversal mask would reject it (a source root).
        """
        cone = set(self.view.ids_of(self.cone_indices(root)))
        cone.add(root)
        return cone

    def matrix_aligned(self, delay_matrix: DelayMatrix) -> bool:
        """True when the matrix rows/columns are this context's dense indices.

        Always the case in the ISDC loop (the matrix is built from the same
        graph's view); checked once per matrix so candidate scoring can index
        :attr:`DelayMatrix.matrix` directly with cone indices.
        """
        if self._aligned_for is not delay_matrix:
            self._aligned = delay_matrix.index_of == self.view.index_of
            self._aligned_for = delay_matrix
        return self._aligned

    def individual_delays(self, delay_matrix: DelayMatrix) -> np.ndarray:
        """The matrix diagonal (isolated node delays) in dense order."""
        if self._delays is None or self._delays_for is not delay_matrix:
            matrix_indices = np.asarray(
                [delay_matrix.index_of[nid] for nid in self.view.order_ids()],
                dtype=np.int64)
            self._delays = delay_matrix.matrix[matrix_indices, matrix_indices]
            self._delays_for = delay_matrix
        return self._delays

    def registered_nodes(self) -> list[int]:
        """Registered nodes of the schedule (cached, ascending id order)."""
        if self._registered is None:
            self._registered = _registered_nodes(self)
        return self._registered


@dataclass(frozen=True)
class CandidatePath:
    """One candidate combinational path from the previous schedule.

    Attributes:
        source: node id of ``vi`` (start of the path).
        sink: node id of ``vj`` (the registered root).
        stage: pipeline stage both nodes live in.
        delay_ps: estimated critical-path delay ``D(ccp(vi, vj))``.
        score: ranking score (depends on the extraction strategy).
        path_nodes: nodes on the critical path, source to sink.
    """

    source: int
    sink: int
    stage: int
    delay_ps: float
    score: float
    path_nodes: tuple[int, ...]


def registered_nodes(schedule: Schedule) -> list[int]:
    """Nodes whose result is stored in a pipeline register.

    A node's result is registered when at least one consumer is scheduled in
    a later stage, or when the node has no consumers at all (it feeds a
    primary output of the pipeline).  Source nodes never hold registers.
    """
    return _registered_nodes(_ScheduleContext(schedule))


def _registered_nodes(context: _ScheduleContext) -> list[int]:
    view = context.view
    if view.num_nodes == 0:
        return []
    stages = context.stage_vector
    # Worst user stage per node via one segmented max over the successor CSR.
    counts = view.succ_indptr[1:] - view.succ_indptr[:-1]
    worst_user_stage = np.full(view.num_nodes, np.iinfo(np.int64).min,
                               dtype=np.int64)
    nonempty = counts > 0
    if view.succ_indices.size:
        worst_user_stage[nonempty] = np.maximum.reduceat(
            stages[view.succ_indices], view.succ_indptr[:-1][nonempty])
    registered = (~view.source_mask
                  & (~nonempty | (worst_user_stage > stages)))
    return sorted(view.ids_of(np.nonzero(registered)[0]))


def in_stage_ancestors(schedule: Schedule, root: int) -> set[int]:
    """Non-source ancestors of ``root`` scheduled in the same stage (root included)."""
    return _ScheduleContext(schedule).cone_ids(root)


def cone_leaves(graph: DataflowGraph, cone: set[int]) -> frozenset[int]:
    """Boundary nodes feeding a cone: operands of cone members outside the cone."""
    leaves: set[int] = set()
    for node_id in cone:
        for operand in graph.operands_of(node_id):
            if operand not in cone:
                leaves.add(operand)
    return frozenset(leaves)


def critical_in_stage_path(schedule: Schedule, delay_matrix: DelayMatrix,
                           source: int, sink: int) -> tuple[int, ...]:
    """One maximum-delay path from ``source`` to ``sink`` within their stage.

    Uses the individual delays from the matrix diagonal for the longest-path
    computation (the per-segment feedback delays do not decompose onto single
    nodes, so individual delays are the consistent choice here).
    """
    return _critical_in_stage_path(_ScheduleContext(schedule), delay_matrix,
                                   source, sink)


def _critical_in_stage_path(context: _ScheduleContext,
                            delay_matrix: DelayMatrix,
                            source: int, sink: int) -> tuple[int, ...]:
    view = context.view
    cone = context.cone_mask(sink)
    source_index = view.index_of[source]
    if not cone[source_index]:
        return (sink,)
    delays = context.individual_delays(delay_matrix)
    values, parents = longest_path_from(view, delays, source_index, mask=cone)
    sink_index = view.index_of[sink]
    if values[sink_index] == UNREACHED:
        return (sink,)
    dense = reconstruct_path(parents, source_index, sink_index)
    return tuple(view.ids_of(dense))


def fanout_score(graph: DataflowGraph, sink: int, delay_ps: float,
                 clock_period_ps: float) -> float:
    """The paper's Eq. 3 fanout-driven score for a candidate path.

    ``(bit_count(r(vj)) + D(ccp)/Tclk) / (num_users(r(vj)) + 1)`` -- wide
    registers with few consumers score highest; the delay ratio mostly breaks
    ties (any valid schedule keeps it below 1.0).  Estimates *above* the
    clock period -- common in early iterations, before feedback lands -- keep
    their real ratio so over-period candidates still rank by delay instead of
    collapsing onto one flattened score.
    """
    node = graph.node(sink)
    ratio = delay_ps / clock_period_ps if clock_period_ps > 0 else 0.0
    return (node.width + ratio) / (graph.num_users(sink) + 1)


def _best_source(context: _ScheduleContext, delay_matrix: DelayMatrix,
                 sink: int) -> int:
    """The in-stage ancestor of ``sink`` with the largest estimated delay.

    Ties between equal-delay sources break toward the smallest node id --
    historically ``max()`` over id-sorted cone members, here the first
    ``argmax`` over the id-ordered gathered matrix column (identical, and
    independent of ``PYTHONHASHSEED``).  ``sink`` itself when the cone holds
    no other node.
    """
    view = context.view
    sink_index = view.index_of[sink]
    cone = context.cone_indices(sink)
    sources = cone[cone != sink_index]
    if sources.size == 0:
        return sink
    if not context.matrix_aligned(delay_matrix):
        return max(sorted(view.ids_of(sources)),
                   key=lambda nid: (delay_matrix.get(nid, sink)
                                    if delay_matrix.is_connected(nid, sink)
                                    else 0.0))
    ids = np.asarray(view.ids_of(sources), dtype=np.int64)
    by_id = np.argsort(ids)
    delays = delay_matrix.matrix[sources[by_id], sink_index]
    delays = np.where(delays == NOT_CONNECTED, 0.0, delays)
    return int(ids[by_id[np.argmax(delays)]])


def enumerate_candidate_paths(schedule: Schedule, delay_matrix: DelayMatrix,
                              strategy: ExtractionStrategy,
                              clock_period_ps: float) -> list[CandidatePath]:
    """All candidate paths of a schedule, scored but not yet truncated.

    One candidate is produced per registered node: the in-stage path ending
    at it with the largest estimated delay.  A registered node that is alone
    in its stage still yields a (single-node) candidate -- measuring it
    removes the characterisation guard band on that operation, which is often
    what unlocks merging it with a neighbouring stage.
    """
    return _enumerate_candidate_paths(_ScheduleContext(schedule), delay_matrix,
                                      strategy, clock_period_ps)


def _enumerate_candidate_paths(context: _ScheduleContext,
                               delay_matrix: DelayMatrix,
                               strategy: ExtractionStrategy,
                               clock_period_ps: float) -> list[CandidatePath]:
    schedule = context.schedule
    graph = schedule.graph
    candidates: list[CandidatePath] = []
    for sink in context.registered_nodes():
        best_source = _best_source(context, delay_matrix, sink)
        delay = delay_matrix.get(best_source, sink)
        if delay <= 0:
            continue
        if strategy is ExtractionStrategy.FANOUT:
            score = fanout_score(graph, sink, delay, clock_period_ps)
        else:
            score = delay
        path = _critical_in_stage_path(context, delay_matrix, best_source, sink)
        candidates.append(CandidatePath(
            source=best_source, sink=sink, stage=schedule.stage_of(sink),
            delay_ps=delay, score=score, path_nodes=path))
    candidates.sort(key=lambda c: (-c.score, c.sink))
    return candidates


class SubgraphExtractor:
    """Extracts the per-iteration set of subgraphs to evaluate.

    Args:
        config: the ISDC configuration (strategies and the per-iteration
            subgraph budget ``m``).
    """

    def __init__(self, config: IsdcConfig) -> None:
        self.config = config

    def expand(self, schedule: Schedule, candidate: CandidatePath) -> frozenset[int]:
        """Expand one candidate path into the node set to synthesise."""
        return self._expand(_ScheduleContext(schedule), candidate)

    def _expand(self, context: _ScheduleContext, candidate: CandidatePath
                ) -> frozenset[int]:
        expansion = self.config.expansion
        if expansion is ExpansionStrategy.PATH:
            return frozenset(candidate.path_nodes)
        cone = context.cone_ids(candidate.sink)
        if expansion is ExpansionStrategy.CONE:
            return frozenset(cone)
        return self._expand_window(context, candidate, cone)

    def _expand_window(self, context: _ScheduleContext,
                       candidate: CandidatePath,
                       cone: set[int]) -> frozenset[int]:
        """Merge cones of same-stage registered roots that share leaves."""
        schedule = context.schedule
        graph = schedule.graph
        leaves = cone_leaves(graph, cone)
        window = set(cone)
        if not leaves:
            return frozenset(window)
        for other_root in context.registered_nodes():
            if other_root == candidate.sink:
                continue
            if schedule.stage_of(other_root) != candidate.stage:
                continue
            other_cone = context.cone_ids(other_root)
            if leaves & cone_leaves(graph, other_cone):
                window.update(other_cone)
        return frozenset(window)

    def extract(self, schedule: Schedule, delay_matrix: DelayMatrix
                ) -> list[tuple[CandidatePath, frozenset[int]]]:
        """Top-m candidates of the schedule, expanded and de-duplicated."""
        context = _ScheduleContext(schedule)
        candidates = _enumerate_candidate_paths(
            context, delay_matrix, self.config.extraction,
            self.config.clock_period_ps)
        selected: list[tuple[CandidatePath, frozenset[int]]] = []
        seen: set[frozenset[int]] = set()
        for candidate in candidates:
            if len(selected) >= self.config.subgraphs_per_iteration:
                break
            node_set = self._expand(context, candidate)
            if not node_set or node_set in seen:
                continue
            seen.add(node_set)
            selected.append((candidate, node_set))
        return selected
