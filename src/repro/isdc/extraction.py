"""Subgraph extraction from a pipeline schedule (paper Section III-B).

Each iteration, ISDC looks at the *previous* schedule and extracts a handful
of combinational subgraphs to send to the downstream flow:

1. **Candidate paths** run from a node ``vi`` to a node ``vj`` scheduled in
   the same stage, where ``vj``'s result is registered (it crosses a stage
   boundary or feeds a primary output).  For every registered ``vj`` the
   candidate uses the in-stage ancestor ``vi`` with the largest estimated
   critical-path delay.
2. **Ranking** is either delay-driven (largest estimated delay first) or
   fanout-driven (the paper's Eq. 3 score: wide registers with few consumers
   first, delay as a tie-breaker).
3. **Expansion** turns the selected path into the evaluated subgraph: the
   path itself, the root's in-stage input cone, or a window merging cones of
   same-stage roots that share leaves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import DataflowGraph
from repro.isdc.config import ExpansionStrategy, ExtractionStrategy, IsdcConfig
from repro.isdc.delay_matrix import DelayMatrix
from repro.sdc.scheduler import Schedule


@dataclass(frozen=True)
class CandidatePath:
    """One candidate combinational path from the previous schedule.

    Attributes:
        source: node id of ``vi`` (start of the path).
        sink: node id of ``vj`` (the registered root).
        stage: pipeline stage both nodes live in.
        delay_ps: estimated critical-path delay ``D(ccp(vi, vj))``.
        score: ranking score (depends on the extraction strategy).
        path_nodes: nodes on the critical path, source to sink.
    """

    source: int
    sink: int
    stage: int
    delay_ps: float
    score: float
    path_nodes: tuple[int, ...]


def registered_nodes(schedule: Schedule) -> list[int]:
    """Nodes whose result is stored in a pipeline register.

    A node's result is registered when at least one consumer is scheduled in
    a later stage, or when the node has no consumers at all (it feeds a
    primary output of the pipeline).  Source nodes never hold registers.
    """
    graph = schedule.graph
    result: list[int] = []
    for node in graph.nodes():
        if node.is_source:
            continue
        users = graph.users_of(node.node_id)
        stage = schedule.stage_of(node.node_id)
        if not users or any(schedule.stage_of(u) > stage for u in users):
            result.append(node.node_id)
    return result


def in_stage_ancestors(schedule: Schedule, root: int) -> set[int]:
    """Non-source ancestors of ``root`` scheduled in the same stage (root included)."""
    graph = schedule.graph
    stage = schedule.stage_of(root)
    cone: set[int] = {root}
    stack = [root]
    while stack:
        current = stack.pop()
        for operand in graph.operands_of(current):
            if operand in cone:
                continue
            operand_node = graph.node(operand)
            if operand_node.is_source or schedule.stage_of(operand) != stage:
                continue
            cone.add(operand)
            stack.append(operand)
    return cone


def cone_leaves(graph: DataflowGraph, cone: set[int]) -> frozenset[int]:
    """Boundary nodes feeding a cone: operands of cone members outside the cone."""
    leaves: set[int] = set()
    for node_id in cone:
        for operand in graph.operands_of(node_id):
            if operand not in cone:
                leaves.add(operand)
    return frozenset(leaves)


def critical_in_stage_path(schedule: Schedule, delay_matrix: DelayMatrix,
                           source: int, sink: int) -> tuple[int, ...]:
    """One maximum-delay path from ``source`` to ``sink`` within their stage.

    Uses the individual delays from the matrix diagonal for the longest-path
    computation (the per-segment feedback delays do not decompose onto single
    nodes, so individual delays are the consistent choice here).
    """
    graph = schedule.graph
    stage = schedule.stage_of(sink)
    cone = in_stage_ancestors(schedule, sink)
    if source not in cone:
        return (sink,)
    best: dict[int, float] = {source: delay_matrix.individual_delay(source)}
    parent: dict[int, int] = {}
    # The cone is small; a simple repeated relaxation in node-id order over
    # the DAG restricted to the cone is sufficient and always terminates.
    from repro.ir.analysis import topological_order

    for node_id in topological_order(graph):
        if node_id not in cone or node_id not in best:
            continue
        for user in sorted(set(graph.users_of(node_id))):
            if user not in cone or schedule.stage_of(user) != stage:
                continue
            candidate = best[node_id] + delay_matrix.individual_delay(user)
            if candidate > best.get(user, float("-inf")):
                best[user] = candidate
                parent[user] = node_id
    if sink not in best:
        return (sink,)
    path = [sink]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return tuple(path)


def fanout_score(graph: DataflowGraph, sink: int, delay_ps: float,
                 clock_period_ps: float) -> float:
    """The paper's Eq. 3 fanout-driven score for a candidate path.

    ``(bit_count(r(vj)) + D(ccp)/Tclk) / (num_users(r(vj)) + 1)`` -- wide
    registers with few consumers score highest; the delay ratio mostly breaks
    ties (any valid schedule keeps it below 1.0).  Estimates *above* the
    clock period -- common in early iterations, before feedback lands -- keep
    their real ratio so over-period candidates still rank by delay instead of
    collapsing onto one flattened score.
    """
    node = graph.node(sink)
    ratio = delay_ps / clock_period_ps if clock_period_ps > 0 else 0.0
    return (node.width + ratio) / (graph.num_users(sink) + 1)


def enumerate_candidate_paths(schedule: Schedule, delay_matrix: DelayMatrix,
                              strategy: ExtractionStrategy,
                              clock_period_ps: float) -> list[CandidatePath]:
    """All candidate paths of a schedule, scored but not yet truncated.

    One candidate is produced per registered node: the in-stage path ending
    at it with the largest estimated delay.  A registered node that is alone
    in its stage still yields a (single-node) candidate -- measuring it
    removes the characterisation guard band on that operation, which is often
    what unlocks merging it with a neighbouring stage.
    """
    graph = schedule.graph
    candidates: list[CandidatePath] = []
    for sink in registered_nodes(schedule):
        cone = in_stage_ancestors(schedule, sink)
        # Sorted iteration keeps max()'s tie-break between equal-delay
        # sources independent of set order (and thus of PYTHONHASHSEED).
        sources = sorted(nid for nid in cone if nid != sink)
        if sources:
            best_source = max(
                sources,
                key=lambda nid: (delay_matrix.get(nid, sink)
                                 if delay_matrix.is_connected(nid, sink) else 0.0))
        else:
            best_source = sink
        delay = delay_matrix.get(best_source, sink)
        if delay <= 0:
            continue
        if strategy is ExtractionStrategy.FANOUT:
            score = fanout_score(graph, sink, delay, clock_period_ps)
        else:
            score = delay
        path = critical_in_stage_path(schedule, delay_matrix, best_source, sink)
        candidates.append(CandidatePath(
            source=best_source, sink=sink, stage=schedule.stage_of(sink),
            delay_ps=delay, score=score, path_nodes=path))
    candidates.sort(key=lambda c: (-c.score, c.sink))
    return candidates


class SubgraphExtractor:
    """Extracts the per-iteration set of subgraphs to evaluate.

    Args:
        config: the ISDC configuration (strategies and the per-iteration
            subgraph budget ``m``).
    """

    def __init__(self, config: IsdcConfig) -> None:
        self.config = config

    def expand(self, schedule: Schedule, candidate: CandidatePath) -> frozenset[int]:
        """Expand one candidate path into the node set to synthesise."""
        expansion = self.config.expansion
        if expansion is ExpansionStrategy.PATH:
            return frozenset(candidate.path_nodes)
        cone = in_stage_ancestors(schedule, candidate.sink)
        if expansion is ExpansionStrategy.CONE:
            return frozenset(cone)
        return self._expand_window(schedule, candidate, cone)

    def _expand_window(self, schedule: Schedule, candidate: CandidatePath,
                       cone: set[int]) -> frozenset[int]:
        """Merge cones of same-stage registered roots that share leaves."""
        graph = schedule.graph
        leaves = cone_leaves(graph, cone)
        window = set(cone)
        if not leaves:
            return frozenset(window)
        for other_root in registered_nodes(schedule):
            if other_root == candidate.sink:
                continue
            if schedule.stage_of(other_root) != candidate.stage:
                continue
            other_cone = in_stage_ancestors(schedule, other_root)
            if leaves & cone_leaves(graph, other_cone):
                window.update(other_cone)
        return frozenset(window)

    def extract(self, schedule: Schedule, delay_matrix: DelayMatrix
                ) -> list[tuple[CandidatePath, frozenset[int]]]:
        """Top-m candidates of the schedule, expanded and de-duplicated."""
        candidates = enumerate_candidate_paths(
            schedule, delay_matrix, self.config.extraction,
            self.config.clock_period_ps)
        selected: list[tuple[CandidatePath, frozenset[int]]] = []
        seen: set[frozenset[int]] = set()
        for candidate in candidates:
            if len(selected) >= self.config.subgraphs_per_iteration:
                break
            node_set = self.expand(schedule, candidate)
            if not node_set or node_set in seen:
                continue
            seen.add(node_set)
            selected.append((candidate, node_set))
        return selected
