"""Shared process-pool helpers for batch evaluation and experiment fan-out.

All helpers guarantee *deterministic result ordering*: results come back in
the order of the submitted items regardless of which worker finished first.
``jobs=1`` (or a single item) always takes a serial in-process fast path, so
callers can thread a ``jobs`` knob through unconditionally.

The pool prefers the ``fork`` start method (cheap, no re-import of the
package in workers) and falls back to the platform default where ``fork`` is
unavailable.  Submitted callables and arguments must be picklable.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import Executor, ProcessPoolExecutor, as_completed
from typing import Any, Callable, Iterable, Iterator, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")


def pool_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context used by all pools (``fork`` when available)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def effective_jobs(jobs: int, num_items: int) -> int:
    """Clamp a requested worker count to something worth spawning."""
    return max(1, min(int(jobs), num_items))


def parallel_map(function: Callable[[_T], _R], items: Sequence[_T],
                 jobs: int = 1) -> list[_R]:
    """``[function(item) for item in items]`` over a transient process pool.

    Args:
        function: picklable callable applied to every item.
        items: the work items (picklable when ``jobs > 1``).
        jobs: maximum worker processes; ``1`` runs serially in-process.

    Returns:
        Results in item order.
    """
    workers = effective_jobs(jobs, len(items))
    if workers <= 1:
        return [function(item) for item in items]
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=pool_context()) as executor:
        return list(executor.map(function, items))


def parallel_imap_unordered(function: Callable[[_T], _R], items: Sequence[_T],
                            jobs: int = 1) -> Iterator[tuple[int, _R]]:
    """Yield ``(index, function(item))`` pairs as items finish.

    Unlike :func:`parallel_map` this is a generator that surfaces each result
    the moment its worker completes, which lets callers checkpoint
    incrementally (the campaign executor's per-job run store).  The serial
    fast path (``jobs <= 1`` or a single item) yields in item order; with
    workers the yield order is completion order, so callers needing
    determinism must re-order by the yielded index.

    Args:
        function: picklable callable applied to every item.
        items: the work items (picklable when ``jobs > 1``).
        jobs: maximum worker processes; ``1`` runs serially in-process.
    """
    workers = effective_jobs(jobs, len(items))
    if workers <= 1:
        for index, item in enumerate(items):
            yield index, function(item)
        return
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=pool_context()) as executor:
        futures = {executor.submit(function, item): index
                   for index, item in enumerate(items)}
        for future in as_completed(futures):
            yield futures[future], future.result()


class PersistentPool:
    """A lazily-created, reusable process pool with ordered ``map``.

    Batch evaluation calls arrive once per ISDC iteration; keeping the
    workers alive across calls amortises the fork cost over the whole loop.
    The pool is created on first use and torn down via :meth:`close` (also
    invoked by ``with`` and on garbage collection).

    Worker processes accumulate per-process state (the DSE worker caches,
    the service :class:`~repro.dse.warm.ProblemCache`), which is exactly
    why long-lived callers share one pool via :func:`shared_pool` instead
    of respawning per batch.

    Args:
        jobs: maximum number of worker processes.
    """

    def __init__(self, jobs: int) -> None:
        self.jobs = max(1, int(jobs))
        self._executor: Executor | None = None

    def executor(self) -> Executor:
        """The live :class:`ProcessPoolExecutor`, created on first use.

        Exposed for callers that need future-level control (the service
        daemon's ``run_in_executor`` bridge); everyone else should prefer
        :meth:`map` / :meth:`imap_unordered`.
        """
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs,
                                                 mp_context=pool_context())
        return self._executor

    def map(self, function: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        """Apply ``function`` to every item, preserving item order."""
        workers = effective_jobs(self.jobs, len(items))
        if workers <= 1:
            return [function(item) for item in items]
        return list(self.executor().map(function, items))

    def imap_unordered(self, function: Callable[[_T], _R],
                       items: Sequence[_T]) -> Iterator[tuple[int, _R]]:
        """Yield ``(index, function(item))`` pairs as items finish.

        The streaming counterpart of :meth:`map` (same contract as
        :func:`parallel_imap_unordered`, but over this pool's persistent
        workers): serial in item order when ``jobs <= 1`` or for a single
        item, completion order otherwise.
        """
        workers = effective_jobs(self.jobs, len(items))
        if workers <= 1:
            for index, item in enumerate(items):
                yield index, function(item)
            return
        executor = self.executor()
        futures = {executor.submit(function, item): index
                   for index, item in enumerate(items)}
        for future in as_completed(futures):
            yield futures[future], future.result()

    def resize(self, jobs: int) -> None:
        """Grow the pool to at least ``jobs`` workers.

        A no-op when the pool is already wide enough; otherwise the old
        executor (if any) is shut down and a wider one is created lazily
        on next use.  Shrinking is never done -- idle workers are cheap
        and per-worker caches are valuable.
        """
        jobs = max(1, int(jobs))
        if jobs <= self.jobs:
            return
        self.close()
        self.jobs = jobs

    def recover(self) -> None:
        """Replace a broken executor with a fresh one (crash recovery).

        After a worker dies mid-task, :class:`ProcessPoolExecutor` marks
        itself broken and fails every subsequent submission.  Dropping it
        lets the next :meth:`executor` call fork a healthy pool; per-worker
        caches are lost, which only costs warm-start state.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass


#: The process-wide pool behind :func:`shared_pool`.
_SHARED_POOL: PersistentPool | None = None


def shared_pool(jobs: int) -> PersistentPool:
    """The process-wide persistent pool, grown to at least ``jobs`` workers.

    Campaign shards, DSE probe batches and service cold-miss batches all
    draw from this one pool, so worker processes (and their per-worker
    warm-start caches) survive across call sites instead of being respawned
    per batch.  The pool only ever grows; call :func:`close_shared_pool`
    to tear it down (tests, daemon shutdown).

    Callers must not :meth:`PersistentPool.close` the returned pool --
    they do not own it.
    """
    global _SHARED_POOL
    if _SHARED_POOL is None:
        _SHARED_POOL = PersistentPool(jobs)
    else:
        _SHARED_POOL.resize(jobs)
    return _SHARED_POOL


def close_shared_pool() -> None:
    """Shut down the process-wide pool (idempotent; it re-forks on next use)."""
    global _SHARED_POOL
    if _SHARED_POOL is not None:
        _SHARED_POOL.close()
        _SHARED_POOL = None


def split_round_robin(items: Sequence[_T], chunks: int) -> list[list[_T]]:
    """Deal ``items`` into ``chunks`` round-robin lists (some may be empty)."""
    dealt: list[list[_T]] = [[] for _ in range(max(1, chunks))]
    for index, item in enumerate(items):
        dealt[index % len(dealt)].append(item)
    return dealt


__all__ = ["PersistentPool", "close_shared_pool", "effective_jobs",
           "parallel_imap_unordered", "parallel_map", "pool_context",
           "shared_pool", "split_round_robin"]
