"""Bit-level netlist container."""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.kernel import GraphView
from repro.kernel.delta import record_add, record_remove
from repro.netlist.gates import Gate, GateKind, GATE_FUNCTIONS, KIND_CODES
from repro.tech.library import TechLibrary


class Netlist:
    """A combinational gate-level netlist.

    The netlist is a DAG of :class:`~repro.netlist.gates.Gate` objects.  Nets
    are identified with the gate driving them (single-output gates), so "gate
    id" and "net id" are used interchangeably.

    Attributes:
        name: netlist name, propagated into timing reports.
    """

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self._gates: dict[int, Gate] = {}
        self._fanout: dict[int, list[int]] = {}
        self._outputs: list[int] = []
        self._next_id = 0
        self._version = 0

    @property
    def structural_version(self) -> int:
        """Monotonic counter advanced on every structural edit.

        Keys the kernel's cached :class:`~repro.kernel.GraphView`: gate
        additions and removals invalidate the view (small runs of them are
        patched into it instead of forcing a rebuild), output marking and
        renames (which do not change connectivity or levels) do not.
        """
        return self._version

    # ------------------------------------------------------------------ build

    def add_gate(self, kind: GateKind, inputs: Iterable[int] = (),
                 name: str = "") -> int:
        """Add a gate and return its id.

        Raises:
            KeyError: if an input gate id does not exist.
            ValueError: if the input count does not match the gate kind.
        """
        input_ids = tuple(inputs)
        if len(input_ids) != kind.num_inputs:
            raise ValueError(
                f"{kind.value} expects {kind.num_inputs} inputs, got {len(input_ids)}")
        for input_id in input_ids:
            if input_id not in self._gates:
                raise KeyError(f"input gate {input_id} not in netlist {self.name!r}")
        gate = Gate(self._next_id, kind, input_ids, name)
        self._gates[gate.gate_id] = gate
        self._fanout[gate.gate_id] = []
        for input_id in input_ids:
            self._fanout[input_id].append(gate.gate_id)
        self._next_id += 1
        self._version += 1
        record_add(self, gate.gate_id, input_ids, kind.is_source)
        return gate.gate_id

    def remove_gate(self, gate_id: int) -> None:
        """Remove a gate with no fanout that is not a primary output.

        The restriction mirrors :meth:`~repro.ir.graph.DataflowGraph.
        remove_node`: user-free removals keep every surviving gate's input
        list valid and let the kernel patch its cached view.

        Raises:
            KeyError: if ``gate_id`` is not in the netlist.
            ValueError: if the gate drives other gates or an output port.
        """
        gate = self._gates.get(gate_id)
        if gate is None:
            raise KeyError(f"gate {gate_id} not in netlist {self.name!r}")
        if self._fanout[gate_id]:
            raise ValueError(
                f"gate {gate_id} still drives {self._fanout[gate_id]} in "
                f"netlist {self.name!r}; remove the loads first")
        if gate_id in self._outputs:
            raise ValueError(f"gate {gate_id} is a primary output of "
                             f"netlist {self.name!r}")
        del self._gates[gate_id]
        del self._fanout[gate_id]
        for input_id in set(gate.inputs):
            self._fanout[input_id] = [g for g in self._fanout[input_id]
                                      if g != gate_id]
        self._version += 1
        record_remove(self, gate_id)

    def add_input(self, name: str = "") -> int:
        """Add a primary-input gate."""
        return self.add_gate(GateKind.INPUT, (), name)

    def add_constant(self, value: int, name: str = "") -> int:
        """Add a tie-0/tie-1 gate for the given bit value."""
        kind = GateKind.CONST1 if value else GateKind.CONST0
        return self.add_gate(kind, (), name)

    def mark_output(self, gate_id: int) -> None:
        """Mark ``gate_id`` as a primary output.

        The same gate may be marked several times: each call adds one output
        *port*, and ports keep their positions across optimisation rebuilds,
        which is what functional-equivalence checks rely on.
        """
        if gate_id not in self._gates:
            raise KeyError(f"gate {gate_id} not in netlist {self.name!r}")
        self._outputs.append(gate_id)

    # ----------------------------------------------------------------- access

    def __len__(self) -> int:
        return len(self._gates)

    def __contains__(self, gate_id: int) -> bool:
        return gate_id in self._gates

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates.values())

    def gate(self, gate_id: int) -> Gate:
        return self._gates[gate_id]

    def gates(self) -> list[Gate]:
        """All gates in ascending id order."""
        return [self._gates[i] for i in sorted(self._gates)]

    def gate_ids(self) -> list[int]:
        return sorted(self._gates)

    def fanout(self, gate_id: int) -> list[int]:
        """Gates driven by ``gate_id``."""
        return list(self._fanout[gate_id])

    def outputs(self) -> list[int]:
        """Primary-output gate ids, in registration order."""
        return list(self._outputs)

    def inputs(self) -> list[int]:
        """Primary-input gate ids in ascending order."""
        return [g.gate_id for g in self.gates() if g.kind is GateKind.INPUT]

    def num_logic_gates(self) -> int:
        """Number of gates excluding primary inputs and tie cells."""
        return sum(1 for g in self._gates.values() if not g.kind.is_source)

    def kind_code_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(gate_ids, kind_codes)`` arrays in ascending gate-id order.

        ``kind_codes[i]`` is :data:`~repro.netlist.gates.KIND_CODES` of the
        gate with id ``gate_ids[i]``; both arrays are cached per structural
        version (do not mutate them).  Vectorized consumers -- the STA delay
        vector in particular -- gather per-kind tables through these instead
        of touching one :class:`Gate` object per gate per run.
        """
        cached = getattr(self, "_kind_code_cache", None)
        if cached is not None and cached[0] == self._version:
            return cached[1], cached[2]
        ids = np.fromiter(sorted(self._gates), dtype=np.int64,
                          count=len(self._gates))
        codes = np.fromiter((KIND_CODES[self._gates[gid].kind] for gid in ids),
                            dtype=np.int64, count=ids.size)
        self._kind_code_cache = (self._version, ids, codes)
        return ids, codes

    # -------------------------------------------------------------- analysis

    def topological_order(self) -> list[int]:
        """Gate ids in topological order (drivers before loads).

        Delegates to the cached kernel :class:`~repro.kernel.GraphView`, so
        the order (the historical deterministic Kahn order) is computed once
        per structural version and shared with the STA engine.

        Raises:
            ValueError: if the netlist contains a combinational cycle.
        """
        return GraphView.from_netlist(self).order_ids()

    def area(self, library: TechLibrary) -> float:
        """Total cell area of the netlist in square micrometres."""
        total = 0.0
        for gate in self._gates.values():
            cell = gate.kind.cell_name
            if cell is not None:
                total += library.area(cell)
        return total

    def simulate(self, input_values: dict[int, int]) -> dict[int, int]:
        """Evaluate every gate for the given primary-input bit values.

        Args:
            input_values: mapping from primary-input gate id to 0/1.

        Returns:
            Mapping from gate id to its evaluated bit, for every gate.

        Raises:
            KeyError: if a primary input is missing from ``input_values``.
        """
        values: dict[int, int] = {}
        for gid in self.topological_order():
            gate = self._gates[gid]
            if gate.kind is GateKind.INPUT:
                values[gid] = input_values[gid] & 1
            else:
                operand_bits = tuple(values[i] for i in gate.inputs)
                values[gid] = GATE_FUNCTIONS[gate.kind](operand_bits)
        return values

    def copy(self, name: str | None = None) -> "Netlist":
        """Deep-copy the netlist."""
        clone = Netlist(name or self.name)
        clone._next_id = self._next_id
        for gid, gate in self._gates.items():
            clone._gates[gid] = Gate(gate.gate_id, gate.kind, gate.inputs, gate.name)
        clone._fanout = {k: list(v) for k, v in self._fanout.items()}
        clone._outputs = list(self._outputs)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Netlist({self.name!r}, {len(self)} gates)"
