"""Gate primitives of the bit-level netlist."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class GateKind(enum.Enum):
    """Primitive gate kinds.

    ``INPUT`` gates are the primary inputs of the netlist (one per bit);
    ``CONST0``/``CONST1`` are tie cells.  All other kinds map one-to-one onto
    cells of the technology library (see ``CELL_NAME``).
    """

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    INV = "inv"
    AND2 = "and2"
    OR2 = "or2"
    NAND2 = "nand2"
    NOR2 = "nor2"
    XOR2 = "xor2"
    XNOR2 = "xnor2"
    ANDN2 = "andn2"
    MUX2 = "mux2"
    MAJ3 = "maj3"

    @property
    def num_inputs(self) -> int:
        return _NUM_INPUTS[self]

    @property
    def cell_name(self) -> str | None:
        """Technology-library cell implementing this gate (None for inputs)."""
        return _CELL_NAME.get(self)

    @property
    def is_source(self) -> bool:
        return self in (GateKind.INPUT, GateKind.CONST0, GateKind.CONST1)


_NUM_INPUTS = {
    GateKind.INPUT: 0,
    GateKind.CONST0: 0,
    GateKind.CONST1: 0,
    GateKind.BUF: 1,
    GateKind.INV: 1,
    GateKind.AND2: 2,
    GateKind.OR2: 2,
    GateKind.NAND2: 2,
    GateKind.NOR2: 2,
    GateKind.XOR2: 2,
    GateKind.XNOR2: 2,
    GateKind.ANDN2: 2,
    GateKind.MUX2: 3,
    GateKind.MAJ3: 3,
}

_CELL_NAME = {
    GateKind.BUF: "buf",
    GateKind.INV: "inv",
    GateKind.AND2: "and2",
    GateKind.OR2: "or2",
    GateKind.NAND2: "nand2",
    GateKind.NOR2: "nor2",
    GateKind.XOR2: "xor2",
    GateKind.XNOR2: "xnor2",
    GateKind.ANDN2: "andn2",
    GateKind.MUX2: "mux2",
    GateKind.MAJ3: "maj3",
    GateKind.CONST0: "tie0",
    GateKind.CONST1: "tie1",
}

#: Dense integer code per gate kind (enum definition order).  Backs the
#: vectorized per-kind lookup tables (e.g. the STA delay table): a netlist's
#: gates become one int array of codes, and any per-kind quantity is a single
#: numpy ``table[codes]`` gather.
KIND_CODES = {kind: code for code, kind in enumerate(GateKind)}

#: Truth-table evaluators used by constant propagation and simulation.
#: Each maps a tuple of input bits to the output bit.
GATE_FUNCTIONS = {
    GateKind.CONST0: lambda inputs: 0,
    GateKind.CONST1: lambda inputs: 1,
    GateKind.BUF: lambda inputs: inputs[0],
    GateKind.INV: lambda inputs: 1 - inputs[0],
    GateKind.AND2: lambda inputs: inputs[0] & inputs[1],
    GateKind.OR2: lambda inputs: inputs[0] | inputs[1],
    GateKind.NAND2: lambda inputs: 1 - (inputs[0] & inputs[1]),
    GateKind.NOR2: lambda inputs: 1 - (inputs[0] | inputs[1]),
    GateKind.XOR2: lambda inputs: inputs[0] ^ inputs[1],
    GateKind.XNOR2: lambda inputs: 1 - (inputs[0] ^ inputs[1]),
    GateKind.ANDN2: lambda inputs: inputs[0] & (1 - inputs[1]),
    # MUX2 operands are (select, on_true, on_false).
    GateKind.MUX2: lambda inputs: inputs[1] if inputs[0] else inputs[2],
    GateKind.MAJ3: lambda inputs: 1 if (inputs[0] + inputs[1] + inputs[2]) >= 2 else 0,
}


@dataclass
class Gate:
    """A gate instance.

    Attributes:
        gate_id: unique id within the netlist.
        kind: the primitive gate kind.
        inputs: ids of the gates driving this gate's input pins, in pin order.
        name: optional debug name (primary inputs keep the IR value name).
    """

    gate_id: int
    kind: GateKind
    inputs: tuple[int, ...]
    name: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ins = ", ".join(f"g{i}" for i in self.inputs)
        return f"Gate(g{self.gate_id} = {self.kind.value}({ins}))"
