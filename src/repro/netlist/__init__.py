"""Gate-level netlist substrate.

This package plays the role of the downstream logic-synthesis input/output in
the paper's flow (Yosys netlists analysed by OpenSTA):

* :mod:`~repro.netlist.gates` / :mod:`~repro.netlist.netlist` -- the bit-level
  netlist data structure;
* :mod:`~repro.netlist.lowering` -- word-level IR operations lowered to gates
  (ripple-carry adders, array multipliers, barrel shifters, mux trees, ...);
* :mod:`~repro.netlist.optimizer` -- a small logic optimiser (constant folding,
  structural hashing, tree balancing, local rewrites) that models the
  inter-operation optimisations real synthesis performs;
* :mod:`~repro.netlist.sta` -- static timing analysis producing arrival times
  and the critical path.
"""

from repro.netlist.gates import Gate, GateKind
from repro.netlist.netlist import Netlist
from repro.netlist.lowering import lower_graph, lower_subgraph, LoweringResult
from repro.netlist.sta import StaticTimingAnalysis, TimingResult
from repro.netlist.optimizer import LogicOptimizer, OptimizationReport

__all__ = [
    "Gate",
    "GateKind",
    "Netlist",
    "lower_graph",
    "lower_subgraph",
    "LoweringResult",
    "StaticTimingAnalysis",
    "TimingResult",
    "LogicOptimizer",
    "OptimizationReport",
]
