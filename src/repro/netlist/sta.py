"""Static timing analysis over gate-level netlists.

This module is the stand-in for OpenSTA in the paper's flow.  The timing
model is a simple topological arrival-time propagation with per-cell
propagation delays from the technology library (no slew, no wire load); this
is the same level of abstraction the paper's per-operation characterisation
uses, so relative comparisons remain meaningful.

The propagation itself runs on the shared vectorized kernel
(:mod:`repro.kernel`): arrival times are one level-batched forward sweep over
the netlist's cached :class:`~repro.kernel.GraphView`, with the critical path
reconstructed from the kernel's predecessor choices (CSR tie-break order,
matching the historical ``max(gate.inputs, key=...)`` behaviour exactly).
Per-kind gate delays are resolved once per library into a lookup table
instead of hitting the library on every gate of every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kernel import GraphView, forward_propagate, path_delay as _path_delay
from repro.kernel.ops import UNREACHED
from repro.netlist.gates import GateKind
from repro.netlist.netlist import Netlist
from repro.tech.library import TechLibrary
from repro.tech.sky130 import sky130_library


@dataclass(frozen=True)
class TimingResult:
    """Result of one STA run.

    Attributes:
        critical_path_delay_ps: worst arrival time at any primary output (or
            at any gate, for netlists without marked outputs).
        critical_path: gate ids along the critical path, input to output.
        arrival_times: arrival time (ps) at every gate output.
        num_gates: number of logic gates analysed.
    """

    critical_path_delay_ps: float
    critical_path: tuple[int, ...]
    arrival_times: dict[int, float] = field(repr=False, default_factory=dict)
    num_gates: int = 0

    def arrival(self, gate_id: int) -> float:
        """Arrival time at a specific gate output."""
        return self.arrival_times[gate_id]


class StaticTimingAnalysis:
    """Arrival-time STA engine.

    Args:
        library: technology library supplying per-cell delays; defaults to the
            synthetic SKY130 library.
    """

    def __init__(self, library: TechLibrary | None = None) -> None:
        self.library = library or sky130_library()
        # One library lookup per GateKind for the engine's lifetime; every
        # run() indexes this table instead of calling into the library per
        # gate.
        self._kind_delays: dict[GateKind, float] = {
            kind: (0.0 if kind.cell_name is None
                   else float(self.library.delay(kind.cell_name)))
            for kind in GateKind
        }
        # The same table as a dense array over KIND_CODES, so run() builds
        # the per-gate delay vector as one gather instead of a Python loop.
        self._delay_table = np.asarray(
            [self._kind_delays[kind] for kind in GateKind], dtype=float)

    def gate_delay(self, kind: GateKind) -> float:
        """Propagation delay (ps) of a single gate of kind ``kind``."""
        return self._kind_delays[kind]

    def run(self, netlist: Netlist, endpoints: list[int] | None = None
            ) -> TimingResult:
        """Run STA on ``netlist``.

        Args:
            netlist: the netlist to analyse.
            endpoints: gate ids to treat as timing endpoints; defaults to the
                netlist's marked outputs, falling back to every gate.

        Returns:
            A :class:`TimingResult` with the worst endpoint arrival time and
            one critical path realising it.
        """
        view = GraphView.from_netlist(netlist)
        # Per-gate delays as one table gather: the netlist's cached kind-code
        # arrays are in ascending id order, searchsorted maps them onto the
        # view's topological order.
        gate_ids, kind_codes = netlist.kind_code_arrays()
        order = np.asarray(view.order_ids(), dtype=np.int64)
        delays = self._delay_table[kind_codes[np.searchsorted(gate_ids, order)]]
        # Indegree-0 gates are seeded exogenously: primary inputs and tie
        # cells arrive at 0, any other input-less gate contributes its own
        # delay.  Everything else is one level-batched forward sweep.
        init = np.full(view.num_nodes, UNREACHED, dtype=float)
        no_inputs = view.pred_counts() == 0
        init[no_inputs] = np.where(view.source_mask[no_inputs], 0.0,
                                   delays[no_inputs])
        values, parents = forward_propagate(view, delays, init=init, tie="csr")
        arrival = dict(zip(view.order_ids(), values.tolist()))

        if endpoints is None:
            endpoints = netlist.outputs() or list(arrival)
        if not endpoints:
            return TimingResult(0.0, (), arrival, netlist.num_logic_gates())

        worst = max(endpoints, key=lambda e: arrival[e])
        path: list[int] = []
        cursor = view.index_of[worst]
        order = view.order_ids()
        while cursor >= 0:
            path.append(order[cursor])
            cursor = int(parents[cursor])
        path.reverse()
        return TimingResult(
            critical_path_delay_ps=arrival[worst],
            critical_path=tuple(path),
            arrival_times=arrival,
            num_gates=netlist.num_logic_gates(),
        )

    def path_delay(self, netlist: Netlist, path: list[int]) -> float:
        """Sum of gate delays along an explicit path (sanity-check helper)."""
        return _path_delay(lambda g: self._kind_delays[netlist.gate(g).kind],
                           path)
