"""Static timing analysis over gate-level netlists.

This module is the stand-in for OpenSTA in the paper's flow.  The timing
model is a simple topological arrival-time propagation with per-cell
propagation delays from the technology library (no slew, no wire load); this
is the same level of abstraction the paper's per-operation characterisation
uses, so relative comparisons remain meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.gates import GateKind
from repro.netlist.netlist import Netlist
from repro.tech.library import TechLibrary
from repro.tech.sky130 import sky130_library


@dataclass(frozen=True)
class TimingResult:
    """Result of one STA run.

    Attributes:
        critical_path_delay_ps: worst arrival time at any primary output (or
            at any gate, for netlists without marked outputs).
        critical_path: gate ids along the critical path, input to output.
        arrival_times: arrival time (ps) at every gate output.
        num_gates: number of logic gates analysed.
    """

    critical_path_delay_ps: float
    critical_path: tuple[int, ...]
    arrival_times: dict[int, float] = field(repr=False, default_factory=dict)
    num_gates: int = 0

    def arrival(self, gate_id: int) -> float:
        """Arrival time at a specific gate output."""
        return self.arrival_times[gate_id]


class StaticTimingAnalysis:
    """Arrival-time STA engine.

    Args:
        library: technology library supplying per-cell delays; defaults to the
            synthetic SKY130 library.
    """

    def __init__(self, library: TechLibrary | None = None) -> None:
        self.library = library or sky130_library()

    def gate_delay(self, kind: GateKind) -> float:
        """Propagation delay (ps) of a single gate of kind ``kind``."""
        cell = kind.cell_name
        if cell is None:
            return 0.0
        return self.library.delay(cell)

    def run(self, netlist: Netlist, endpoints: list[int] | None = None
            ) -> TimingResult:
        """Run STA on ``netlist``.

        Args:
            netlist: the netlist to analyse.
            endpoints: gate ids to treat as timing endpoints; defaults to the
                netlist's marked outputs, falling back to every gate.

        Returns:
            A :class:`TimingResult` with the worst endpoint arrival time and
            one critical path realising it.
        """
        arrival: dict[int, float] = {}
        predecessor: dict[int, int | None] = {}
        for gate_id in netlist.topological_order():
            gate = netlist.gate(gate_id)
            delay = self.gate_delay(gate.kind)
            if not gate.inputs:
                arrival[gate_id] = delay if not gate.kind.is_source else 0.0
                predecessor[gate_id] = None
                continue
            worst_input = max(gate.inputs, key=lambda i: arrival[i])
            arrival[gate_id] = arrival[worst_input] + delay
            predecessor[gate_id] = worst_input

        if endpoints is None:
            endpoints = netlist.outputs() or list(arrival)
        if not endpoints:
            return TimingResult(0.0, (), arrival, netlist.num_logic_gates())

        worst = max(endpoints, key=lambda e: arrival[e])
        path: list[int] = []
        cursor: int | None = worst
        while cursor is not None:
            path.append(cursor)
            cursor = predecessor[cursor]
        path.reverse()
        return TimingResult(
            critical_path_delay_ps=arrival[worst],
            critical_path=tuple(path),
            arrival_times=arrival,
            num_gates=netlist.num_logic_gates(),
        )

    def path_delay(self, netlist: Netlist, path: list[int]) -> float:
        """Sum of gate delays along an explicit path (sanity-check helper)."""
        return sum(self.gate_delay(netlist.gate(g).kind) for g in path)
