"""Logic optimisation passes over gate-level netlists.

This is the reproduction's stand-in for the optimisation work done by Yosys /
ABC between HLS and STA.  It implements the classic local passes whose effect
the paper's feedback loop is designed to capture:

* constant folding and Boolean identity rewrites;
* structural hashing (common-subexpression elimination);
* double-inverter and trivial-mux removal;
* delay-aware rebalancing of AND/OR/XOR trees (Huffman-style merge of the
  earliest-arriving leaves first);
* dead-gate elimination (only the cone of the primary outputs is kept).

The optimiser rebuilds a fresh netlist rather than mutating in place, which
keeps every pass simple and makes the before/after report trustworthy.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.netlist.gates import GateKind, GATE_FUNCTIONS
from repro.netlist.netlist import Netlist
from repro.netlist.sta import StaticTimingAnalysis
from repro.tech.library import TechLibrary
from repro.tech.sky130 import sky130_library

_COMMUTATIVE_GATES = {
    GateKind.AND2, GateKind.OR2, GateKind.NAND2, GateKind.NOR2,
    GateKind.XOR2, GateKind.XNOR2, GateKind.MAJ3,
}

_ASSOCIATIVE_GATES = {GateKind.AND2, GateKind.OR2, GateKind.XOR2}


@dataclass(frozen=True)
class OptimizationReport:
    """Summary of one optimisation run.

    Attributes:
        gates_before: logic-gate count of the input netlist.
        gates_after: logic-gate count of the optimised netlist.
        delay_before_ps: pre-optimisation critical-path delay.
        delay_after_ps: post-optimisation critical-path delay.
        passes: names of the passes that ran, in order.
    """

    gates_before: int
    gates_after: int
    delay_before_ps: float
    delay_after_ps: float
    passes: tuple[str, ...]

    @property
    def gate_reduction(self) -> float:
        """Fraction of logic gates removed (0.0 when nothing was removed)."""
        if self.gates_before == 0:
            return 0.0
        return 1.0 - self.gates_after / self.gates_before


class _Rebuilder:
    """Builds a new netlist applying local rewrites and structural hashing."""

    def __init__(self, name: str) -> None:
        self.netlist = Netlist(name)
        self._memo: dict[tuple, int] = {}
        self._const: dict[int, int] = {}
        self._kind_of: dict[int, GateKind] = {}
        self._inputs_of: dict[int, tuple[int, ...]] = {}

    # ----------------------------------------------------------------- plumbing

    def _record(self, gate_id: int, kind: GateKind, inputs: tuple[int, ...]) -> int:
        self._kind_of[gate_id] = kind
        self._inputs_of[gate_id] = inputs
        return gate_id

    def constant(self, value: int) -> int:
        value &= 1
        if value not in self._const:
            kind = GateKind.CONST1 if value else GateKind.CONST0
            gate_id = self.netlist.add_gate(kind, ())
            self._const[value] = self._record(gate_id, kind, ())
        return self._const[value]

    def add_input(self, name: str = "") -> int:
        gate_id = self.netlist.add_input(name)
        return self._record(gate_id, GateKind.INPUT, ())

    def constant_value(self, gate_id: int) -> int | None:
        kind = self._kind_of[gate_id]
        if kind is GateKind.CONST0:
            return 0
        if kind is GateKind.CONST1:
            return 1
        return None

    # ------------------------------------------------------------------- emit

    def emit(self, kind: GateKind, inputs: tuple[int, ...], name: str = "") -> int:
        """Emit a gate, applying folding, identities and structural hashing."""
        if kind is GateKind.BUF:
            return inputs[0]

        constants = [self.constant_value(i) for i in inputs]
        if inputs and all(c is not None for c in constants):
            return self.constant(GATE_FUNCTIONS[kind](tuple(constants)))

        simplified = self._simplify(kind, inputs, constants)
        if simplified is not None:
            return simplified

        if kind in _COMMUTATIVE_GATES:
            inputs = tuple(sorted(inputs))
        key = (kind, inputs)
        if key in self._memo:
            return self._memo[key]
        gate_id = self.netlist.add_gate(kind, inputs, name)
        self._record(gate_id, kind, inputs)
        self._memo[key] = gate_id
        return gate_id

    def _simplify(self, kind: GateKind, inputs: tuple[int, ...],
                  constants: list[int | None]) -> int | None:
        """Boolean identity rewrites; returns an existing gate id or None."""
        if kind is GateKind.INV:
            inner = inputs[0]
            if self._kind_of[inner] is GateKind.INV:
                return self._inputs_of[inner][0]
            return None

        if kind in (GateKind.AND2, GateKind.OR2, GateKind.XOR2, GateKind.XNOR2,
                    GateKind.NAND2, GateKind.NOR2):
            a, b = inputs
            ca, cb = constants
            if a == b:
                if kind is GateKind.AND2 or kind is GateKind.OR2:
                    return a
                if kind is GateKind.XOR2:
                    return self.constant(0)
                if kind is GateKind.XNOR2:
                    return self.constant(1)
                if kind is GateKind.NAND2 or kind is GateKind.NOR2:
                    return self.emit(GateKind.INV, (a,))
            # Put the constant (if any) in position b.
            if ca is not None and cb is None:
                a, b, ca, cb = b, a, cb, ca
            if cb is not None:
                if kind is GateKind.AND2:
                    return a if cb == 1 else self.constant(0)
                if kind is GateKind.OR2:
                    return a if cb == 0 else self.constant(1)
                if kind is GateKind.XOR2:
                    return a if cb == 0 else self.emit(GateKind.INV, (a,))
                if kind is GateKind.XNOR2:
                    return a if cb == 1 else self.emit(GateKind.INV, (a,))
                if kind is GateKind.NAND2:
                    return self.emit(GateKind.INV, (a,)) if cb == 1 else self.constant(1)
                if kind is GateKind.NOR2:
                    return self.emit(GateKind.INV, (a,)) if cb == 0 else self.constant(0)
            return None

        if kind is GateKind.ANDN2:
            a, b = inputs
            ca, cb = constants
            if a == b:
                return self.constant(0)
            if cb == 0:
                return a
            if cb == 1 or ca == 0:
                return self.constant(0)
            if ca == 1:
                return self.emit(GateKind.INV, (b,))
            return None

        if kind is GateKind.MUX2:
            select, on_true, on_false = inputs
            c_select = constants[0]
            if c_select is not None:
                return on_true if c_select == 1 else on_false
            if on_true == on_false:
                return on_true
            true_const = self.constant_value(on_true)
            false_const = self.constant_value(on_false)
            if true_const == 1 and false_const == 0:
                return select
            if true_const == 0 and false_const == 1:
                return self.emit(GateKind.INV, (select,))
            return None

        if kind is GateKind.MAJ3:
            a, b, c = inputs
            if a == b:
                return a
            if a == c:
                return a
            if b == c:
                return b
            const_positions = [i for i, value in enumerate(constants) if value is not None]
            if const_positions:
                index = const_positions[0]
                others = tuple(inputs[i] for i in range(3) if i != index)
                if constants[index] == 1:
                    return self.emit(GateKind.OR2, others)
                return self.emit(GateKind.AND2, others)
            return None

        return None


def _copy_into(source: Netlist, builder: _Rebuilder) -> dict[int, int]:
    """Copy ``source`` into ``builder`` gate by gate, returning the id map."""
    mapping: dict[int, int] = {}
    for gate_id in source.topological_order():
        gate = source.gate(gate_id)
        if gate.kind is GateKind.INPUT:
            mapping[gate_id] = builder.add_input(gate.name)
        elif gate.kind in (GateKind.CONST0, GateKind.CONST1):
            mapping[gate_id] = builder.constant(1 if gate.kind is GateKind.CONST1 else 0)
        else:
            new_inputs = tuple(mapping[i] for i in gate.inputs)
            mapping[gate_id] = builder.emit(gate.kind, new_inputs, gate.name)
    return mapping


class LogicOptimizer:
    """Runs the optimisation pipeline on a netlist.

    Args:
        library: technology library used for the delay-aware balancing pass
            and the before/after timing report.
        balance: whether to run the tree-balancing pass.
    """

    def __init__(self, library: TechLibrary | None = None, balance: bool = True) -> None:
        self.library = library or sky130_library()
        self.balance = balance
        self._sta = StaticTimingAnalysis(self.library)

    # ------------------------------------------------------------------ passes

    def _strash_pass(self, netlist: Netlist) -> Netlist:
        """Constant folding + identity rewrites + structural hashing + DCE."""
        builder = _Rebuilder(netlist.name)
        mapping = _copy_into(netlist, builder)
        for output in netlist.outputs():
            builder.netlist.mark_output(mapping[output])
        return self._prune(builder.netlist)

    def _balance_pass(self, netlist: Netlist) -> Netlist:
        """Rebalance AND/OR/XOR trees using arrival times."""
        timing = self._sta.run(netlist, endpoints=netlist.gate_ids())
        fanout_count = {gid: len(netlist.fanout(gid)) for gid in netlist.gate_ids()}

        builder = _Rebuilder(netlist.name)
        mapping: dict[int, int] = {}

        def collect_leaves(root_id: int, kind: GateKind) -> list[int]:
            """Leaves of the maximal single-fanout same-kind tree under root."""
            leaves: list[int] = []
            stack = list(netlist.gate(root_id).inputs)
            while stack:
                current = stack.pop()
                gate = netlist.gate(current)
                if gate.kind is kind and fanout_count[current] == 1:
                    stack.extend(gate.inputs)
                else:
                    leaves.append(current)
            return leaves

        for gate_id in netlist.topological_order():
            gate = netlist.gate(gate_id)
            if gate.kind is GateKind.INPUT:
                mapping[gate_id] = builder.add_input(gate.name)
                continue
            if gate.kind in (GateKind.CONST0, GateKind.CONST1):
                mapping[gate_id] = builder.constant(
                    1 if gate.kind is GateKind.CONST1 else 0)
                continue
            if gate.kind in _ASSOCIATIVE_GATES:
                leaves = collect_leaves(gate_id, gate.kind)
                if len(leaves) > 2:
                    mapping[gate_id] = self._build_balanced(
                        builder, gate.kind, leaves, mapping, timing.arrival_times)
                    continue
            new_inputs = tuple(mapping[i] for i in gate.inputs)
            mapping[gate_id] = builder.emit(gate.kind, new_inputs, gate.name)

        for output in netlist.outputs():
            builder.netlist.mark_output(mapping[output])
        return self._prune(builder.netlist)

    def _build_balanced(self, builder: _Rebuilder, kind: GateKind,
                        leaves: list[int], mapping: dict[int, int],
                        arrival: dict[int, float]) -> int:
        """Merge leaves pairwise, earliest arrival first (Huffman style)."""
        delay = self._sta.gate_delay(kind)
        heap: list[tuple[float, int, int]] = []
        for index, leaf in enumerate(leaves):
            heapq.heappush(heap, (arrival.get(leaf, 0.0), index, mapping[leaf]))
        counter = len(leaves)
        while len(heap) > 1:
            time_a, _, gate_a = heapq.heappop(heap)
            time_b, _, gate_b = heapq.heappop(heap)
            merged = builder.emit(kind, (gate_a, gate_b))
            heapq.heappush(heap, (max(time_a, time_b) + delay, counter, merged))
            counter += 1
        return heap[0][2]

    def _prune(self, netlist: Netlist) -> Netlist:
        """Remove gates not in the transitive fan-in of any output."""
        outputs = netlist.outputs()
        if not outputs:
            return netlist
        keep: set[int] = set()
        stack = list(outputs)
        while stack:
            current = stack.pop()
            if current in keep:
                continue
            keep.add(current)
            stack.extend(netlist.gate(current).inputs)
        # Keep primary inputs even if dead so interfaces stay stable.
        keep.update(netlist.inputs())

        pruned = Netlist(netlist.name)
        mapping: dict[int, int] = {}
        for gate_id in netlist.topological_order():
            if gate_id not in keep:
                continue
            gate = netlist.gate(gate_id)
            mapping[gate_id] = pruned.add_gate(
                gate.kind, tuple(mapping[i] for i in gate.inputs), gate.name)
        for output in outputs:
            pruned.mark_output(mapping[output])
        return pruned

    # -------------------------------------------------------------------- run

    def optimize(self, netlist: Netlist) -> tuple[Netlist, OptimizationReport]:
        """Run the full pipeline and return (optimised netlist, report)."""
        before_timing = self._sta.run(netlist)
        passes: list[str] = []

        current = self._strash_pass(netlist)
        passes.append("strash")
        if self.balance:
            current = self._balance_pass(current)
            passes.append("balance")
            current = self._strash_pass(current)
            passes.append("strash")

        after_timing = self._sta.run(current)
        report = OptimizationReport(
            gates_before=netlist.num_logic_gates(),
            gates_after=current.num_logic_gates(),
            delay_before_ps=before_timing.critical_path_delay_ps,
            delay_after_ps=after_timing.critical_path_delay_ps,
            passes=tuple(passes),
        )
        return current, report
