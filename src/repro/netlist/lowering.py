"""Lowering of word-level IR operations to gate-level netlists.

The lowering chooses straightforward, well-known micro-architectures:

* additions/subtractions: ripple-carry chains (MAJ3 carry, XOR2 sum);
* multiplications: AND partial products accumulated with ripple-carry rows;
* variable shifts/rotates: logarithmic barrel shifters (MUX2 stages);
* constant shifts, slices, extensions, concatenations: pure wiring;
* comparisons: borrow chains;
* multi-operand logic and reductions: *linear* gate chains -- deliberately
  left unbalanced so the logic optimiser has realistic restructuring work,
  exactly the kind of inter-operation optimisation the paper's feedback loop
  is designed to observe.

Bit vectors are represented as Python lists of gate ids, least-significant
bit first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.ir.graph import DataflowGraph
from repro.ir.node import Node
from repro.ir.ops import OpKind
from repro.netlist.gates import GateKind
from repro.netlist.netlist import Netlist

Bits = list[int]


@dataclass
class LoweringResult:
    """Outcome of lowering a (sub)graph.

    Attributes:
        netlist: the generated gate-level netlist.
        input_bits: for every IR node treated as a boundary input of the
            lowered region, the primary-input gate ids of its bits.
        node_bits: for every lowered IR node, the gate ids of its result bits.
        output_bits: bits of the IR nodes marked as netlist outputs.
    """

    netlist: Netlist
    input_bits: dict[int, Bits] = field(default_factory=dict)
    node_bits: dict[int, Bits] = field(default_factory=dict)
    output_bits: dict[int, Bits] = field(default_factory=dict)


class _Lowerer:
    """Stateful helper performing one lowering run."""

    def __init__(self, graph: DataflowGraph, name: str) -> None:
        self.graph = graph
        self.netlist = Netlist(name)
        self.bits: dict[int, Bits] = {}
        self.input_bits: dict[int, Bits] = {}
        self._const0: int | None = None
        self._const1: int | None = None

    # --------------------------------------------------------------- helpers

    def const_bit(self, value: int) -> int:
        """Shared tie-0 / tie-1 gate."""
        if value:
            if self._const1 is None:
                self._const1 = self.netlist.add_constant(1, "tie1")
            return self._const1
        if self._const0 is None:
            self._const0 = self.netlist.add_constant(0, "tie0")
        return self._const0

    def gate(self, kind: GateKind, *inputs: int) -> int:
        return self.netlist.add_gate(kind, inputs)

    def zext(self, bits: Bits, width: int) -> Bits:
        """Zero-extend (or truncate) ``bits`` to ``width``."""
        if len(bits) >= width:
            return bits[:width]
        return bits + [self.const_bit(0)] * (width - len(bits))

    def sext(self, bits: Bits, width: int) -> Bits:
        """Sign-extend (or truncate) ``bits`` to ``width``."""
        if len(bits) >= width:
            return bits[:width]
        sign = bits[-1] if bits else self.const_bit(0)
        return bits + [sign] * (width - len(bits))

    # ----------------------------------------------------------- arithmetic

    def full_adder(self, a: int, b: int, carry_in: int) -> tuple[int, int]:
        """Return (sum, carry_out) of a full adder."""
        axb = self.gate(GateKind.XOR2, a, b)
        total = self.gate(GateKind.XOR2, axb, carry_in)
        carry = self.gate(GateKind.MAJ3, a, b, carry_in)
        return total, carry

    def ripple_add(self, a: Bits, b: Bits, carry_in: int | None = None,
                   width: int | None = None) -> tuple[Bits, int]:
        """Ripple-carry addition; returns (sum bits, carry out)."""
        width = width or max(len(a), len(b))
        a = self.zext(a, width)
        b = self.zext(b, width)
        carry = carry_in if carry_in is not None else self.const_bit(0)
        result: Bits = []
        for bit_a, bit_b in zip(a, b):
            total, carry = self.full_adder(bit_a, bit_b, carry)
            result.append(total)
        return result, carry

    def ripple_sub(self, a: Bits, b: Bits, width: int | None = None
                   ) -> tuple[Bits, int]:
        """a - b via two's complement; returns (difference, carry out).

        A carry out of 1 means no borrow occurred (a >= b, unsigned).
        """
        width = width or max(len(a), len(b))
        a = self.zext(a, width)
        b = self.zext(b, width)
        inverted = [self.gate(GateKind.INV, bit) for bit in b]
        return self.ripple_add(a, inverted, carry_in=self.const_bit(1), width=width)

    def multiply(self, a: Bits, b: Bits, width: int) -> Bits:
        """Shift-and-add array multiplier truncated to ``width`` bits."""
        accumulator = [self.const_bit(0)] * width
        for shift, b_bit in enumerate(b):
            if shift >= width:
                break
            partial = [self.const_bit(0)] * shift
            for a_bit in a[:width - shift]:
                partial.append(self.gate(GateKind.AND2, a_bit, b_bit))
            partial = self.zext(partial, width)
            accumulator, _ = self.ripple_add(accumulator, partial, width=width)
        return accumulator

    def divide(self, dividend: Bits, divisor: Bits, width: int
               ) -> tuple[Bits, Bits]:
        """Restoring array division; returns (quotient, remainder)."""
        remainder: Bits = [self.const_bit(0)] * width
        quotient: Bits = [self.const_bit(0)] * width
        divisor = self.zext(divisor, width)
        for index in range(width - 1, -1, -1):
            shifted = [dividend[index]] + remainder[:-1]
            difference, no_borrow = self.ripple_sub(shifted, divisor, width=width)
            remainder = [self.gate(GateKind.MUX2, no_borrow, diff, keep)
                         for diff, keep in zip(difference, shifted)]
            quotient[index] = no_borrow
        return quotient, remainder

    # --------------------------------------------------------------- shifts

    def barrel_shift(self, value: Bits, amount: Bits, kind: OpKind,
                     width: int) -> Bits:
        """Logarithmic barrel shifter for variable shift amounts."""
        current = self.zext(value, width)
        sign = value[-1] if value else self.const_bit(0)
        max_stage = max(1, (width - 1).bit_length())
        for stage, amount_bit in enumerate(amount[:max_stage]):
            offset = 1 << stage
            shifted: Bits = []
            for i in range(width):
                if kind is OpKind.SHL:
                    src = current[i - offset] if i - offset >= 0 else self.const_bit(0)
                elif kind is OpKind.SHRL:
                    src = current[i + offset] if i + offset < width else self.const_bit(0)
                elif kind is OpKind.SHRA:
                    src = current[i + offset] if i + offset < width else sign
                elif kind is OpKind.ROTL:
                    src = current[(i - offset) % width]
                else:  # ROTR
                    src = current[(i + offset) % width]
                shifted.append(src)
            current = [self.gate(GateKind.MUX2, amount_bit, s, c)
                       for s, c in zip(shifted, current)]
        return current

    def constant_shift(self, value: Bits, amount: int, kind: OpKind,
                       width: int) -> Bits:
        """Shift/rotate by a compile-time constant (pure wiring)."""
        current = self.zext(value, width)
        sign = value[-1] if value else self.const_bit(0)
        amount = amount % width if kind in (OpKind.ROTL, OpKind.ROTR) else min(amount, width)
        result: Bits = []
        for i in range(width):
            if kind is OpKind.SHL:
                result.append(current[i - amount] if i - amount >= 0 else self.const_bit(0))
            elif kind is OpKind.SHRL:
                result.append(current[i + amount] if i + amount < width else self.const_bit(0))
            elif kind is OpKind.SHRA:
                result.append(current[i + amount] if i + amount < width else sign)
            elif kind is OpKind.ROTL:
                result.append(current[(i - amount) % width])
            else:  # ROTR
                result.append(current[(i + amount) % width])
        return result

    # ---------------------------------------------------------- comparisons

    def reduce_chain(self, kind: GateKind, bits: Bits) -> int:
        """Linear reduction chain (left for the optimiser to balance)."""
        if not bits:
            return self.const_bit(0)
        result = bits[0]
        for bit in bits[1:]:
            result = self.gate(kind, result, bit)
        return result

    def equality(self, a: Bits, b: Bits, negate: bool) -> int:
        width = max(len(a), len(b))
        a = self.zext(a, width)
        b = self.zext(b, width)
        diffs = [self.gate(GateKind.XOR2, x, y) for x, y in zip(a, b)]
        any_diff = self.reduce_chain(GateKind.OR2, diffs)
        return any_diff if negate else self.gate(GateKind.INV, any_diff)

    def unsigned_less(self, a: Bits, b: Bits) -> int:
        """a < b (unsigned): borrow out of a - b."""
        _, no_borrow = self.ripple_sub(a, b, width=max(len(a), len(b)))
        return self.gate(GateKind.INV, no_borrow)

    def signed_less(self, a: Bits, b: Bits) -> int:
        """a < b (signed): flip the sign bits and compare unsigned."""
        width = max(len(a), len(b))
        a = self.sext(a, width)
        b = self.sext(b, width)
        a_flipped = a[:-1] + [self.gate(GateKind.INV, a[-1])]
        b_flipped = b[:-1] + [self.gate(GateKind.INV, b[-1])]
        return self.unsigned_less(a_flipped, b_flipped)

    # --------------------------------------------------------- node dispatch

    def lower_node(self, node: Node) -> Bits:
        """Lower one IR node given its operands are already lowered."""
        kind = node.kind
        width = node.width
        operands = [self.bits[o] for o in node.operands]

        if kind is OpKind.CONSTANT:
            value = int(node.attrs["value"])
            return [self.const_bit((value >> i) & 1) for i in range(width)]
        # PHI lowers combinationally as a wire from its init operand -- the
        # loop-carried mux folds into the pipeline register, which the
        # (purely combinational) netlist does not model.
        if kind in (OpKind.OUTPUT, OpKind.IDENTITY, OpKind.PHI):
            return self.zext(operands[0], width)
        if kind is OpKind.ZERO_EXT:
            return self.zext(operands[0], width)
        if kind is OpKind.SIGN_EXT:
            return self.sext(operands[0], width)
        if kind is OpKind.BIT_SLICE:
            start = int(node.attrs.get("start", 0))
            return self.zext(operands[0][start:start + width], width)
        if kind is OpKind.CONCAT:
            bits: Bits = []
            for operand_bits in reversed(operands):
                bits.extend(operand_bits)
            return self.zext(bits, width)

        if kind is OpKind.ADD:
            result, _ = self.ripple_add(operands[0], operands[1], width=width)
            return result
        if kind is OpKind.SUB:
            result, _ = self.ripple_sub(operands[0], operands[1], width=width)
            return result
        if kind is OpKind.NEG:
            zero = [self.const_bit(0)] * width
            result, _ = self.ripple_sub(zero, operands[0], width=width)
            return result
        if kind is OpKind.MUL:
            return self.multiply(self.zext(operands[0], width),
                                 self.zext(operands[1], width), width)
        if kind is OpKind.MULADD:
            product = self.multiply(self.zext(operands[0], width),
                                    self.zext(operands[1], width), width)
            result, _ = self.ripple_add(product, operands[2], width=width)
            return result
        if kind is OpKind.UDIV:
            quotient, _ = self.divide(self.zext(operands[0], width),
                                      operands[1], width)
            return quotient
        if kind is OpKind.UMOD:
            _, remainder = self.divide(self.zext(operands[0], width),
                                       operands[1], width)
            return remainder

        if kind in (OpKind.AND, OpKind.OR, OpKind.XOR):
            gate_kind = {OpKind.AND: GateKind.AND2, OpKind.OR: GateKind.OR2,
                         OpKind.XOR: GateKind.XOR2}[kind]
            extended = [self.zext(bits, width) for bits in operands]
            result = extended[0]
            for other in extended[1:]:
                result = [self.gate(gate_kind, a, b) for a, b in zip(result, other)]
            return result
        if kind is OpKind.NOT:
            return [self.gate(GateKind.INV, bit) for bit in self.zext(operands[0], width)]
        if kind is OpKind.ANDN:
            a = self.zext(operands[0], width)
            b = self.zext(operands[1], width)
            return [self.gate(GateKind.ANDN2, x, y) for x, y in zip(a, b)]

        if kind is OpKind.AND_REDUCE:
            return [self.reduce_chain(GateKind.AND2, operands[0])]
        if kind is OpKind.OR_REDUCE:
            return [self.reduce_chain(GateKind.OR2, operands[0])]
        if kind is OpKind.XOR_REDUCE:
            return [self.reduce_chain(GateKind.XOR2, operands[0])]

        if kind in (OpKind.SHL, OpKind.SHRL, OpKind.SHRA, OpKind.ROTL, OpKind.ROTR):
            amount_node = self.graph.node(node.operands[1])
            if amount_node.kind is OpKind.CONSTANT:
                amount = int(amount_node.attrs["value"])
                return self.constant_shift(operands[0], amount, kind, width)
            return self.barrel_shift(operands[0], operands[1], kind, width)

        if kind is OpKind.EQ:
            return [self.equality(operands[0], operands[1], negate=False)]
        if kind is OpKind.NE:
            return [self.equality(operands[0], operands[1], negate=True)]
        if kind is OpKind.ULT:
            return [self.unsigned_less(operands[0], operands[1])]
        if kind is OpKind.UGT:
            return [self.unsigned_less(operands[1], operands[0])]
        if kind is OpKind.ULE:
            greater = self.unsigned_less(operands[1], operands[0])
            return [self.gate(GateKind.INV, greater)]
        if kind is OpKind.UGE:
            less = self.unsigned_less(operands[0], operands[1])
            return [self.gate(GateKind.INV, less)]
        if kind is OpKind.SLT:
            return [self.signed_less(operands[0], operands[1])]
        if kind is OpKind.SGT:
            return [self.signed_less(operands[1], operands[0])]

        if kind is OpKind.SEL:
            condition = operands[0][0]
            on_true = self.zext(operands[1], width)
            on_false = self.zext(operands[2], width)
            return [self.gate(GateKind.MUX2, condition, t, f)
                    for t, f in zip(on_true, on_false)]

        if kind is OpKind.CLZ:
            return self.lower_clz(operands[0], width)
        if kind is OpKind.POPCOUNT:
            return self.lower_popcount(operands[0], width)

        raise NotImplementedError(f"no lowering for opcode {kind.value}")

    def lower_clz(self, value: Bits, width: int) -> Bits:
        """Count leading zeros with a sequential found/count chain."""
        count = [self.const_bit(0)] * width
        found = self.const_bit(0)
        one = self.zext([self.const_bit(1)], width)
        for bit in reversed(value):
            not_found = self.gate(GateKind.INV, found)
            is_zero = self.gate(GateKind.INV, bit)
            increment_bit = self.gate(GateKind.AND2, not_found, is_zero)
            increment = [self.gate(GateKind.AND2, increment_bit, o) for o in one]
            count, _ = self.ripple_add(count, increment, width=width)
            found = self.gate(GateKind.OR2, found, bit)
        return count

    def lower_popcount(self, value: Bits, width: int) -> Bits:
        """Population count via a balanced adder tree over single bits."""
        terms: list[Bits] = [[bit] for bit in value]
        while len(terms) > 1:
            merged: list[Bits] = []
            for i in range(0, len(terms) - 1, 2):
                target = min(width, max(len(terms[i]), len(terms[i + 1])) + 1)
                total, carry = self.ripple_add(terms[i], terms[i + 1],
                                               width=target - 1 if target > 1 else 1)
                if len(total) < width:
                    total = total + [carry]
                merged.append(total)
            if len(terms) % 2:
                merged.append(terms[-1])
            terms = merged
        return self.zext(terms[0], width)


def _boundary_inputs(graph: DataflowGraph, node_ids: set[int]) -> list[int]:
    """IR nodes outside ``node_ids`` that feed nodes inside it.

    External constants are excluded -- they are lowered as constants so that,
    e.g., constant shift amounts keep synthesising to wiring inside extracted
    subgraphs.
    """
    externals: list[int] = []
    seen: set[int] = set()
    for node_id in sorted(node_ids):
        for operand in graph.operands_of(node_id):
            if operand in node_ids or operand in seen:
                continue
            seen.add(operand)
            if graph.node(operand).kind is not OpKind.CONSTANT:
                externals.append(operand)
    return externals


def lower_subgraph(graph: DataflowGraph, node_ids: Iterable[int],
                   name: str = "", outputs: Sequence[int] | None = None
                   ) -> LoweringResult:
    """Lower the induced subgraph over ``node_ids`` to a gate-level netlist.

    Operands produced outside the subgraph become primary inputs (except
    constants, which are materialised).  By default every subgraph node whose
    result is used outside the subgraph -- or not used at all -- is marked as
    a primary output; pass ``outputs`` to override.

    Args:
        graph: the containing dataflow graph.
        node_ids: ids of the IR nodes to lower.
        name: netlist name (defaults to ``<graph>_sub``).
        outputs: explicit output node ids.

    Returns:
        A :class:`LoweringResult`.
    """
    wanted = set(node_ids)
    lowerer = _Lowerer(graph, name or f"{graph.name}_sub")

    for external in _boundary_inputs(graph, wanted):
        node = graph.node(external)
        bits = [lowerer.netlist.add_input(f"{node.name}[{i}]")
                for i in range(node.width)]
        lowerer.bits[external] = bits
        lowerer.input_bits[external] = bits

    # External constants feeding the subgraph.
    for node_id in sorted(wanted):
        for operand in graph.operands_of(node_id):
            if operand in wanted or operand in lowerer.bits:
                continue
            constant = graph.node(operand)
            value = int(constant.attrs["value"])
            lowerer.bits[operand] = [lowerer.const_bit((value >> i) & 1)
                                     for i in range(constant.width)]

    from repro.ir.analysis import topological_order

    order = [nid for nid in topological_order(graph) if nid in wanted]
    for node_id in order:
        node = graph.node(node_id)
        if node.kind is OpKind.PARAM:
            bits = [lowerer.netlist.add_input(f"{node.name}[{i}]")
                    for i in range(node.width)]
            lowerer.bits[node_id] = bits
            lowerer.input_bits[node_id] = bits
            continue
        lowerer.bits[node_id] = lowerer.lower_node(node)

    if outputs is None:
        outputs = [nid for nid in sorted(wanted)
                   if not graph.node(nid).is_source
                   and (not graph.users_of(nid)
                        or any(user not in wanted for user in graph.users_of(nid)))]

    output_bits: dict[int, Bits] = {}
    for node_id in outputs:
        bits = lowerer.bits[node_id]
        output_bits[node_id] = bits
        for bit in bits:
            lowerer.netlist.mark_output(bit)

    node_bits = {nid: lowerer.bits[nid] for nid in wanted if nid in lowerer.bits}
    return LoweringResult(netlist=lowerer.netlist, input_bits=lowerer.input_bits,
                          node_bits=node_bits, output_bits=output_bits)


def lower_graph(graph: DataflowGraph, name: str = "") -> LoweringResult:
    """Lower an entire dataflow graph to a gate-level netlist."""
    return lower_subgraph(graph, graph.node_ids(), name or graph.name)
