"""The DSE warm-start engine: cross-clock-point ``ScheduleProblem`` reuse.

A clock-period search probes the *same* design at many periods.  Everything
expensive about one probe except the LP solve itself -- building the graph,
characterising per-node delays, the all-pairs critical-path matrix, the
register weights and users map, the constraint system, the assembled LP --
depends only on the design, or changes between periods in a tightly
structured way.  The :class:`ProblemCache` exploits both levels:

* a :class:`DesignContext` is built once per design and shared by every
  probe (graph, delays, matrix, structural fingerprint);
* the solved :class:`~repro.sdc.problem.ScheduleProblem` of each feasible
  probe is retained, and a new probe warm-starts by cloning the problem of
  the *nearest* previously-solved period and rebasing it to the new budget
  (:meth:`~repro.sdc.problem.ScheduleProblem.rebase_timing` -- only bounds
  whose ``ceil(delay / budget)`` bucket changed are patched, falling back
  to a full constraint rebuild when the constrained-pair set moved);
* repeated probes of a structurally identical design at the same period
  are memoized on the design's subgraph fingerprint and cost nothing.

Warm-started probes are byte-identical to cold ones: the rebased LP arrays
equal a from-scratch build's (see :meth:`ScheduleProblem.rebase_timing`)
and both paths run the one shared :func:`~repro.sdc.solver.solve_problem`.
The parity suite under ``tests/dse/`` enforces this on every probe.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Mapping

import numpy as np

from repro.designs.generator import case_from_name
from repro.ir.graph import DataflowGraph
from repro.sdc.delays import NOT_CONNECTED, critical_path_matrix, node_delays
from repro.sdc.loops import min_feasible_ii
from repro.sdc.pipeline import count_pipeline_registers
from repro.sdc.problem import ScheduleProblem
from repro.sdc.scheduler import Schedule
from repro.sdc.solver import SdcInfeasibleError, solve_problem
from repro.synth.fingerprint import subgraph_fingerprint
from repro.tech.delay_model import OperatorModel
from repro.tech.sky130 import sky130_library


@dataclass(frozen=True)
class DesignContext:
    """Everything probe evaluation needs about one design, built once.

    Attributes:
        name: registry (or ``gen:``) design name.
        graph: the built dataflow graph.
        delays: isolated per-node delays (closed-form operator model).
        matrix: all-pairs critical-path delay matrix; *identical across
            clock periods*, which is what makes rebasing sound.
        index_of: node id -> matrix row/column.
        worst_delay_ps: largest single-operation delay; any budget below it
            is infeasible without touching the LP.
        register_overhead_ps: sequential overhead subtracted from the clock
            period to obtain the combinational stage budget.
        default_clock_ps: the design's registry clock period (search start).
        fingerprint: structural fingerprint of the whole graph -- the
            memoization key component that makes probe results reusable
            across structurally identical builds.
        sorted_offdiag: every off-diagonal delay-matrix entry, sorted --
            the lookup table behind :meth:`pair_rank`.
    """

    name: str
    graph: DataflowGraph
    delays: dict[int, float] = field(repr=False)
    matrix: np.ndarray = field(repr=False)
    index_of: dict[int, int] = field(repr=False)
    worst_delay_ps: float
    register_overhead_ps: float
    default_clock_ps: float
    fingerprint: str
    sorted_offdiag: np.ndarray = field(repr=False)

    @property
    def lower_bound_ps(self) -> float:
        """Analytic minimum feasible clock period (worst delay + overhead)."""
        return self.worst_delay_ps + self.register_overhead_ps

    def pair_rank(self, budget_ps: float) -> int:
        """How many off-diagonal pairs carry a timing constraint at a budget.

        The constrained-pair set ``matrix > budget`` is *nested* in the
        budget (shrinking the budget only adds pairs), so two budgets have
        the same pair set exactly when they have the same rank.  A donor
        problem with the target's rank can always be rebased by bound
        patching alone; one with a different rank never can.
        """
        position = int(np.searchsorted(self.sorted_offdiag, budget_ps,
                                       side="right"))
        return len(self.sorted_offdiag) - position


def build_context(name: str) -> DesignContext:
    """Build the per-design probe context (graph, delays, matrix, fingerprint)."""
    case = case_from_name(name)
    graph = case.build()
    delays = node_delays(graph, OperatorModel())
    matrix, index_of = critical_path_matrix(graph, delays)
    fingerprint = subgraph_fingerprint(
        graph, [node.node_id for node in graph.nodes()])
    if graph.has_back_edges:
        # The forward-graph fingerprint is blind to back-edges; append their
        # signature so loop designs never collide with their DAG skeletons
        # in the probe memo.
        loops = ",".join(f"{e.src}>{e.phi}x{e.distance}"
                         for e in graph.back_edges())
        fingerprint = f"{fingerprint}|loops:{loops}"
    offdiag = np.asarray(matrix, dtype=float).copy()
    np.fill_diagonal(offdiag, NOT_CONNECTED)
    return DesignContext(
        name=name, graph=graph, delays=delays, matrix=matrix,
        index_of=index_of,
        worst_delay_ps=max(delays.values(), default=0.0),
        register_overhead_ps=sky130_library().register_delay_ps,
        default_clock_ps=case.clock_period_ps,
        fingerprint=fingerprint,
        sorted_offdiag=np.sort(offdiag.ravel()))


@dataclass(frozen=True)
class ProbeOutcome:
    """The result of scheduling one design at one clock period.

    The schedule-describing fields (``feasible``, ``num_stages``,
    ``num_registers``, ``stages``) are deterministic: warm and cold probes
    are byte-identical, so they do not depend on which cache served the
    probe.  The provenance fields (``warm_patched``, ``lp_rebuild``,
    ``memo_hit``, ``bound_patches``, ``solve_time_s``) describe how *this*
    evaluation was served and vary with worker/cache layout.

    Attributes:
        design: design name.
        clock_period_ps: probed clock period.
        feasible: whether a schedule exists at this period.
        reason: why not, when infeasible -- ``"budget"`` (the combinational
            budget is non-positive or below the worst single-op delay; no
            LP was touched) or ``"lp"`` (the LP itself was infeasible).
        num_stages: pipeline depth of the schedule (feasible probes only).
        num_registers: pipeline register bits (feasible probes only).
        ii: initiation interval of the schedule -- the minimum feasible II
            for loop designs, 1 for DAGs (feasible probes only; also set on
            the per-candidate probes of a min-II search trace, where it is
            the *probed* candidate).
        stages: the full node id -> stage schedule (feasible probes only).
        warm_patched: served by rebasing a cloned donor problem in place.
        solution_reuse: the rebase patched *zero* bounds -- the LP is
            byte-identical to the donor's solved state, so the donor's
            schedule was reused without an LP call (HiGHS is deterministic,
            so a cold solve would return exactly the same schedule).
        lp_rebuild: a full constraint/LP build was performed (cold probe,
            or a rebase whose pair set moved).
        memo_hit: served from the fingerprint memo without any solve.
        bound_patches: timing bounds patched during the rebase.
        solve_time_s: wall-clock seconds of this evaluation (0 for memo
            hits and budget rejections).
    """

    design: str
    clock_period_ps: float
    feasible: bool
    reason: str = ""
    num_stages: int | None = None
    num_registers: int | None = None
    ii: int | None = None
    stages: dict[int, int] | None = field(default=None, repr=False)
    warm_patched: bool = False
    solution_reuse: bool = False
    lp_rebuild: bool = False
    memo_hit: bool = False
    bound_patches: int = 0
    solve_time_s: float = 0.0

    def to_payload(self) -> dict:
        """Deterministic payload row (provenance and timing excluded)."""
        return {
            "clock_period_ps": self.clock_period_ps,
            "feasible": self.feasible,
            "reason": self.reason,
            "num_stages": self.num_stages,
            "num_registers": self.num_registers,
            "ii": self.ii,
        }


class ProblemCache:
    """Per-process warm-start state of a clock-period search.

    One cache holds, per design: the :class:`DesignContext`, every solved
    :class:`~repro.sdc.problem.ScheduleProblem` keyed by clock period, and
    a fingerprint-keyed memo of probe outcomes.  :meth:`probe` is the
    single evaluation entry point; the search driver keeps one cache per
    worker process so parallel batches warm-start independently (results
    are identical either way -- see the module docstring).

    Attributes:
        latency_weight: LP tie-breaking weight, part of the memo key.
        memo_hits: probes served from the fingerprint memo.
        warm_solves: probes served by clone + in-place rebase (including
            zero-patch rebases that reused the donor's solution outright).
        reused_solutions: the zero-patch subset of ``warm_solves`` -- no
            LP call at all.
        cold_solves: probes that built (or rebuilt) the full constraint
            system and LP.
        budget_skips: probes rejected analytically without any LP.
    """

    def __init__(self, latency_weight: float = 1e-3) -> None:
        self.latency_weight = float(latency_weight)
        self.memo_hits = 0
        self.warm_solves = 0
        self.reused_solutions = 0
        self.cold_solves = 0
        self.budget_skips = 0
        self._contexts: dict[str, DesignContext] = {}
        self._solved: dict[str, dict[float, tuple[ScheduleProblem,
                                                  dict[int, int], int]]] = {}
        self._memo: dict[tuple, ProbeOutcome] = {}

    def context(self, design: str) -> DesignContext:
        """The design's probe context (built on first use, then cached)."""
        context = self._contexts.get(design)
        if context is None:
            context = build_context(design)
            self._contexts[design] = context
        return context

    def _nearest_solved(self, design: str, clock_period_ps: float,
                        pair_rank: int | None = None
                        ) -> tuple[ScheduleProblem, dict[int, int], int] | None:
        """Solved (problem, schedule, rank) of the best donor period.

        Donors sharing the target's pair rank are preferred (their rebase
        is guaranteed to succeed as a pure bound patch); among candidates
        the nearest period wins, smaller period breaking ties.
        """
        solved = self._solved.get(design)
        if not solved:
            return None
        candidates = solved
        if pair_rank is not None:
            same_rank = {period: entry for period, entry in solved.items()
                         if entry[2] == pair_rank}
            if same_rank:
                candidates = same_rank
        donor_period = min(candidates,
                           key=lambda p: (abs(p - clock_period_ps), p))
        return candidates[donor_period]

    def probe(self, design: str, clock_period_ps: float) -> ProbeOutcome:
        """Schedule ``design`` at ``clock_period_ps``, as warmly as possible.

        The fast paths, in order: fingerprint memo (free), analytic budget
        rejection (free), clone-and-rebase from the nearest solved period
        (bound patches only), full cold build.  All solving paths go
        through the shared :func:`~repro.sdc.solver.solve_problem`, so the
        returned schedule never depends on which path served the probe.
        """
        context = self.context(design)
        period = float(clock_period_ps)
        key = (context.fingerprint, context.register_overhead_ps,
               self.latency_weight, period)
        hit = self._memo.get(key)
        if hit is not None:
            self.memo_hits += 1
            return replace(hit, memo_hit=True, warm_patched=False,
                           solution_reuse=False, lp_rebuild=False,
                           bound_patches=0, solve_time_s=0.0)

        budget = period - context.register_overhead_ps
        if budget <= 0.0 or context.worst_delay_ps > budget:
            self.budget_skips += 1
            outcome = ProbeOutcome(design=design, clock_period_ps=period,
                                   feasible=False, reason="budget")
            self._memo[key] = outcome
            return outcome

        start = time.perf_counter()
        rank = context.pair_rank(budget)
        donor = self._nearest_solved(design, period, pair_rank=rank)
        reused = False
        stages: dict[int, int] | None = None
        if donor is None:
            problem = ScheduleProblem(context.graph, context.matrix,
                                      context.index_of, budget,
                                      latency_weight=self.latency_weight)
            warm_patched = False
            patches = 0
            self.cold_solves += 1
        else:
            donor_problem, donor_stages, donor_rank = donor
            problem = donor_problem.clone()
            if donor_rank == rank:
                patches_before = problem.bound_patches
                warm_patched = problem.retarget(context.matrix,
                                                context.index_of, budget)
                patches = problem.bound_patches - patches_before
            else:
                # The pair sets provably differ (nested sets of different
                # cardinality): skip the doomed rebase attempt and rebuild
                # the cloned system directly, still reusing the donor's
                # register weights and users map.
                problem.timing_budget_ps = budget
                problem.rebuild(context.matrix, context.index_of)
                warm_patched = False
                patches = 0
            if warm_patched:
                self.warm_solves += 1
                if patches == 0:
                    # The rebase touched nothing: the clone's LP is
                    # byte-identical to the donor's solved state, and
                    # HiGHS is deterministic, so a fresh solve would
                    # return exactly the donor's schedule.
                    reused = True
                    stages = dict(donor_stages)
                    self.reused_solutions += 1
            else:
                self.cold_solves += 1

        if stages is None:
            try:
                if context.graph.has_back_edges:
                    # Loop design: a clock probe resolves the minimum
                    # feasible II at this period (in-place rebase_ii
                    # probes over the same problem).
                    _, stages = min_feasible_ii(problem)
                else:
                    stages = solve_problem(problem)
            except SdcInfeasibleError:
                outcome = ProbeOutcome(
                    design=design, clock_period_ps=period, feasible=False,
                    reason="lp", warm_patched=warm_patched,
                    lp_rebuild=not warm_patched, bound_patches=patches,
                    solve_time_s=time.perf_counter() - start)
                self._memo[key] = outcome
                return outcome

        schedule = Schedule(graph=context.graph, clock_period_ps=period,
                            stages=stages, ii=problem.ii)
        registers, _ = count_pipeline_registers(schedule)
        outcome = ProbeOutcome(
            design=design, clock_period_ps=period, feasible=True,
            num_stages=schedule.num_stages, num_registers=registers,
            ii=problem.ii, stages=dict(stages), warm_patched=warm_patched,
            solution_reuse=reused, lp_rebuild=not warm_patched,
            bound_patches=patches,
            solve_time_s=time.perf_counter() - start)
        self._solved.setdefault(design, {})[period] = (problem, dict(stages),
                                                       rank)
        self._memo[key] = outcome
        return outcome

    def min_ii_search(self, design: str, clock_period_ps: float | None = None
                      ) -> tuple[ProbeOutcome, list[ProbeOutcome]]:
        """Resolve a design's minimum feasible II, recording every II probe.

        The whole search runs over *one* :class:`ScheduleProblem` -- each II
        candidate is an in-place :meth:`~repro.sdc.problem.ScheduleProblem.rebase_ii`
        (loop bounds patched in the cached LP's right-hand side) plus one
        warm re-solve, the same cross-point reuse discipline the
        clock-period search applies along the clock axis.

        Args:
            design: design name (``loop:`` spec, ``.ir`` path, or any
                registry name -- DAGs trivially resolve to II 1).
            clock_period_ps: clock period to search at; the design's
                registry clock when omitted.

        Returns:
            ``(final, trace)`` -- the summary outcome at the minimum II,
            and one :class:`ProbeOutcome` per probed II candidate in probe
            order (``ii`` is the candidate, ``feasible`` its verdict).
        """
        context = self.context(design)
        period = float(clock_period_ps if clock_period_ps is not None
                       else context.default_clock_ps)
        budget = period - context.register_overhead_ps
        if budget <= 0.0 or context.worst_delay_ps > budget:
            self.budget_skips += 1
            return ProbeOutcome(design=design, clock_period_ps=period,
                                feasible=False, reason="budget"), []

        start = time.perf_counter()
        problem = ScheduleProblem(context.graph, context.matrix,
                                  context.index_of, budget,
                                  latency_weight=self.latency_weight)
        self.cold_solves += 1
        trace: list[ProbeOutcome] = []

        def record(ii: int, feasible: bool,
                   stages: dict[int, int] | None) -> None:
            num_stages = num_registers = None
            if feasible and stages is not None:
                probe_schedule = Schedule(graph=context.graph,
                                          clock_period_ps=period,
                                          stages=stages, ii=ii)
                num_stages = probe_schedule.num_stages
                num_registers, _ = count_pipeline_registers(probe_schedule)
            trace.append(ProbeOutcome(
                design=design, clock_period_ps=period, feasible=feasible,
                reason="" if feasible else "lp", num_stages=num_stages,
                num_registers=num_registers, ii=ii,
                stages=dict(stages) if stages is not None else None,
                warm_patched=ii > 1, bound_patches=problem.bound_patches))

        try:
            min_ii, stages = min_feasible_ii(problem, on_probe=record)
        except SdcInfeasibleError:
            return ProbeOutcome(
                design=design, clock_period_ps=period, feasible=False,
                reason="lp", lp_rebuild=True,
                solve_time_s=time.perf_counter() - start), trace

        schedule = Schedule(graph=context.graph, clock_period_ps=period,
                            stages=stages, ii=min_ii)
        registers, _ = count_pipeline_registers(schedule)
        final = ProbeOutcome(
            design=design, clock_period_ps=period, feasible=True,
            num_stages=schedule.num_stages, num_registers=registers,
            ii=min_ii, stages=dict(stages), lp_rebuild=True,
            bound_patches=problem.bound_patches,
            solve_time_s=time.perf_counter() - start)
        return final, trace

    def cold_probe(self, design: str, clock_period_ps: float,
                   matrix: np.ndarray | None = None,
                   index_of: Mapping[int, int] | None = None) -> ProbeOutcome:
        """A from-scratch reference probe bypassing every warm path.

        Used by the parity tests and the warm-vs-cold benchmark: builds a
        fresh :class:`~repro.sdc.problem.ScheduleProblem` (full constraint
        system, fresh LP) and solves it through the same
        :func:`~repro.sdc.solver.solve_problem`.  Nothing is cached.
        """
        context = self.context(design)
        period = float(clock_period_ps)
        budget = period - context.register_overhead_ps
        if budget <= 0.0 or context.worst_delay_ps > budget:
            return ProbeOutcome(design=design, clock_period_ps=period,
                                feasible=False, reason="budget")
        start = time.perf_counter()
        problem = ScheduleProblem(
            context.graph,
            context.matrix if matrix is None else matrix,
            context.index_of if index_of is None else index_of,
            budget, latency_weight=self.latency_weight)
        try:
            if context.graph.has_back_edges:
                _, stages = min_feasible_ii(problem)
            else:
                stages = solve_problem(problem)
        except SdcInfeasibleError:
            return ProbeOutcome(design=design, clock_period_ps=period,
                                feasible=False, reason="lp", lp_rebuild=True,
                                solve_time_s=time.perf_counter() - start)
        schedule = Schedule(graph=context.graph, clock_period_ps=period,
                            stages=stages, ii=problem.ii)
        registers, _ = count_pipeline_registers(schedule)
        return ProbeOutcome(
            design=design, clock_period_ps=period, feasible=True,
            num_stages=schedule.num_stages, num_registers=registers,
            ii=problem.ii, stages=dict(stages), lp_rebuild=True,
            solve_time_s=time.perf_counter() - start)
