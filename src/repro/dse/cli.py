"""The ``dse`` subcommand of :mod:`repro.experiments.runner`.

One entry point (:func:`dse_main`) drives :func:`repro.dse.search.run_dse`
over a comma-separated design list::

    python -m repro.experiments.runner dse --designs rrot,crc32 \\
        --mode minclock --jobs 4 --resolution-ps 10

``--mode minclock`` (the default) searches each design's minimum feasible
clock period by bracketing + batch-speculative bisection; ``--mode
pareto`` sweeps a period grid and reports the latency / register-count
front; ``--mode min-ii`` resolves each design's minimum feasible
initiation interval at its registry clock (meaningful for ``loop:`` /
``.ir`` pipelined-loop designs -- DAGs trivially report II 1).  ``--jobs N`` evaluates each batch of speculative probes over N
worker processes; ``--speculate`` fixes the batch width independently of
the worker count, making the probed period sequence (and the
deterministic part of the ``--json`` payload) identical across ``--jobs``
settings.  ``--json PATH`` writes the schema-7 machine-readable payload
(:mod:`repro.experiments.serialize`) that ``runner report`` can load.
``--store STORE.jsonl`` additionally appends every evaluated probe as a
``dse-probe`` record (plus the payload as a ``payload`` record) to a
unified artifact store -- probe keys are content-addressed over the
question asked (design, mode, period, stage bound), so re-running a
search supersedes its probes instead of duplicating them.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.dse.search import MODES, DseResult, run_dse
from repro.experiments.tables import format_table

#: Designs covered by ``--quick`` (small Table-I cases, seconds to search).
QUICK_DESIGNS = ("rrot", "crc32")


def format_dse(result: DseResult) -> str:
    """ASCII rendition of one :func:`run_dse` result."""
    if result.mode == "min-ii":
        return _format_min_ii(result)
    headers = ["Design", "Start (ps)", "Min clock (ps)", "Stages", "Regs",
               "Probes", "Converged", "Warm hits", "Time (s)"]
    rows = []
    for design in result.designs:
        name = design.design
        if len(name) > 40:
            name = name[:37] + "..."
        best = next((o for o in design.probes
                     if design.min_clock_ps is not None
                     and o.clock_period_ps == design.min_clock_ps), None)
        rows.append([
            name, f"{design.start_clock_ps:.0f}",
            f"{design.min_clock_ps:.1f}"
            if design.min_clock_ps is not None else "n/a",
            best.num_stages if best and best.num_stages is not None else "-",
            best.num_registers
            if best and best.num_registers is not None else "-",
            len(design.probes),
            "yes" if design.converged else "no",
            f"{design.stats.get('warm_hit_rate', 0.0):.0%}",
            f"{design.elapsed_s:.2f}",
        ])
    lines = [format_table(headers, rows)]
    if result.mode == "pareto":
        for design in result.designs:
            if not design.front:
                continue
            lines.append("")
            lines.append(f"{design.design}: Pareto front "
                         "(clock ps -> stages / registers)")
            lines.append(format_table(
                ["Clock (ps)", "Stages", "Registers"],
                [[f"{p.clock_period_ps:.1f}", p.num_stages, p.num_registers]
                 for p in design.front]))
    lines.append(f"dse {result.mode}: {len(result.designs)} designs in "
                 f"{result.elapsed_s:.2f}s "
                 f"(jobs {result.jobs}, speculate {result.speculate})")
    return "\n".join(lines)


def _format_min_ii(result: DseResult) -> str:
    """ASCII rendition of a minimum-II search result."""
    headers = ["Design", "Clock (ps)", "Min II", "Stages", "Regs",
               "II probes", "Feasible", "Time (s)"]
    rows = []
    for design in result.designs:
        name = design.design
        if len(name) > 40:
            name = name[:37] + "..."
        best = next((o for o in design.probes
                     if design.min_ii is not None and o.ii == design.min_ii
                     and o.feasible), None)
        rows.append([
            name, f"{design.start_clock_ps:.0f}",
            design.min_ii if design.min_ii is not None else "n/a",
            best.num_stages if best and best.num_stages is not None else "-",
            best.num_registers
            if best and best.num_registers is not None else "-",
            len(design.probes),
            "yes" if design.converged else "no",
            f"{design.elapsed_s:.2f}",
        ])
    lines = [format_table(headers, rows)]
    lines.append(f"dse min-ii: {len(result.designs)} designs in "
                 f"{result.elapsed_s:.2f}s (jobs {result.jobs})")
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner dse",
        description="Search clock-period design space (minimum feasible "
                    "clock or latency/register Pareto front) with "
                    "warm-started, batched-parallel probe evaluation.")
    parser.add_argument("--designs", metavar="NAMES", action="append",
                        help="designs to search; repeatable.  Registry names "
                             "and .ir file paths may be comma-separated in "
                             "one flag; a gen: or loop: name (whose "
                             "parameters themselves contain commas) takes "
                             "one flag to itself")
    parser.add_argument("--quick", action="store_true",
                        help=f"search the built-in quick designs "
                             f"({', '.join(QUICK_DESIGNS)}) unless --designs "
                             "is given")
    parser.add_argument("--mode", choices=MODES, default="minclock",
                        help="search strategy (default: minclock)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes per probe batch (deterministic "
                             "results are identical to --jobs 1 at fixed "
                             "--speculate)")
    parser.add_argument("--speculate", type=int, metavar="K",
                        help="batch width: speculative periods proposed per "
                             "round (default: the job count)")
    parser.add_argument("--resolution-ps", type=float, default=25.0,
                        metavar="PS",
                        help="minclock convergence threshold: stop when the "
                             "feasible/infeasible bracket is this tight "
                             "(default: 25)")
    parser.add_argument("--max-stages", type=int, metavar="N",
                        help="treat schedules deeper than N stages as "
                             "infeasible (sharpens the minclock search)")
    parser.add_argument("--max-probes", type=int, default=96, metavar="N",
                        help="per-design probe budget in minclock mode "
                             "(default: 96)")
    parser.add_argument("--points", type=int, default=8, metavar="N",
                        help="pareto only: grid size of the period sweep "
                             "(default: 8)")
    parser.add_argument("--json", dest="json_path", metavar="PATH",
                        help="also write the schema-7 machine-readable "
                             "payload to PATH")
    parser.add_argument("--store", dest="store_path", metavar="STORE.jsonl",
                        help="also append every evaluated probe (dse-probe "
                             "records) and the payload to this artifact "
                             "store")
    parser.add_argument("--verbose", action="store_true",
                        help="print one summary line per design as it "
                             "finishes")
    return parser


def dse_main(argv: list[str] | None = None) -> int:
    """Entry point of ``runner dse``; returns the process exit code."""
    parser = _build_parser()
    arguments = parser.parse_args(argv)
    if arguments.jobs < 1:
        parser.error("--jobs must be at least 1")
    if arguments.speculate is not None and arguments.speculate < 1:
        parser.error("--speculate must be at least 1")
    if arguments.json_path and Path(arguments.json_path).is_dir():
        parser.error(f"--json {arguments.json_path!r} is a directory, "
                     "expected a file path")
    designs: list[str] = []
    for chunk in arguments.designs or ():
        if chunk.startswith(("gen:", "loop:")):
            designs.append(chunk)
        else:
            designs.extend(part.strip() for part in chunk.split(",")
                           if part.strip())
    if not designs:
        if not arguments.quick:
            parser.error("name designs with --designs NAMES, or use --quick")
        designs = list(QUICK_DESIGNS)
    start = time.perf_counter()
    try:
        result = run_dse(designs, mode=arguments.mode, jobs=arguments.jobs,
                         speculate=arguments.speculate,
                         resolution_ps=arguments.resolution_ps,
                         max_stages=arguments.max_stages,
                         max_probes=arguments.max_probes,
                         points=arguments.points,
                         verbose=arguments.verbose)
    except (KeyError, ValueError) as error:
        parser.error(str(error))
    elapsed = time.perf_counter() - start
    print(format_dse(result))
    if arguments.json_path or arguments.store_path:
        from repro.experiments.serialize import experiment_payload

        payload = experiment_payload("dse", result, quick=arguments.quick,
                                     jobs=arguments.jobs, elapsed_s=elapsed)
        if arguments.json_path:
            path = Path(arguments.json_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(payload, indent=2) + "\n")
        if arguments.store_path:
            from repro.dse.search import probe_records
            from repro.store import ArtifactStore, payload_record

            store = ArtifactStore(arguments.store_path).open_for_append()
            store.put_many(probe_records(result))
            store.put(payload_record(payload))
    return 0


__all__ = ["QUICK_DESIGNS", "dse_main", "format_dse"]
