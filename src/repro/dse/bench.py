"""Warm-vs-cold benchmark of the DSE layer, backing ``BENCH_dse.json``.

For every benchmark design one *warm* minimum-clock search runs with a
fresh :class:`~repro.dse.warm.ProblemCache` (the production path:
cross-point problem reuse, plateau solution reuse, rank-aware rebasing),
and the *same probed period sequence* is then re-evaluated cold -- a fresh
``ProblemCache`` per probe, so every probe pays the full cost a cache-less
tool would: graph build, delay characterisation, critical-path matrix,
constraint system, LP assembly, LP solve.  Every cold probe is checked
byte-identical to its warm counterpart (stages dict, stage count, register
count), so the benchmark doubles as the parity gate of the ``bench-dse``
CI job.

Two design groups are reported:

* the **gated** group (rrot, ML-core datapath1, hsv2rgb) drives the
  aggregate speedup / rebuild-reduction gates -- designs whose feasible
  plateaus are wide enough that warm starting pays at every scale;
* the **extended** group (crc32 and a lean ``gen:`` design) is
  informational: crc32's ceil-bucket boundaries are ~0.02 ps apart near
  its minimum clock, so nearly every rebase patches bounds and the LP
  must re-run -- the honest lower bound of the technique.

Timings are best-of-``--repeats`` wall clock.  ``--baseline`` compares the
aggregate warm-vs-cold speedup against a committed ``BENCH_dse.json`` and
fails on a >``--max-regression`` drop; ``--min-speedup`` and
``--min-rebuild-reduction`` gate the absolute figures.

Usage::

    python -m repro.dse.bench --out BENCH_dse.json --min-speedup 2.0 \\
        --min-rebuild-reduction 0.3
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.dse.optimizer import MinClockOptimizer
from repro.dse.search import drive_optimizer
from repro.dse.warm import ProbeOutcome, ProblemCache
from repro.designs.generator import case_from_name

#: Designs the aggregate gates run over.
GATED_DESIGNS = ("rrot", "ML-core datapath1", "hsv2rgb")

#: Informational designs reported but never gated (narrow plateaus).
EXTENDED_DESIGNS = (
    "crc32",
    "gen:seed=3,depth=8,width=6,fanout=2,bits=16,inputs=4,clock=2500,"
    "mix=add4+sub2+xor3+and2+or2+rotr1",
)

#: Search settings shared by the warm run and the cold replay.
RESOLUTION_PS = 1.0
SPECULATE = 4


def _warm_search(design: str, start_clock_ps: float
                 ) -> tuple[float, list[ProbeOutcome]]:
    """One full warm min-clock search; returns (wall seconds, probes)."""
    cache = ProblemCache()
    optimizer = MinClockOptimizer(design, start_clock_ps,
                                  resolution_ps=RESOLUTION_PS)
    started = time.perf_counter()
    probes = drive_optimizer(
        optimizer,
        lambda batch: [cache.probe(design, period) for period in batch],
        width=SPECULATE)
    elapsed = time.perf_counter() - started
    if not optimizer.converged:
        raise SystemExit(f"warm min-clock search failed to converge on "
                         f"{design!r}")
    return elapsed, probes


def _cold_replay(design: str, probes: list[ProbeOutcome]) -> float:
    """Re-evaluate the warm run's period sequence fully cold.

    A fresh :class:`ProblemCache` per probe means *nothing* is shared
    between probes -- the honest baseline of a tool without the warm-start
    layer.  Raises on any parity violation against the warm outcomes.
    """
    started = time.perf_counter()
    for warm in probes:
        cold = ProblemCache().cold_probe(design, warm.clock_period_ps)
        if (cold.feasible != warm.feasible
                or cold.num_stages != warm.num_stages
                or cold.num_registers != warm.num_registers
                or cold.stages != warm.stages):
            raise SystemExit(
                f"warm probe diverges from cold on {design!r} at "
                f"{warm.clock_period_ps:.3f} ps")
    return time.perf_counter() - started


def bench_design(design: str, repeats: int) -> dict:
    """Benchmark one design; raises on divergence or non-convergence."""
    start_clock_ps = case_from_name(design).clock_period_ps
    warm_s = float("inf")
    probes: list[ProbeOutcome] = []
    for _ in range(repeats):
        elapsed, probes = _warm_search(design, start_clock_ps)
        warm_s = min(warm_s, elapsed)
    cold_s = min(_cold_replay(design, probes) for _ in range(repeats))

    lp_probes = sum(1 for p in probes if p.reason != "budget")
    warm_rebuilds = sum(1 for p in probes if p.lp_rebuild)
    reused = sum(1 for p in probes if p.solution_reuse)
    min_clock = min((p.clock_period_ps for p in probes if p.feasible),
                    default=None)
    return {
        "design": design,
        "start_clock_ps": start_clock_ps,
        "min_clock_ps": min_clock,
        "num_probes": len(probes),
        "lp_probes": lp_probes,
        "warm": {
            "search_s": warm_s,
            "lp_rebuilds": warm_rebuilds,
            "patched_solves": sum(1 for p in probes if p.warm_patched),
            "reused_solutions": reused,
            "solve_time_s": sum(p.solve_time_s for p in probes),
        },
        "cold": {
            "replay_s": cold_s,
            # A cache-less tool rebuilds the LP on every non-budget probe.
            "lp_rebuilds": lp_probes,
        },
        "speedup": cold_s / warm_s,
        "rebuild_reduction": (1.0 - warm_rebuilds / lp_probes
                              if lp_probes else 0.0),
    }


def _aggregate(records: list[dict]) -> dict:
    warm_total = sum(r["warm"]["search_s"] for r in records)
    cold_total = sum(r["cold"]["replay_s"] for r in records)
    warm_rebuilds = sum(r["warm"]["lp_rebuilds"] for r in records)
    cold_rebuilds = sum(r["cold"]["lp_rebuilds"] for r in records)
    return {
        "designs": [r["design"] for r in records],
        "warm_s": warm_total,
        "cold_s": cold_total,
        "speedup": cold_total / warm_total if warm_total else 0.0,
        "lp_rebuilds_warm": warm_rebuilds,
        "lp_rebuilds_cold": cold_rebuilds,
        "rebuild_reduction": (1.0 - warm_rebuilds / cold_rebuilds
                              if cold_rebuilds else 0.0),
    }


def _gate(condition: bool, message: str) -> int:
    if condition:
        print(message, file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Warm-vs-cold DSE benchmark with built-in parity and "
                    "regression gates.")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default: 3)")
    parser.add_argument("--skip-extended", action="store_true",
                        help="run only the gated design group")
    parser.add_argument("--out", default="BENCH_dse.json",
                        help="output JSON path (default: BENCH_dse.json)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless the gated aggregate warm-vs-cold "
                             "speedup reaches this factor")
    parser.add_argument("--min-rebuild-reduction", type=float, default=0.0,
                        help="fail unless the gated aggregate LP-rebuild "
                             "reduction reaches this fraction")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_dse.json to diff against")
    parser.add_argument("--max-regression", type=float, default=0.2,
                        help="tolerated fractional aggregate-speedup drop "
                             "versus --baseline (default: 0.2)")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")

    def run_group(names: tuple[str, ...], label: str) -> list[dict]:
        records = []
        for design in names:
            record = bench_design(design, args.repeats)
            records.append(record)
            print(f"[{label}] {design[:44]:44s} "
                  f"{record['num_probes']:3d} probes | "
                  f"warm {record['warm']['search_s']:6.3f}s "
                  f"cold {record['cold']['replay_s']:6.3f}s | "
                  f"{record['speedup']:5.2f}x | "
                  f"rebuilds {record['warm']['lp_rebuilds']}"
                  f"/{record['cold']['lp_rebuilds']}")
        return records

    gated = run_group(GATED_DESIGNS, "gated")
    extended = [] if args.skip_extended \
        else run_group(EXTENDED_DESIGNS, "extra")

    aggregate = _aggregate(gated)
    print(f"gated aggregate: {aggregate['speedup']:.2f}x warm-vs-cold, "
          f"{aggregate['rebuild_reduction']:.0%} fewer LP rebuilds")

    payload = {
        "schema": 1,
        "repeats": args.repeats,
        "resolution_ps": RESOLUTION_PS,
        "speculate": SPECULATE,
        "gated": gated,
        "extended": extended,
        "aggregate": aggregate,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    failures = 0
    if args.min_speedup:
        failures += _gate(
            aggregate["speedup"] < args.min_speedup,
            f"aggregate speedup {aggregate['speedup']:.2f}x below required "
            f"{args.min_speedup:.2f}x")
    if args.min_rebuild_reduction:
        failures += _gate(
            aggregate["rebuild_reduction"] < args.min_rebuild_reduction,
            f"rebuild reduction {aggregate['rebuild_reduction']:.0%} below "
            f"required {args.min_rebuild_reduction:.0%}")
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        reference = baseline["aggregate"]["speedup"]
        floor = (1.0 - args.max_regression) * reference
        failures += _gate(
            aggregate["speedup"] < floor,
            f"aggregate speedup {aggregate['speedup']:.2f}x regressed "
            f">{args.max_regression:.0%} from baseline {reference:.2f}x")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
