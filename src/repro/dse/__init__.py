"""Design-space exploration over clock periods with warm-started re-solves.

The DSE layer answers "what is the fastest clock this design schedules
at?" (and, more generally, "what latency/register trade-offs exist across
clock periods?") by treating one (design, clock period) schedule as a
black-box probe and searching over periods.  The perf heart is the
warm-start engine (:mod:`repro.dse.warm`): across clock points of one
design the delay matrix is *identical* -- only the combinational budget
moves -- so the solved :class:`~repro.sdc.problem.ScheduleProblem` of the
nearest previously-probed period is cloned and rebased to the new budget
by patching just the timing bounds whose ``ceil(delay / budget)`` bucket
changed, byte-identical to a cold rebuild.

Modules:

* :mod:`repro.dse.warm` -- per-design :class:`ProblemCache` (context build,
  fingerprint memoization, clone + rebase warm start) and
  :class:`ProbeOutcome`.
* :mod:`repro.dse.optimizer` -- the :class:`Optimizer` protocol
  (``next_batch`` / ``process_outcome`` / ``done`` / ``best``) with
  :class:`MinClockOptimizer` (bracketing + batch-speculative bisection)
  and :class:`ParetoOptimizer` (latency vs. register-count front).
* :mod:`repro.dse.search` -- the batched driver threading probes through a
  process pool with per-worker caches.
* :mod:`repro.dse.cli` -- the ``runner dse`` subcommand.
* :mod:`repro.dse.bench` -- the warm-vs-cold benchmark behind
  ``BENCH_dse.json``.
"""

from repro.dse.optimizer import (
    BestPoint,
    MinClockOptimizer,
    Optimizer,
    ParetoOptimizer,
    ParetoPoint,
)
from repro.dse.search import DesignSearchResult, DseResult, run_dse
from repro.dse.warm import DesignContext, ProbeOutcome, ProblemCache

__all__ = [
    "BestPoint",
    "DesignContext",
    "DesignSearchResult",
    "DseResult",
    "MinClockOptimizer",
    "Optimizer",
    "ParetoOptimizer",
    "ParetoPoint",
    "ProbeOutcome",
    "ProblemCache",
    "run_dse",
]
