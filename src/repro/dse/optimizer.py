"""Search strategies over black-box clock-period probes.

An optimizer never evaluates anything itself: :meth:`Optimizer.next_batch`
proposes up to ``limit`` clock periods, the driver evaluates them (possibly
in parallel) and feeds every result back through
:meth:`Optimizer.process_outcome`, and ``done``/``best`` report
convergence.  Proposing *batches* rather than single points is what makes
``--jobs N`` useful: a bisection that only ever asks one question at a time
cannot use more than one worker, so :class:`MinClockOptimizer` speculates
-- it splits the current bracket into ``limit + 1`` equal parts (or probes
a geometric ladder while still bracketing) and every answer tightens the
bracket no matter which speculative point lands where.

The shape follows xeda's fmax search (FmaxOptimizer: bracket init,
resolution stopping; dse_runner: ``next_batch`` / ``process_outcome``
over a worker pool), specialised to deterministic feasibility probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.dse.warm import ProbeOutcome


@dataclass(frozen=True)
class BestPoint:
    """The best point an optimizer has found so far."""

    clock_period_ps: float
    outcome: ProbeOutcome


@dataclass(frozen=True)
class ParetoPoint:
    """One point of the latency / register-count trade-off front."""

    clock_period_ps: float
    num_stages: int
    num_registers: int


@runtime_checkable
class Optimizer(Protocol):
    """The propose / observe contract of a DSE search strategy.

    The driver loop is::

        while not optimizer.done:
            batch = optimizer.next_batch(limit=jobs)
            if not batch:
                break
            for period, outcome in zip(batch, evaluate(batch)):
                optimizer.process_outcome(period, outcome)

    ``next_batch`` never re-proposes an already-answered period, and every
    proposed period is answered before the next call (the driver enforces
    this).  ``best`` is ``None`` until a feasible point has been seen.
    """

    design: str

    def next_batch(self, limit: int) -> list[float]:  # pragma: no cover
        ...

    def process_outcome(self, clock_period_ps: float,
                        outcome: ProbeOutcome) -> None:  # pragma: no cover
        ...

    @property
    def done(self) -> bool:  # pragma: no cover - protocol
        ...

    @property
    def best(self) -> BestPoint | None:  # pragma: no cover - protocol
        ...


class MinClockOptimizer:
    """Bracketing + batch-speculative bisection for the minimum feasible clock.

    Phase 1 (bracketing): starting from the design's registry clock period,
    probe a geometric ladder downwards until an infeasible period is seen
    (or upwards, if even the start is infeasible).  Phase 2 (bisection):
    with a bracket ``(infeasible_at, feasible_at)`` in hand, split the gap
    into ``limit + 1`` equal parts per batch and tighten on the answers,
    stopping when the bracket is within ``resolution_ps``.

    Feasibility is the probe's, optionally sharpened by ``max_stages``
    (a feasible schedule deeper than the cap counts as infeasible -- this
    is what makes the search non-trivial, since pure SDC feasibility has
    an analytic answer).  Feasibility need not be monotone under a stage
    cap; a feasible point below the recorded infeasibility floor simply
    drops the floor and resumes bracketing.

    Attributes:
        design: design name (for reporting).
        outcomes: every processed probe, keyed by period.
        feasible_at: lowest feasible period seen (the running answer).
        infeasible_at: highest infeasible period below ``feasible_at``.
    """

    def __init__(self, design: str, start_clock_ps: float,
                 resolution_ps: float = 25.0, bracket_factor: float = 2.0,
                 max_probes: int = 96, max_stages: int | None = None) -> None:
        if start_clock_ps <= 0:
            raise ValueError("start_clock_ps must be positive")
        if resolution_ps <= 0:
            raise ValueError("resolution_ps must be positive")
        if bracket_factor <= 1:
            raise ValueError("bracket_factor must exceed 1")
        if max_probes < 1:
            raise ValueError("max_probes must be at least 1")
        self.design = design
        self.start_clock_ps = float(start_clock_ps)
        self.resolution_ps = float(resolution_ps)
        self.bracket_factor = float(bracket_factor)
        self.max_probes = int(max_probes)
        self.max_stages = max_stages
        self.outcomes: dict[float, ProbeOutcome] = {}
        self.feasible_at: float | None = None
        self.infeasible_at: float | None = None
        self._best_outcome: ProbeOutcome | None = None
        self._pinched = False

    def _is_feasible(self, outcome: ProbeOutcome) -> bool:
        if not outcome.feasible:
            return False
        if self.max_stages is not None and outcome.num_stages is not None:
            return outcome.num_stages <= self.max_stages
        return True

    @property
    def converged(self) -> bool:
        """True when the bracket is tighter than the resolution."""
        return (self.feasible_at is not None
                and self.infeasible_at is not None
                and self.feasible_at - self.infeasible_at
                <= self.resolution_ps)

    @property
    def done(self) -> bool:
        return (self.converged or self._pinched
                or len(self.outcomes) >= self.max_probes)

    @property
    def best(self) -> BestPoint | None:
        if self.feasible_at is None or self._best_outcome is None:
            return None
        return BestPoint(self.feasible_at, self._best_outcome)

    def next_batch(self, limit: int = 1) -> list[float]:
        """Up to ``limit`` fresh periods to probe (empty when done)."""
        limit = max(1, int(limit))
        if self.done:
            return []
        limit = min(limit, self.max_probes - len(self.outcomes))
        if self.feasible_at is not None and self.infeasible_at is not None:
            low, high = self.infeasible_at, self.feasible_at
            gap = high - low
            candidates = [low + gap * step / (limit + 1)
                          for step in range(1, limit + 1)]
        elif self.feasible_at is not None:
            # Bracket downwards from the feasible ceiling.
            candidates = [self.feasible_at / self.bracket_factor ** step
                          for step in range(1, limit + 1)]
        elif self.infeasible_at is not None:
            # Even the start was infeasible: bracket upwards.
            candidates = [self.infeasible_at * self.bracket_factor ** step
                          for step in range(1, limit + 1)]
        else:
            # First batch: the registry period, then a downward ladder.
            candidates = [self.start_clock_ps / self.bracket_factor ** step
                          for step in range(limit)]
        fresh: list[float] = []
        for period in candidates:
            if period > 0 and period not in self.outcomes \
                    and period not in fresh:
                fresh.append(period)
        if not fresh:
            # Floating-point pinch: the bracket cannot be split further.
            self._pinched = True
        return fresh

    def process_outcome(self, clock_period_ps: float,
                        outcome: ProbeOutcome) -> None:
        """Record one probe result and tighten the bracket."""
        period = float(clock_period_ps)
        self.outcomes[period] = outcome
        if self._is_feasible(outcome):
            if self.feasible_at is None or period < self.feasible_at:
                self.feasible_at = period
                self._best_outcome = outcome
                if self.infeasible_at is not None \
                        and self.infeasible_at >= period:
                    # Non-monotone feasibility (stage cap): the floor was
                    # wrong, resume bracketing below the new ceiling.
                    self.infeasible_at = None
        else:
            if (self.feasible_at is None or period < self.feasible_at) and \
                    (self.infeasible_at is None or period > self.infeasible_at):
                self.infeasible_at = period


class ParetoOptimizer:
    """Latency (clock period) vs. register-count front across periods.

    A shorter clock period means a faster, deeper pipeline but more
    register bits; a longer one means fewer registers at lower speed --
    the genuine two-objective trade-off of pipeline scheduling, with both
    objectives cost-like (lower is better).  Phase 1 sweeps an even grid
    of ``points`` periods over ``span`` x the start period.  Each
    refinement round then probes the midpoint between every pair of
    adjacent front points whose stage counts differ by more than one --
    the gaps where undiscovered trade-off points can hide.

    Attributes:
        design: design name (for reporting).
        outcomes: every processed probe, keyed by period.
    """

    def __init__(self, design: str, start_clock_ps: float,
                 points: int = 8, span: tuple[float, float] = (0.5, 2.0),
                 refine_rounds: int = 1) -> None:
        if start_clock_ps <= 0:
            raise ValueError("start_clock_ps must be positive")
        if points < 2:
            raise ValueError("points must be at least 2")
        if not 0 < span[0] < span[1]:
            raise ValueError("span must satisfy 0 < low < high")
        self.design = design
        self.start_clock_ps = float(start_clock_ps)
        self.points = int(points)
        self.span = (float(span[0]), float(span[1]))
        self.outcomes: dict[float, ProbeOutcome] = {}
        self._rounds_left = max(0, int(refine_rounds))
        low = self.start_clock_ps * self.span[0]
        high = self.start_clock_ps * self.span[1]
        self._queue: list[float] = [
            low + (high - low) * index / (self.points - 1)
            for index in range(self.points)]
        self._issued: set[float] = set()
        self._done = False

    @property
    def done(self) -> bool:
        return self._done

    @property
    def converged(self) -> bool:
        """A Pareto sweep converges exactly when it has a non-empty front."""
        return self._done and bool(self.front())

    @property
    def best(self) -> BestPoint | None:
        """The fastest-clock front point (the search's ``min_clock_ps``)."""
        front = self.front()
        if not front:
            return None
        fastest = front[0]
        return BestPoint(fastest.clock_period_ps,
                         self.outcomes[fastest.clock_period_ps])

    def front(self) -> list[ParetoPoint]:
        """The non-dominated (period, registers) points, period ascending.

        Scanning periods ascending, a probe joins the front exactly when
        it has strictly fewer registers than every faster probe -- the
        classic staircase of a two-cost Pareto set.
        """
        front: list[ParetoPoint] = []
        best_registers: int | None = None
        for period in sorted(self.outcomes):
            outcome = self.outcomes[period]
            if not outcome.feasible or outcome.num_stages is None:
                continue
            if best_registers is None \
                    or outcome.num_registers < best_registers:
                best_registers = outcome.num_registers
                front.append(ParetoPoint(period, outcome.num_stages,
                                         outcome.num_registers))
        return front

    def _refinement_candidates(self) -> list[float]:
        front = self.front()
        candidates: list[float] = []
        for left, right in zip(front, front[1:]):
            if abs(left.num_stages - right.num_stages) > 1:
                midpoint = (left.clock_period_ps + right.clock_period_ps) / 2
                if midpoint not in self.outcomes:
                    candidates.append(midpoint)
        return candidates

    def next_batch(self, limit: int = 1) -> list[float]:
        """Up to ``limit`` fresh periods to probe (empty when done)."""
        limit = max(1, int(limit))
        while not self._queue and not self._issued and not self._done:
            if self._rounds_left <= 0:
                self._done = True
                break
            self._rounds_left -= 1
            self._queue = self._refinement_candidates()
        batch: list[float] = []
        while self._queue and len(batch) < limit:
            period = self._queue.pop(0)
            if period in self.outcomes or period in self._issued \
                    or period in batch:
                continue
            batch.append(period)
        self._issued.update(batch)
        return batch

    def process_outcome(self, clock_period_ps: float,
                        outcome: ProbeOutcome) -> None:
        """Record one probe result."""
        period = float(clock_period_ps)
        self.outcomes[period] = outcome
        self._issued.discard(period)
