"""The DSE driver: batched parallel probe evaluation over per-worker caches.

One :func:`run_dse` call searches a list of designs with one strategy.
Per design the driver loops ``next_batch`` -> evaluate -> ``process_outcome``
until the optimizer converges; batches are fanned out over a persistent
process pool (:class:`~repro.parallel.PersistentPool`), and every worker
process keeps its own module-global :class:`~repro.dse.warm.ProblemCache`
so warm-start state accumulates worker-locally across batches and designs.
Because warm-started probes are byte-identical to cold ones, the schedule
results never depend on which worker (or which donor problem) served a
probe -- only the provenance counters do.

Batch *width* is decoupled from worker count by ``speculate``: the
optimizer always proposes ``speculate`` periods per batch (default: the
job count), so ``--jobs 1`` and ``--jobs 8`` with the same ``--speculate``
probe the same period sequence and produce the same deterministic payload
(:func:`deterministic_payload` strips the provenance/timing fields that
legitimately differ).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.dse.optimizer import (
    MinClockOptimizer,
    Optimizer,
    ParetoOptimizer,
    ParetoPoint,
)
from repro.dse.warm import ProbeOutcome, ProblemCache
from repro.parallel import PersistentPool

MODES = ("minclock", "pareto", "min-ii")

#: Per-process cache, keyed by latency weight (the one config knob that
#: changes solve results).  Worker processes are forked lazily on first
#: use, so each inherits whatever the parent had and then diverges.
_CACHES: dict[float, ProblemCache] = {}


def worker_cache(latency_weight: float = 1e-3) -> ProblemCache:
    """This process's :class:`ProblemCache` for a latency weight."""
    cache = _CACHES.get(latency_weight)
    if cache is None:
        cache = ProblemCache(latency_weight=latency_weight)
        _CACHES[latency_weight] = cache
    return cache


def reset_worker_caches() -> None:
    """Drop this process's caches (test isolation helper)."""
    _CACHES.clear()


def evaluate_probe(item: tuple[str, float, float]) -> ProbeOutcome:
    """Pool entry point: evaluate one ``(design, period, latency_weight)``."""
    design, clock_period_ps, latency_weight = item
    return worker_cache(latency_weight).probe(design, clock_period_ps)


def evaluate_min_ii(item: tuple[str, float]
                    ) -> tuple[ProbeOutcome, list[ProbeOutcome]]:
    """Pool entry point: run one design's whole minimum-II search in-worker.

    Unlike clock probes (one LP solve each, batched by the optimizer), a
    min-II search is an inherently sequential bisection over *one* shared
    problem -- so the unit of parallelism is the design, and the II-axis
    warm-start reuse (``rebase_ii`` rhs patches) happens inside the worker.
    """
    design, latency_weight = item
    return worker_cache(latency_weight).min_ii_search(design)


@dataclass
class DesignSearchResult:
    """Everything one design's search produced.

    ``min_clock_ps``, ``converged``, the probe schedule fields and
    ``front`` are deterministic; ``stats`` (warm-start provenance) and
    ``elapsed_s`` depend on worker layout and wall clock.
    """

    design: str
    mode: str
    start_clock_ps: float
    min_clock_ps: float | None
    converged: bool
    probes: list[ProbeOutcome]
    min_ii: int | None = None
    front: list[ParetoPoint] = field(default_factory=list)
    stats: dict[str, float] = field(default_factory=dict)
    elapsed_s: float = 0.0

    def to_payload(self) -> dict:
        """JSON payload row; see :func:`deterministic_payload` for the core."""
        return {
            "design": self.design,
            "mode": self.mode,
            "start_clock_ps": self.start_clock_ps,
            "min_clock_ps": self.min_clock_ps,
            "min_ii": self.min_ii,
            "converged": self.converged,
            "num_probes": len(self.probes),
            "probes": [outcome.to_payload()
                       for outcome in sorted(
                           self.probes,
                           key=lambda o: o.clock_period_ps)],
            "front": [{"clock_period_ps": point.clock_period_ps,
                       "num_stages": point.num_stages,
                       "num_registers": point.num_registers}
                      for point in self.front],
            "warm": dict(self.stats),
            "elapsed_s": self.elapsed_s,
        }


@dataclass
class DseResult:
    """The result of one :func:`run_dse` call."""

    mode: str
    resolution_ps: float
    max_stages: int | None
    jobs: int
    speculate: int
    designs: list[DesignSearchResult]
    elapsed_s: float = 0.0

    def to_payload(self) -> dict:
        """The ``dse`` experiment payload body (serialize schema >= 5)."""
        return {
            "mode": self.mode,
            "resolution_ps": self.resolution_ps,
            "max_stages": self.max_stages,
            "speculate": self.speculate,
            "designs": [result.to_payload() for result in self.designs],
        }


#: Per-design payload keys that legitimately vary with worker layout or
#: wall clock; everything else must be byte-identical across ``jobs``.
NONDETERMINISTIC_KEYS = ("warm", "elapsed_s")

#: Body schema of ``dse-probe`` artifact-store records.
DSE_PROBE_BODY_SCHEMA = 1


def probe_key(design: str, mode: str, clock_period_ps: float,
              max_stages: int | None = None, ii: int | None = None) -> str:
    """Content key of one DSE probe in the unified artifact store.

    Identity is the *question asked* -- design, search mode, probed clock
    period and the stage bound that changes feasibility -- never the
    answer, so re-running a search overwrites rather than duplicates its
    probes (probe outcomes are deterministic for a fixed question).  In
    ``min-ii`` mode the probed II candidate is part of the question (all
    candidates share one clock period); for clock-axis modes the II is an
    answer and stays out of the key, which also keeps pre-II record keys
    unchanged.
    """
    from repro.store import content_key

    identity = {"design": design, "mode": mode,
                "clock_period_ps": clock_period_ps,
                "max_stages": max_stages}
    if ii is not None:
        identity["ii"] = ii
    return content_key(identity)


def probe_records(result: "DseResult") -> list:
    """``dse-probe`` store records of every probe a search evaluated.

    Bodies carry the deterministic probe payload plus the identity fields
    (design/mode/max_stages); warm-start provenance stays out, so records
    from ``--jobs 1`` and ``--jobs 8`` runs are byte-identical.
    """
    from repro.store import StoreRecord

    records = []
    for design in result.designs:
        for outcome in sorted(design.probes, key=lambda o: o.clock_period_ps):
            body = dict(outcome.to_payload())
            body["design"] = design.design
            body["mode"] = design.mode
            body["max_stages"] = result.max_stages
            records.append(StoreRecord(
                kind="dse-probe",
                key=probe_key(design.design, design.mode,
                              outcome.clock_period_ps, result.max_stages,
                              ii=outcome.ii if design.mode == "min-ii"
                              else None),
                schema=DSE_PROBE_BODY_SCHEMA, body=body))
    return records


def deterministic_payload(payload: dict) -> dict:
    """The payload with the provenance/timing fields stripped.

    Two :func:`run_dse` calls with the same designs, mode and ``speculate``
    produce equal deterministic payloads regardless of ``jobs`` (warm-start
    byte parity makes probe results worker-independent; only the
    provenance counters and wall-clock fields differ).
    """
    stripped = dict(payload)
    stripped["designs"] = [
        {key: value for key, value in design.items()
         if key not in NONDETERMINISTIC_KEYS}
        for design in payload.get("designs", ())]
    return stripped


def _design_stats(probes: list[ProbeOutcome]) -> dict[str, float]:
    """Aggregate warm-start provenance counters over one design's probes."""
    memo_hits = sum(1 for o in probes if o.memo_hit)
    warm_solves = sum(1 for o in probes if o.warm_patched)
    reused = sum(1 for o in probes if o.solution_reuse)
    lp_rebuilds = sum(1 for o in probes if o.lp_rebuild)
    budget_skips = sum(1 for o in probes
                       if not o.feasible and o.reason == "budget"
                       and not o.memo_hit)
    served = memo_hits + warm_solves + lp_rebuilds
    return {
        "memo_hits": memo_hits,
        "warm_solves": warm_solves,
        "reused_solutions": reused,
        "lp_rebuilds": lp_rebuilds,
        "budget_skips": budget_skips,
        "bound_patches": sum(o.bound_patches for o in probes),
        "warm_hit_rate": (memo_hits + warm_solves) / served if served else 0.0,
        "solve_time_s": sum(o.solve_time_s for o in probes),
    }


def make_optimizer(mode: str, design: str, start_clock_ps: float,
                   resolution_ps: float = 25.0, max_stages: int | None = None,
                   bracket_factor: float = 2.0, max_probes: int = 96,
                   points: int = 8, span: tuple[float, float] = (0.5, 2.0),
                   refine_rounds: int = 1) -> Optimizer:
    """Construct the optimizer for one design by mode name.

    Raises:
        ValueError: for an unknown mode.
    """
    if mode == "minclock":
        return MinClockOptimizer(design, start_clock_ps,
                                 resolution_ps=resolution_ps,
                                 bracket_factor=bracket_factor,
                                 max_probes=max_probes,
                                 max_stages=max_stages)
    if mode == "pareto":
        return ParetoOptimizer(design, start_clock_ps, points=points,
                               span=span, refine_rounds=refine_rounds)
    raise ValueError(f"unknown DSE mode {mode!r}; expected one of "
                     + ", ".join(MODES))


def drive_optimizer(optimizer: Optimizer, evaluate, width: int
                    ) -> list[ProbeOutcome]:
    """Run one optimizer to convergence over an ``evaluate(batch)`` callable.

    ``evaluate`` receives a list of clock periods and returns the matching
    :class:`ProbeOutcome` list (in order).  Returns every probe outcome in
    evaluation order.
    """
    probes: list[ProbeOutcome] = []
    while not optimizer.done:
        batch = optimizer.next_batch(width)
        if not batch:
            break
        for period, outcome in zip(batch, evaluate(batch)):
            optimizer.process_outcome(period, outcome)
            probes.append(outcome)
    return probes


def run_dse(designs: list[str], mode: str = "minclock", jobs: int = 1,
            speculate: int | None = None, resolution_ps: float = 25.0,
            max_stages: int | None = None, bracket_factor: float = 2.0,
            max_probes: int = 96, points: int = 8,
            span: tuple[float, float] = (0.5, 2.0), refine_rounds: int = 1,
            latency_weight: float = 1e-3, verbose: bool = False) -> DseResult:
    """Search every design and return the combined :class:`DseResult`.

    Args:
        designs: registry or ``gen:`` design names.
        mode: ``"minclock"`` or ``"pareto"``.
        jobs: worker processes evaluating one batch in parallel.
        speculate: batch width (periods proposed per round); defaults to
            ``jobs``.  Fixing it decouples the probed period sequence from
            the worker count.
        resolution_ps: min-clock convergence threshold (bracket width).
        max_stages: optional pipeline-depth cap sharpening feasibility.
        bracket_factor: geometric ladder factor of the bracketing phase.
        max_probes: per-design probe budget (min-clock mode).
        points: grid size of the Pareto sweep.
        span: Pareto grid as multiples of the start period.
        refine_rounds: Pareto front-refinement rounds.
        latency_weight: LP tie-breaking weight (threaded to every probe).
        verbose: print one summary line per design as it finishes.
    """
    if mode not in MODES:
        raise ValueError(f"unknown DSE mode {mode!r}; expected one of "
                         + ", ".join(MODES))
    # Resolve every design name before doing any work, so a typo in the
    # last design does not waste the whole search.
    from repro.designs.generator import case_from_name
    cases = [(name, case_from_name(name)) for name in designs]

    jobs = max(1, int(jobs))
    width = max(1, int(speculate) if speculate is not None else jobs)
    started = time.perf_counter()
    results: list[DesignSearchResult] = []

    if mode == "min-ii":
        # The min-II search is sequential per design (a bisection over one
        # shared problem), so the pool parallelises across designs and each
        # worker runs a whole search.
        with PersistentPool(jobs) as pool:
            outcomes = pool.map(evaluate_min_ii,
                                [(name, latency_weight) for name, _ in cases])
        for (name, case), (final, trace) in zip(cases, outcomes):
            probes = list(trace)
            result = DesignSearchResult(
                design=name, mode=mode,
                start_clock_ps=case.clock_period_ps,
                min_clock_ps=None,
                min_ii=final.ii if final.feasible else None,
                converged=final.feasible, probes=probes,
                stats=_design_stats(probes),
                elapsed_s=final.solve_time_s)
            results.append(result)
            if verbose:
                minimum = (f"II {result.min_ii}" if result.min_ii is not None
                           else f"infeasible ({final.reason})")
                print(f"[dse] {name}: {minimum} after {len(probes)} II "
                      f"probes ({result.elapsed_s:.2f}s)")
        return DseResult(mode=mode, resolution_ps=float(resolution_ps),
                         max_stages=max_stages, jobs=jobs, speculate=width,
                         designs=results,
                         elapsed_s=time.perf_counter() - started)

    with PersistentPool(jobs) as pool:
        for name, case in cases:
            optimizer = make_optimizer(
                mode, name, case.clock_period_ps,
                resolution_ps=resolution_ps, max_stages=max_stages,
                bracket_factor=bracket_factor, max_probes=max_probes,
                points=points, span=span, refine_rounds=refine_rounds)

            def evaluate(batch: list[float]) -> list[ProbeOutcome]:
                return pool.map(evaluate_probe,
                                [(name, period, latency_weight)
                                 for period in batch])

            design_started = time.perf_counter()
            probes = drive_optimizer(optimizer, evaluate, width)
            best = optimizer.best
            front = optimizer.front() if hasattr(optimizer, "front") else []
            result = DesignSearchResult(
                design=name, mode=mode,
                start_clock_ps=case.clock_period_ps,
                min_clock_ps=best.clock_period_ps if best else None,
                converged=optimizer.converged,
                probes=probes, front=list(front),
                stats=_design_stats(probes),
                elapsed_s=time.perf_counter() - design_started)
            results.append(result)
            if verbose:
                minimum = (f"{result.min_clock_ps:.1f} ps"
                           if result.min_clock_ps is not None else "n/a")
                print(f"[dse] {name}: min clock {minimum} after "
                      f"{len(probes)} probes "
                      f"(warm hit rate {result.stats['warm_hit_rate']:.0%}, "
                      f"{result.elapsed_s:.2f}s)")
    return DseResult(mode=mode, resolution_ps=float(resolution_ps),
                     max_stages=max_stages, jobs=jobs, speculate=width,
                     designs=results,
                     elapsed_s=time.perf_counter() - started)
