"""Report engine: the read side of the campaign/sweep platform.

The campaign engine (:mod:`repro.campaign`) produces checkpointed JSONL
run stores; the experiment runner produces ``--json`` payloads.  This
package turns both into paper-style comparisons:

* :mod:`repro.report.frame` -- load any mix of stores and payloads into
  one unified in-memory frame of (axes, metrics) rows;
* :mod:`repro.report.aggregate` -- group by campaign axes and reduce
  metrics with geomean/mean/p50/p95;
* :mod:`repro.report.diff` -- join two frames on content-addressed job
  ids and gate on regressions (the CI contract);
* :mod:`repro.report.render` -- Markdown/CSV/JSON/ASCII output;
* :mod:`repro.report.cli` -- the ``runner report`` subcommand.

See ``python -m repro.experiments.runner report --help`` and
``docs/cli.md``.
"""

from repro.report.aggregate import (AggregateGroup, AggregateReport,
                                    DEFAULT_REDUCERS, REDUCERS, aggregate)
from repro.report.diff import (DEFAULT_THRESHOLD, DiffReport, JobDelta,
                               diff_frames)
from repro.report.frame import (AXES, METRICS, MetricSpec, ReportFrame,
                                ReportRow, load_any, load_experiment_payload,
                                load_frames, load_run_store, metric_spec,
                                resolve_axis)
from repro.report.render import (FORMATS, render_aggregate, render_diff)

__all__ = [
    "AXES",
    "AggregateGroup",
    "AggregateReport",
    "DEFAULT_REDUCERS",
    "DEFAULT_THRESHOLD",
    "DiffReport",
    "FORMATS",
    "JobDelta",
    "METRICS",
    "MetricSpec",
    "REDUCERS",
    "ReportFrame",
    "ReportRow",
    "aggregate",
    "diff_frames",
    "load_any",
    "load_experiment_payload",
    "load_frames",
    "load_run_store",
    "metric_spec",
    "render_aggregate",
    "render_diff",
    "resolve_axis",
]
