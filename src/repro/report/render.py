"""Rendering of aggregate and diff reports: ASCII, Markdown, CSV, JSON.

All tabular output goes through the shared grid machinery in
:mod:`repro.experiments.tables` (:func:`~repro.experiments.tables.format_table`
for ASCII/Markdown, :func:`~repro.experiments.tables.format_csv` for CSV);
JSON output is the report object's ``to_payload()`` body.  Undefined cells
(a reducer with no defined value for a group) render as ``n/a`` -- never
``nan``.

A runnable example::

    >>> from repro.report.aggregate import AggregateGroup, AggregateReport
    >>> report = AggregateReport(
    ...     group_by=("design",), metrics=("registers_final",),
    ...     reducers=("count", "geomean"), num_rows=2,
    ...     groups=[AggregateGroup(("x",), 2,
    ...                            {"registers_final":
    ...                             {"count": 2, "geomean": 4.0}})])
    >>> print(render_aggregate(report, "markdown"))
    | design | rows | registers_final/count | registers_final/geomean |
    |--------|------|-----------------------|-------------------------|
    | x      | 2    | 2                     | 4                       |
"""

from __future__ import annotations

import json
import math

from repro.experiments.tables import format_csv, format_table
from repro.report.aggregate import AggregateReport
from repro.report.diff import DiffReport

#: Output formats of ``runner report`` (``md`` is accepted as an alias).
FORMATS = ("ascii", "markdown", "csv", "json")


def _fmt(value) -> str:
    """One cell: ints verbatim, floats to 6 significant digits, None as n/a."""
    if value is None:
        return "n/a"
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.6g}"
    return str(value)


def _check_format(fmt: str) -> str:
    fmt = {"md": "markdown"}.get(fmt, fmt)
    if fmt not in FORMATS:
        known = ", ".join(FORMATS)
        raise ValueError(f"unknown report format {fmt!r}; known: {known}")
    return fmt


def _aggregate_grid(report: AggregateReport) -> tuple[list[str], list[list[str]]]:
    # The leading "rows" column is the group size; a metric's own /count
    # column (rows actually carrying that metric) can be smaller, so it is
    # rendered like any other reducer rather than folded into the group size.
    headers = list(report.group_by) + ["rows"]
    for metric in report.metrics:
        for reducer in report.reducers:
            headers.append(f"{metric}/{reducer}")
    rows = []
    for group in report.groups:
        row = [_fmt(part) for part in group.key] + [str(group.count)]
        for metric in report.metrics:
            for reducer in report.reducers:
                row.append(_fmt(group.values[metric][reducer]))
        rows.append(row)
    return headers, rows


def render_aggregate(report: AggregateReport, fmt: str = "ascii") -> str:
    """Render an aggregation as one table (plus a totals line for text).

    Raises:
        ValueError: unknown format name.
    """
    fmt = _check_format(fmt)
    if fmt == "json":
        return json.dumps(report.to_payload(), indent=2)
    headers, rows = _aggregate_grid(report)
    if fmt == "csv":
        return format_csv(headers, rows)
    table = format_table(headers, rows, style=fmt)
    if fmt == "markdown":
        return table
    return (table + f"\n{report.num_rows} rows in "
            f"{len(report.groups)} groups")


def _diff_grid(report: DiffReport) -> tuple[list[str], list[list[str]]]:
    headers = ["job", "design", "baseline", "candidate", "delta",
               "rel_delta", "status"]
    rows = []
    for delta in report.deltas:
        status = "regressed" if delta.regressed else (
            "changed" if delta.delta else "same")
        rows.append([delta.job_id[:12], delta.design,
                     _fmt(delta.baseline), _fmt(delta.candidate),
                     _fmt(delta.delta), _fmt(delta.rel_delta), status])
    return headers, rows


def diff_summary_lines(report: DiffReport) -> list[str]:
    """The human-readable verdict lines under a diff table."""
    direction = "higher" if report.higher_is_better else "lower"
    lines = [
        f"metric {report.metric} ({direction} is better), "
        f"threshold {report.threshold:g}",
        f"{len(report.deltas)} jobs joined, {report.num_changed} changed, "
        f"{report.num_regressed} regressed",
    ]
    if report.deltas:
        lines.append(
            f"mean delta {_fmt(report.mean_delta)}, geomean ratio "
            f"{_fmt(report.geomean_ratio)}, max |rel delta| "
            f"{_fmt(report.max_rel_delta)}")
    if report.only_baseline:
        lines.append(f"{len(report.only_baseline)} jobs only in baseline: "
                     + ", ".join(j[:12] for j in report.only_baseline[:8])
                     + ("..." if len(report.only_baseline) > 8 else ""))
    if report.only_candidate:
        lines.append(f"{len(report.only_candidate)} jobs only in candidate: "
                     + ", ".join(j[:12] for j in report.only_candidate[:8])
                     + ("..." if len(report.only_candidate) > 8 else ""))
    verdict = "FAIL" if report.exit_code else "OK"
    lines.append(f"verdict: {verdict}")
    return lines


def render_diff(report: DiffReport, fmt: str = "ascii") -> str:
    """Render a baseline diff: per-job table plus the summary verdict.

    CSV output carries only the per-job grid (the aggregate figures live in
    the JSON payload); ASCII and Markdown append the summary lines.

    Raises:
        ValueError: unknown format name.
    """
    fmt = _check_format(fmt)
    if fmt == "json":
        return json.dumps(report.to_payload(), indent=2)
    headers, rows = _diff_grid(report)
    if fmt == "csv":
        return format_csv(headers, rows)
    table = format_table(headers, rows, style=fmt)
    summary = diff_summary_lines(report)
    if fmt == "markdown":
        return table + "\n\n" + "\n".join(f"- {line}" for line in summary)
    return table + "\n" + "\n".join(summary)


__all__ = ["FORMATS", "diff_summary_lines", "render_aggregate", "render_diff"]
