"""Baseline diffing: join two frames on job ids and gate on regressions.

:func:`diff_frames` joins a baseline frame and a candidate frame on their
content-addressed job ids, computes the per-job delta of one metric, and
summarises: mean delta, geometric-mean candidate/baseline ratio, and the
count of *regressions* -- jobs whose metric moved in the metric's bad
direction (see :data:`~repro.report.frame.METRICS`) by more than the
relative ``threshold``.  :attr:`DiffReport.exit_code` is the CI contract:
``0`` when nothing regressed, ``1`` otherwise.

Jobs present on only one side are reported (``only_baseline`` /
``only_candidate``) but can never regress -- a shrunk or grown sweep is a
spec change, not a quality change.  A diff that joins *zero* jobs fails
the gate, though: comparing nothing must not read as "nothing regressed".

A runnable example (one regressed job at the default zero threshold)::

    >>> from repro.report.frame import ReportFrame, ReportRow
    >>> old = ReportFrame([ReportRow("j1", "old", {}, {"registers_final": 10.0}),
    ...                    ReportRow("j2", "old", {}, {"registers_final": 4.0})])
    >>> new = ReportFrame([ReportRow("j1", "new", {}, {"registers_final": 12.0}),
    ...                    ReportRow("j2", "new", {}, {"registers_final": 4.0})])
    >>> report = diff_frames(old, new, metric="registers_final")
    >>> report.num_regressed, report.exit_code
    (1, 1)
    >>> report.deltas[0].rel_delta
    0.2
    >>> diff_frames(old, old, metric="registers_final").exit_code
    0
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.experiments.tables import geometric_mean
from repro.report.frame import ReportFrame, ReportRow, metric_spec

#: Default relative regression threshold: any worsening fails the gate.
DEFAULT_THRESHOLD = 0.0


@dataclass(frozen=True)
class JobDelta:
    """Per-job outcome of a baseline diff.

    Attributes:
        job_id: the joined content-addressed id.
        design: design name (from the candidate side).
        baseline: metric value on the baseline side.
        candidate: metric value on the candidate side.
        delta: ``candidate - baseline``.
        rel_delta: signed relative change ``delta / |baseline|``
            (``inf`` when the baseline is zero and the candidate is not).
        regressed: the metric moved in its bad direction beyond threshold.
    """

    job_id: str
    design: str
    baseline: float
    candidate: float
    delta: float
    rel_delta: float
    regressed: bool


@dataclass
class DiffReport:
    """Result of :func:`diff_frames`, ready for rendering/serialisation."""

    metric: str
    threshold: float
    higher_is_better: bool
    deltas: list[JobDelta] = field(default_factory=list)
    only_baseline: list[str] = field(default_factory=list)
    only_candidate: list[str] = field(default_factory=list)
    num_regressed: int = 0
    num_changed: int = 0
    max_rel_delta: float = 0.0
    mean_delta: float = 0.0
    geomean_ratio: float | None = None

    @property
    def exit_code(self) -> int:
        """``0`` when the gate passes, ``1`` when it fails.

        The gate fails when any job regressed beyond the threshold, and
        also when *zero* jobs joined -- a diff that compared nothing (a
        truncated store, disjoint sweeps, a metric missing from every
        row) must not pass a CI gate green.
        """
        return 1 if self.num_regressed or not self.deltas else 0

    def to_payload(self) -> dict:
        """Plain JSON-serialisable form (the ``--format json`` body).

        Non-finite relative deltas (a zero baseline turning non-zero has
        ``rel_delta = inf``) serialise as ``null`` -- ``json.dumps`` would
        otherwise emit the non-RFC token ``Infinity`` and break strict
        parsers; the absolute ``delta`` and ``regressed`` flag carry the
        information.
        """
        return {
            "kind": "diff",
            "metric": self.metric,
            "threshold": self.threshold,
            "higher_is_better": self.higher_is_better,
            "num_jobs": len(self.deltas),
            "num_changed": self.num_changed,
            "num_regressed": self.num_regressed,
            "max_rel_delta": _finite_or_none(self.max_rel_delta),
            "mean_delta": self.mean_delta,
            "geomean_ratio": self.geomean_ratio,
            "only_baseline": list(self.only_baseline),
            "only_candidate": list(self.only_candidate),
            "exit_code": self.exit_code,
            "jobs": [
                {"job_id": d.job_id, "design": d.design,
                 "baseline": d.baseline, "candidate": d.candidate,
                 "delta": d.delta,
                 "rel_delta": _finite_or_none(d.rel_delta),
                 "regressed": d.regressed}
                for d in self.deltas
            ],
        }


def _finite_or_none(value: float | None) -> float | None:
    if value is None or not math.isfinite(value):
        return None
    return value


def _relative_delta(baseline: float, candidate: float) -> float:
    if baseline == 0.0:
        return 0.0 if candidate == 0.0 else math.inf
    return (candidate - baseline) / abs(baseline)


def diff_frames(baseline: ReportFrame, candidate: ReportFrame,
                metric: str = "registers_final",
                threshold: float = DEFAULT_THRESHOLD) -> DiffReport:
    """Join two frames on job ids and compare one metric.

    Args:
        baseline: the reference frame (``old``).
        candidate: the frame under test (``new``).
        metric: metric to compare; its orientation decides what counts as
            a regression.
        threshold: relative worsening beyond which a job regresses
            (``0.05`` = tolerate up to 5 % worse).

    Returns:
        A :class:`DiffReport`; joined jobs appear sorted by job id.
        Jobs missing the metric on either side are treated as unjoinable
        (listed under the corresponding ``only_*`` side).

    Raises:
        ValueError: unknown metric or negative threshold.
    """
    spec = metric_spec(metric)
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold!r}")

    def usable(rows: dict[str, ReportRow]) -> dict[str, ReportRow]:
        return {job_id: row for job_id, row in rows.items()
                if metric in row.metrics}

    old_rows = usable(baseline.by_job_id())
    new_rows = usable(candidate.by_job_id())
    joined = sorted(set(old_rows) & set(new_rows))

    deltas = []
    num_regressed = 0
    num_changed = 0
    ratios = []
    for job_id in joined:
        old_value = float(old_rows[job_id].metrics[metric])
        new_value = float(new_rows[job_id].metrics[metric])
        delta = new_value - old_value
        rel = _relative_delta(old_value, new_value)
        worsening = -rel if spec.higher_is_better else rel
        regressed = worsening > threshold
        num_regressed += regressed
        num_changed += delta != 0.0
        if old_value > 0 and new_value > 0:
            ratios.append(new_value / old_value)
        deltas.append(JobDelta(
            job_id=job_id,
            design=str(new_rows[job_id].value("design") or ""),
            baseline=old_value, candidate=new_value,
            delta=delta, rel_delta=rel, regressed=regressed))

    geomean_ratio = None
    if ratios and len(ratios) == len(joined):
        geomean_ratio = geometric_mean(ratios)
    return DiffReport(
        metric=metric,
        threshold=threshold,
        higher_is_better=spec.higher_is_better,
        deltas=deltas,
        only_baseline=sorted(set(old_rows) - set(new_rows)),
        only_candidate=sorted(set(new_rows) - set(old_rows)),
        num_regressed=num_regressed,
        num_changed=num_changed,
        max_rel_delta=max((abs(d.rel_delta) for d in deltas), default=0.0),
        mean_delta=(sum(d.delta for d in deltas) / len(deltas)
                    if deltas else 0.0),
        geomean_ratio=geomean_ratio,
    )


__all__ = ["DEFAULT_THRESHOLD", "DiffReport", "JobDelta", "diff_frames"]
