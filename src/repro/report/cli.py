"""The ``report`` subcommand of :mod:`repro.experiments.runner`.

Two modes share one entry point (:func:`report_main`):

* **summary** -- ``runner report INPUT...`` aggregates one or more inputs
  (campaign run stores and/or runner ``--json`` payloads) along campaign
  axes::

      python -m repro.experiments.runner report runs/sweep.jsonl \\
          --group-by design,extraction --metric registers_final,iterations \\
          --format markdown

* **diff** -- ``runner report diff OLD NEW`` (or ``runner report NEW
  --baseline OLD``) joins two inputs on content-addressed job ids and
  gates on regressions; the process exits non-zero when any job's metric
  worsened by more than ``--threshold``::

      python -m repro.experiments.runner report diff \\
          runs/main.jsonl runs/branch.jsonl --threshold 0.05

``--json PATH`` additionally writes the schema-5 machine-readable payload
(:mod:`repro.experiments.serialize`), whatever ``--format`` is printed.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.report.aggregate import DEFAULT_REDUCERS, REDUCERS, aggregate
from repro.report.diff import DEFAULT_THRESHOLD, diff_frames
from repro.report.frame import AXES, METRICS, load_frames
from repro.report.render import FORMATS, render_aggregate, render_diff


def _split_list(raw: str) -> list[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def _build_parser() -> argparse.ArgumentParser:
    epilog = (
        "axes: " + ", ".join(AXES) + " (alias m = subgraphs_per_iteration)\n"
        + "metrics:\n"
        + "\n".join(f"  {name:20s} {spec.description}"
                    for name, spec in METRICS.items())
        + "\nreducers: " + ", ".join(REDUCERS))
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner report",
        description="Aggregate or diff campaign run stores and runner "
                    "--json payloads.",
        epilog=epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("inputs", nargs="+", metavar="INPUT",
                        help="campaign RunStore .jsonl files and/or runner "
                             "--json payloads; the literal first word "
                             "'diff' selects diff mode with exactly two "
                             "inputs (OLD NEW)")
    parser.add_argument("--group-by", default="design", metavar="AXES",
                        help="comma-separated grouping axes for the summary "
                             "(default: design)")
    parser.add_argument("--metric", default="registers_final", metavar="M",
                        help="metric(s) to report; comma-separated for the "
                             "summary, exactly one for diff "
                             "(default: registers_final)")
    parser.add_argument("--format", dest="fmt", default="ascii",
                        choices=FORMATS + ("md",),
                        help="output format (default: ascii)")
    parser.add_argument("--baseline", metavar="OLD",
                        help="diff the single INPUT against this baseline "
                             "(equivalent to: report diff OLD INPUT)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        metavar="T",
                        help="diff only: relative worsening tolerated before "
                             "the exit code turns non-zero (default: "
                             f"{DEFAULT_THRESHOLD:g} -- any regression fails)")
    parser.add_argument("--out", metavar="PATH",
                        help="also write the rendered report to PATH")
    parser.add_argument("--json", dest="json_path", metavar="PATH",
                        help="also write the schema-5 machine-readable "
                             "payload to PATH")
    return parser


def report_main(argv: list[str] | None = None) -> int:
    """Entry point of ``runner report``; returns the process exit code."""
    parser = _build_parser()
    arguments = parser.parse_args(argv)

    inputs = list(arguments.inputs)
    diff_mode = bool(inputs) and inputs[0] == "diff"
    if diff_mode:
        inputs = inputs[1:]
        if arguments.baseline:
            parser.error("use either 'report diff OLD NEW' or "
                         "'report NEW --baseline OLD', not both")
        if len(inputs) != 2:
            parser.error("report diff needs exactly two inputs: OLD NEW")
        baseline_path, candidate_path = inputs
    elif arguments.baseline:
        diff_mode = True
        if len(inputs) != 1:
            parser.error("--baseline compares exactly one INPUT against it")
        baseline_path, candidate_path = arguments.baseline, inputs[0]

    metrics = _split_list(arguments.metric)
    if not metrics:
        parser.error("--metric must name at least one metric")

    start = time.perf_counter()
    try:
        if diff_mode:
            if len(metrics) != 1:
                parser.error("diff compares exactly one --metric")
            result = diff_frames(load_frames([baseline_path]),
                                 load_frames([candidate_path]),
                                 metric=metrics[0],
                                 threshold=arguments.threshold)
            rendered = render_diff(result, arguments.fmt)
            exit_code = result.exit_code
        else:
            result = aggregate(load_frames(inputs),
                               group_by=_split_list(arguments.group_by),
                               metrics=metrics,
                               reducers=DEFAULT_REDUCERS)
            rendered = render_aggregate(result, arguments.fmt)
            exit_code = 0
    except FileNotFoundError as error:
        parser.error(f"input not found: {error.filename or error}")
    except ValueError as error:
        parser.error(str(error))
    elapsed = time.perf_counter() - start

    print(rendered)
    if arguments.out:
        out = Path(arguments.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(rendered + "\n")
    if arguments.json_path:
        from repro.experiments.serialize import experiment_payload

        payload = experiment_payload("report", result, elapsed_s=elapsed)
        path = Path(arguments.json_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")
    return exit_code


__all__ = ["report_main"]
