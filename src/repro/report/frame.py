"""The unified report frame: campaign stores and ``--json`` payloads as rows.

Every analysis in :mod:`repro.report` operates on one in-memory shape, the
:class:`ReportFrame`: a flat list of :class:`ReportRow`, one per (design x
configuration) run, regardless of whether the run came from a campaign
:class:`~repro.campaign.store.RunStore` file (legacy or unified format), a
unified :class:`~repro.store.ArtifactStore` holding campaign/payload
records, or an experiment ``--json`` payload (envelope schemas 1-6).  A
row carries

* a content-addressed ``job_id`` (the campaign job id, or a synthesised
  digest for table1 rows) that baseline diffs join on,
* the campaign *axes* (``design``, ``clock_period_ps``, ``extraction``,
  ``expansion``, ``solver``, ``subgraphs_per_iteration``, ``backend``,
  plus the ``source`` file it was loaded from), and
* the numeric *metrics* (register/stage/slack before and after, iteration
  and true-synthesis-evaluation counts, wall-clock runtimes where the
  source records them).

Loading is schema-tolerant: fields newer than the payload simply produce
rows without those metrics, so schema-1 payloads and schema-7 payloads
aggregate side by side.

A tiny in-memory example (runnable)::

    >>> row = ReportRow(job_id="ab12", source="demo", axes={"design": "rrot"},
    ...                 metrics={"registers_final": 12.0})
    >>> frame = ReportFrame([row])
    >>> frame.metric_names()
    ['registers_final']
    >>> frame.rows[0].value("design")
    'rrot'
    >>> frame.rows[0].value("registers_final")
    12.0
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.campaign.store import RunStore

#: Grouping axes a frame row may carry (besides metrics).
AXES = ("source", "design", "clock_period_ps", "extraction", "expansion",
        "solver", "subgraphs_per_iteration", "backend")

#: Axis aliases accepted by the CLI (`m` is the paper's subgraph budget).
AXIS_ALIASES = {"m": "subgraphs_per_iteration", "clock": "clock_period_ps"}


@dataclass(frozen=True)
class MetricSpec:
    """Direction and description of one report metric.

    Attributes:
        higher_is_better: orientation for regression detection (``False``
            for cost-like metrics such as registers or runtime).
        description: one-line meaning, surfaced by ``report --help``.
    """

    higher_is_better: bool
    description: str


#: Metrics the loaders know how to extract, with their orientation.
METRICS: dict[str, MetricSpec] = {
    "registers_initial": MetricSpec(False, "pipeline registers of the SDC baseline schedule"),
    "registers_final": MetricSpec(False, "pipeline registers after the ISDC loop"),
    "register_ratio": MetricSpec(False, "final/initial register ratio (paper Table I)"),
    "register_reduction": MetricSpec(True, "fractional register reduction, 1 - ratio"),
    "stages_initial": MetricSpec(False, "pipeline stages of the SDC baseline schedule"),
    "stages_final": MetricSpec(False, "pipeline stages after the ISDC loop"),
    "stage_ratio": MetricSpec(False, "final/initial stage ratio"),
    "slack_initial_ps": MetricSpec(False, "worst-stage slack of the baseline schedule"),
    "slack_final_ps": MetricSpec(False, "worst-stage slack after the ISDC loop"),
    "iterations": MetricSpec(False, "ISDC feedback iterations actually run"),
    "evaluations": MetricSpec(False, "true synthesis runs (cache answers excluded)"),
    "runtime_s": MetricSpec(False, "wall-clock runtime of the job/row"),
    "solver_time_s": MetricSpec(False, "cumulative LP re-solve time (schema >= 2)"),
    "synthesis_time_s": MetricSpec(False, "cumulative subgraph synthesis time (schema >= 2)"),
    "min_clock_ps": MetricSpec(False, "minimum feasible clock period found by the DSE search"),
    "min_ii": MetricSpec(False, "minimum feasible initiation interval found by the DSE min-ii search"),
    "dse_probes": MetricSpec(False, "clock-period probes the DSE search evaluated"),
    "warm_hit_rate": MetricSpec(True, "fraction of probes/requests served warm (DSE memo or patched re-solve; service cache hits)"),
    "lp_rebuilds": MetricSpec(False, "DSE probes that needed a full LP rebuild"),
    "requests_per_s": MetricSpec(True, "sustained scheduling-service throughput (service bench)"),
    "p50_latency_s": MetricSpec(False, "median per-request service latency (service bench)"),
    "p95_latency_s": MetricSpec(False, "95th-percentile per-request service latency (service bench)"),
    "coalesce_rate": MetricSpec(True, "fraction of requests coalesced into an in-flight duplicate (service bench)"),
    "warm_speedup": MetricSpec(True, "mean cold latency over mean warm latency (service bench)"),
}


def metric_spec(name: str) -> MetricSpec:
    """Look up a metric's orientation/description.

    Raises:
        ValueError: for an unknown metric, naming the known ones.
    """
    try:
        return METRICS[name]
    except KeyError:
        known = ", ".join(sorted(METRICS))
        raise ValueError(f"unknown metric {name!r}; known metrics: {known}")


def resolve_axis(name: str) -> str:
    """Canonicalise an axis name (resolving CLI aliases).

    Raises:
        ValueError: for an unknown axis, naming the known ones.
    """
    canonical = AXIS_ALIASES.get(name, name)
    if canonical not in AXES:
        known = ", ".join(AXES + tuple(sorted(AXIS_ALIASES)))
        raise ValueError(f"unknown axis {name!r}; known axes: {known}")
    return canonical


@dataclass(frozen=True)
class ReportRow:
    """One (design x configuration) run in the unified frame.

    Attributes:
        job_id: content-addressed identity the baseline diff joins on.
        source: label of the file the row was loaded from.
        axes: axis name -> value (missing axes are simply absent).
        metrics: metric name -> numeric value (missing metrics absent).
    """

    job_id: str
    source: str
    axes: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    def value(self, key: str):
        """Axis or metric value by name (``source`` included); None if absent."""
        if key == "source":
            return self.source
        if key in self.axes:
            return self.axes[key]
        return self.metrics.get(key)


@dataclass
class ReportFrame:
    """A flat collection of :class:`ReportRow` (order = load order)."""

    rows: list[ReportRow] = field(default_factory=list)

    def metric_names(self) -> list[str]:
        """Sorted names of metrics present on at least one row."""
        names: set[str] = set()
        for row in self.rows:
            names.update(row.metrics)
        return sorted(names)

    def by_job_id(self) -> dict[str, ReportRow]:
        """Map job id -> row (first occurrence wins on duplicates)."""
        index: dict[str, ReportRow] = {}
        for row in self.rows:
            index.setdefault(row.job_id, row)
        return index

    def extend(self, other: "ReportFrame") -> "ReportFrame":
        """Append another frame's rows (in place) and return self."""
        self.rows.extend(other.rows)
        return self


def _digest(payload) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:32]


def _derived_metrics(metrics: dict) -> None:
    """Fill ratio/reduction metrics in place where the inputs exist."""
    initial = metrics.get("registers_initial")
    final = metrics.get("registers_final")
    if initial and final is not None and initial > 0:
        metrics["register_ratio"] = final / initial
        metrics["register_reduction"] = 1.0 - final / initial
    s_initial = metrics.get("stages_initial")
    s_final = metrics.get("stages_final")
    if s_initial and s_final is not None and s_initial > 0:
        metrics["stage_ratio"] = s_final / s_initial


def _campaign_row(source: str, job_id: str, design: str, config: dict,
                  result: dict, runtime_s: float | None) -> ReportRow:
    """Build a frame row from one campaign job's (config, result) payloads."""
    axes = {"design": design}
    for axis in ("clock_period_ps", "extraction", "expansion", "solver",
                 "subgraphs_per_iteration", "backend"):
        if axis in config:
            axes[axis] = config[axis]
    metrics: dict = {}
    initial = result.get("initial", {})
    final = result.get("final", {})
    for key, payload, name in (
            ("registers", initial, "registers_initial"),
            ("registers", final, "registers_final"),
            ("stages", initial, "stages_initial"),
            ("stages", final, "stages_final"),
            ("slack_ps", initial, "slack_initial_ps"),
            ("slack_ps", final, "slack_final_ps")):
        if key in payload:
            metrics[name] = float(payload[key])
    for key in ("iterations", "evaluations"):
        if key in result:
            metrics[key] = float(result[key])
    if runtime_s is not None:
        metrics["runtime_s"] = float(runtime_s)
    _derived_metrics(metrics)
    return ReportRow(job_id=job_id, source=source, axes=axes, metrics=metrics)


def _job_configs_from_spec(spec_payload: dict) -> dict[str, dict]:
    """Re-expand a store header's spec into job id -> config payload.

    Store job records carry only ``(job_id, design, result)``; the axes live
    in the header's spec.  Re-expanding the spec recovers them.  An
    unparseable spec (e.g. from a newer writer) degrades to no axes rather
    than failing the load.
    """
    from repro.campaign.spec import CampaignSpec

    try:
        spec = CampaignSpec.from_dict(spec_payload)
        return {job.job_id: job.config for job in spec.jobs()}
    except (TypeError, ValueError):
        return {}


def load_run_store(path: str | Path, source: str | None = None) -> ReportFrame:
    """Load a campaign RunStore JSONL file into a frame.

    Job rows get their axes from the header's re-expanded spec and their
    ``runtime_s`` metric from the per-job checkpoint records.

    Raises:
        FileNotFoundError: no file at ``path``.
        ValueError: the file is corrupt or has no campaign header
            (:class:`~repro.campaign.store.StoreMismatchError` is a
            subclass of :class:`ValueError`).
    """
    path = Path(path)
    label = source if source is not None else path.name
    store = RunStore.load(path)
    configs = _job_configs_from_spec(store.header.get("spec", {}))
    rows = []
    for job_id, record in store.results.items():
        rows.append(_campaign_row(
            source=label, job_id=job_id,
            design=record.get("design", ""),
            config=configs.get(job_id, {}),
            result=record.get("result", {}),
            runtime_s=record.get("runtime_s")))
    # Store iteration order is insertion (= completion) order; reports want
    # the deterministic content-addressed order instead.
    rows.sort(key=lambda row: row.job_id)
    return ReportFrame(rows)


def _table1_rows(source: str, envelope: dict) -> list[ReportRow]:
    solver = envelope.get("solver")
    rows = []
    for raw in envelope.get("data", {}).get("rows", []):
        design = raw.get("benchmark", "")
        clock = raw.get("clock_period_ps")
        axes = {"design": design}
        if clock is not None:
            axes["clock_period_ps"] = clock
        if solver is not None:
            axes["solver"] = solver
        metrics: dict = {}
        for key, name in (("sdc_registers", "registers_initial"),
                          ("isdc_registers", "registers_final"),
                          ("sdc_stages", "stages_initial"),
                          ("isdc_stages", "stages_final"),
                          ("sdc_slack_ps", "slack_initial_ps"),
                          ("isdc_slack_ps", "slack_final_ps"),
                          ("isdc_iterations", "iterations"),
                          ("isdc_evaluations", "evaluations"),
                          ("isdc_time_s", "runtime_s"),
                          ("isdc_solver_time_s", "solver_time_s"),
                          ("isdc_synthesis_time_s", "synthesis_time_s")):
            if key in raw:
                metrics[name] = float(raw[key])
        _derived_metrics(metrics)
        # Synthesised join key: stable across runs of the same benchmark row.
        job_id = _digest({"experiment": "table1", "design": design,
                          "clock_period_ps": clock})
        rows.append(ReportRow(job_id=job_id, source=source, axes=axes,
                              metrics=metrics))
    return rows


def _dse_rows(source: str, envelope: dict) -> list[ReportRow]:
    data = envelope.get("data", {})
    mode = data.get("mode", "minclock")
    rows = []
    for raw in data.get("designs", []):
        design = raw.get("design", "")
        axes = {"design": design}
        start = raw.get("start_clock_ps")
        if start is not None:
            axes["clock_period_ps"] = start
        metrics: dict = {}
        if raw.get("min_clock_ps") is not None:
            metrics["min_clock_ps"] = float(raw["min_clock_ps"])
        if raw.get("min_ii") is not None:
            metrics["min_ii"] = float(raw["min_ii"])
        if "num_probes" in raw:
            metrics["dse_probes"] = float(raw["num_probes"])
        warm = raw.get("warm", {})
        for key, name in (("warm_hit_rate", "warm_hit_rate"),
                          ("lp_rebuilds", "lp_rebuilds"),
                          ("solve_time_s", "solver_time_s")):
            if key in warm:
                metrics[name] = float(warm[key])
        if "elapsed_s" in raw:
            metrics["runtime_s"] = float(raw["elapsed_s"])
        # Synthesised join key: stable across runs of the same search, so
        # `report diff` can gate a branch's min_clock_ps against main's.
        job_id = _digest({"experiment": "dse", "design": design,
                          "mode": mode, "start_clock_ps": start})
        rows.append(ReportRow(job_id=job_id, source=source, axes=axes,
                              metrics=metrics))
    return rows


def _service_rows(source: str, envelope: dict) -> list[ReportRow]:
    """One row per service benchmark run (schema >= 8 ``service`` payloads).

    All metrics are wall-clock-derived measurements; ``report diff``
    gates them with thresholds, direction-aware (throughput and hit
    rates up, latencies down).
    """
    data = envelope.get("data", {})
    workload = data.get("workload", {})
    metrics: dict = {}
    for key in ("requests_per_s", "p50_latency_s", "p95_latency_s",
                "warm_hit_rate", "coalesce_rate", "warm_speedup"):
        if data.get(key) is not None:
            metrics[key] = float(data[key])
    if data.get("elapsed_s") is not None:
        metrics["runtime_s"] = float(data["elapsed_s"])
    # Synthesised join key: stable across runs of the same workload shape,
    # so `report diff BENCH_service.json fresh.json` joins on it.
    job_id = _digest({"experiment": "service",
                      "workload": workload.get("name"),
                      "submitted": workload.get("submitted"),
                      "dup": workload.get("dup"),
                      "hot_fraction": workload.get("hot_fraction")})
    return [ReportRow(job_id=job_id, source=source,
                      axes={"design": f"service:{workload.get('name', '?')}"},
                      metrics=metrics)]


def _campaign_payload_rows(source: str, envelope: dict) -> list[ReportRow]:
    return [
        _campaign_row(source=source, job_id=job.get("job_id", ""),
                      design=job.get("design", ""),
                      config=job.get("config", {}),
                      result=job.get("result", {}),
                      runtime_s=None)
        for job in envelope.get("data", {}).get("jobs", [])
    ]


def _payload_envelope_rows(label: str, envelope: dict,
                           origin: str) -> list[ReportRow]:
    """Rows of one runner payload envelope; raises for row-less payloads."""
    experiment = envelope.get("experiment")
    if experiment == "campaign":
        return _campaign_payload_rows(label, envelope)
    if experiment == "table1":
        return _table1_rows(label, envelope)
    if experiment == "dse":
        return _dse_rows(label, envelope)
    if experiment == "service":
        return _service_rows(label, envelope)
    raise ValueError(
        f"cannot build report rows from the {experiment!r} payload in "
        f"{origin}; supported experiments: campaign, dse, service, table1")


def load_experiment_payload(path: str | Path,
                            source: str | None = None) -> ReportFrame:
    """Load a runner ``--json`` payload (envelope schemas 1-8) into a frame.

    Supported experiments: ``campaign`` (one row per job, axes from each
    job's config), ``table1`` (one row per benchmark, SDC columns as the
    ``*_initial`` metrics), ``dse`` (one row per searched design with
    the ``min_clock_ps`` / warm-start metrics) and ``service`` (one row
    per benchmark run with throughput/latency/hit-rate metrics).  The
    figure payloads carry
    curves rather than per-run records and are rejected with a clear
    error.

    Raises:
        ValueError: not a runner payload, or an unsupported experiment.
    """
    path = Path(path)
    label = source if source is not None else path.name
    envelope = json.loads(path.read_text())
    if not isinstance(envelope, dict) or "experiment" not in envelope:
        raise ValueError(f"{path} is not a runner --json payload "
                         "(no 'experiment' field)")
    rows = _payload_envelope_rows(label, envelope, str(path))
    rows.sort(key=lambda row: row.job_id)
    return ReportFrame(rows)


def load_artifact_store(path: str | Path,
                        source: str | None = None) -> ReportFrame:
    """Load a unified artifact store (:mod:`repro.store`) into a frame.

    Campaign records (``campaign-header`` + ``campaign-job``) become the
    same rows :func:`load_run_store` produces -- axes re-expanded from each
    header's spec, ``runtime_s`` from the job bodies; a store holding
    several campaigns loads them all (job ids are content-addressed, so
    they cannot collide).  Archived ``payload`` records contribute rows
    for the row-shaped experiments (campaign/table1/dse); figure payloads
    and ``synth-eval`` / ``dse-probe`` records carry no per-run rows and
    are skipped.

    Raises:
        FileNotFoundError: no file at ``path``.
        ValueError: mid-file corruption (strict store load).
    """
    from repro.store import ArtifactStore

    path = Path(path)
    label = source if source is not None else path.name
    store = ArtifactStore.load(path)
    configs: dict[str, dict] = {}
    for header in store.kind("campaign-header"):
        configs.update(_job_configs_from_spec(header.body.get("spec", {})))
    rows = []
    for record in store.kind("campaign-job"):
        body = record.body
        rows.append(_campaign_row(
            source=label, job_id=record.key,
            design=body.get("design", ""),
            config=configs.get(record.key, {}),
            result=body.get("result", {}),
            runtime_s=body.get("runtime_s")))
    for record in store.kind("payload"):
        try:
            rows.extend(_payload_envelope_rows(label, record.body, str(path)))
        except ValueError:
            continue  # archived figure/report payloads carry no rows
    rows.sort(key=lambda row: row.job_id)
    return ReportFrame(rows)


def load_any(path: str | Path, source: str | None = None) -> ReportFrame:
    """Load any supported input kind by sniffing the first line.

    A file whose first line is a legacy ``{"kind": "header", ...}`` record
    is a pre-unification campaign RunStore; a store envelope (``kind`` /
    ``key`` / ``schema`` / ``body``) marks a unified artifact store;
    anything else must be a runner ``--json`` payload.

    Raises:
        FileNotFoundError: no file at ``path``.
        ValueError: neither a store, a run store nor a supported payload.
    """
    from repro.store import is_store_record

    path = Path(path)
    with path.open() as handle:
        first_line = handle.readline()
    try:
        first = json.loads(first_line)
    except json.JSONDecodeError:
        first = None
    if is_store_record(first):
        return load_artifact_store(path, source=source)
    if isinstance(first, dict) and first.get("kind") == "header":
        return load_run_store(path, source=source)
    return load_experiment_payload(path, source=source)


def load_frames(paths: Iterable[str | Path]) -> ReportFrame:
    """Load and concatenate several inputs into one frame.

    Rows are labelled with their file's basename; when two inputs share a
    basename (``runs/main/sweep.jsonl`` vs ``runs/branch/sweep.jsonl``)
    the full path is used instead, so the ``source`` axis always
    distinguishes the inputs.
    """
    paths = [Path(path) for path in paths]
    names = [path.name for path in paths]
    frame = ReportFrame()
    for path, name in zip(paths, names):
        label = name if names.count(name) == 1 else str(path)
        frame.extend(load_any(path, source=label))
    return frame


__all__ = [
    "AXES",
    "AXIS_ALIASES",
    "METRICS",
    "MetricSpec",
    "ReportFrame",
    "ReportRow",
    "load_any",
    "load_artifact_store",
    "load_experiment_payload",
    "load_frames",
    "load_run_store",
    "metric_spec",
    "resolve_axis",
]
