"""Axis grouping and metric reduction over a report frame.

:func:`aggregate` groups a :class:`~repro.report.frame.ReportFrame` by any
combination of campaign axes and reduces each requested metric with the
paper's summary statistics: ``geomean`` (Table I's column summary),
``mean``, ``p50``/``p95`` (interpolated percentiles), ``min``/``max`` and
``sum``, plus the group's sample ``count``.

Reducers never leak ``nan``: a reducer that is undefined for a group's
sample (an empty sample, or a geomean over zeros) yields ``None``, which
the renderers print as ``n/a``.

A runnable example::

    >>> from repro.report.frame import ReportFrame, ReportRow
    >>> frame = ReportFrame([
    ...     ReportRow("a1", "demo", {"design": "x"}, {"registers_final": 2.0}),
    ...     ReportRow("a2", "demo", {"design": "x"}, {"registers_final": 8.0}),
    ...     ReportRow("b1", "demo", {"design": "y"}, {"registers_final": 5.0}),
    ... ])
    >>> report = aggregate(frame, group_by=("design",),
    ...                    metrics=("registers_final",),
    ...                    reducers=("count", "geomean"))
    >>> [(g.key, round(g.values["registers_final"]["geomean"], 9))
    ...  for g in report.groups]
    [(('x',), 4.0), (('y',), 5.0)]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.tables import geometric_mean, percentile
from repro.report.frame import ReportFrame, metric_spec, resolve_axis


def _reduce_geomean(values: list[float]) -> float | None:
    try:
        return geometric_mean(values)
    except ValueError:
        return None  # zeros/negatives in the sample: geomean undefined


def _reduce_mean(values: list[float]) -> float:
    return sum(values) / len(values)


#: Reducer name -> function over a non-empty sample.
REDUCERS = {
    "count": len,
    "geomean": _reduce_geomean,
    "mean": _reduce_mean,
    "p50": lambda values: percentile(values, 50.0),
    "p95": lambda values: percentile(values, 95.0),
    "min": min,
    "max": max,
    "sum": sum,
}

#: The default reducer columns of ``runner report``.
DEFAULT_REDUCERS = ("count", "geomean", "mean", "p50", "p95")


@dataclass(frozen=True)
class AggregateGroup:
    """One group of the aggregation.

    Attributes:
        key: the group's axis values, in ``group_by`` order.
        count: rows in the group.
        values: metric name -> reducer name -> value (``None`` where the
            reducer is undefined for the group's sample).
    """

    key: tuple
    count: int
    values: dict


@dataclass
class AggregateReport:
    """Result of :func:`aggregate`, ready for rendering/serialisation."""

    group_by: tuple[str, ...]
    metrics: tuple[str, ...]
    reducers: tuple[str, ...]
    groups: list[AggregateGroup] = field(default_factory=list)
    num_rows: int = 0

    def to_payload(self) -> dict:
        """Plain JSON-serialisable form (the ``--format json`` body)."""
        return {
            "kind": "summary",
            "group_by": list(self.group_by),
            "metrics": list(self.metrics),
            "reducers": list(self.reducers),
            "num_rows": self.num_rows,
            "groups": [
                {"key": dict(zip(self.group_by, group.key)),
                 "count": group.count,
                 "values": group.values}
                for group in self.groups
            ],
        }


def aggregate(frame: ReportFrame,
              group_by: Sequence[str] = ("design",),
              metrics: Sequence[str] = ("registers_final",),
              reducers: Sequence[str] = DEFAULT_REDUCERS) -> AggregateReport:
    """Group a frame's rows by axes and reduce each metric per group.

    Args:
        frame: the unified frame to aggregate.
        group_by: axis names (CLI aliases like ``m`` are resolved); rows
            missing an axis group under the value ``None``.
        metrics: metric names to reduce (must be known metrics).
        reducers: reducer names from :data:`REDUCERS`.

    Returns:
        An :class:`AggregateReport` whose groups are sorted by their
        stringified keys (deterministic regardless of load order).

    Raises:
        ValueError: unknown axis, metric, or reducer name.
    """
    axes = tuple(resolve_axis(name) for name in group_by)
    for name in metrics:
        metric_spec(name)  # raises with the known-metric list
    for name in reducers:
        if name not in REDUCERS:
            known = ", ".join(REDUCERS)
            raise ValueError(f"unknown reducer {name!r}; known: {known}")

    buckets: dict[tuple, list] = {}
    for row in frame.rows:
        key = tuple(row.value(axis) for axis in axes)
        buckets.setdefault(key, []).append(row)

    groups = []
    for key in sorted(buckets, key=lambda k: tuple(str(part) for part in k)):
        rows = buckets[key]
        values: dict = {}
        for metric in metrics:
            sample = [row.metrics[metric] for row in rows
                      if metric in row.metrics]
            per_reducer = {}
            for reducer in reducers:
                if reducer == "count":
                    per_reducer[reducer] = len(sample)  # 0, never n/a
                else:
                    per_reducer[reducer] = (REDUCERS[reducer](sample)
                                            if sample else None)
            values[metric] = per_reducer
        groups.append(AggregateGroup(key=key, count=len(rows), values=values))
    return AggregateReport(group_by=axes, metrics=tuple(metrics),
                           reducers=tuple(reducers), groups=groups,
                           num_rows=len(frame.rows))


__all__ = ["AggregateGroup", "AggregateReport", "DEFAULT_REDUCERS",
           "REDUCERS", "aggregate"]
