"""The campaign run store: an append-only JSONL checkpoint file.

Layout: one header record followed by one record per completed job::

    {"kind": "header", "schema": 1, "name": ..., "fingerprint": ...,
     "num_jobs": N, "spec": {...}}
    {"kind": "job", "job_id": ..., "design": ..., "result": {...},
     "runtime_s": ...}

The store is the campaign's durability layer: the executor appends (and
flushes) a record the moment a job completes, so killing a sweep loses at
most the jobs in flight.  On resume the header's spec fingerprint must match
the requested spec -- a store can never silently satisfy a *different*
campaign -- and already-recorded job ids are skipped.

A kill can leave a torn final line (no trailing newline, or half-written
JSON).  Loading tolerates exactly that: a corrupt *trailing* line is
truncated away (its job simply re-runs) while corruption anywhere earlier is
an error, because records behind it may then be unreachable garbage.

Everything in the ``result`` payload is deterministic (no wall-clock
fields); per-job ``runtime_s`` lives beside it and never enters
:meth:`RunStore.final_payload`, so two stores of the same campaign --
interrupted-and-resumed or not, under any ``PYTHONHASHSEED`` -- agree byte
for byte on the final payload.

An in-memory store (``path=None``) exercises the same record/export
machinery without touching disk::

    >>> from repro.campaign.spec import CampaignSpec
    >>> spec = CampaignSpec(name="demo", designs=["rrot"],
    ...                     subgraph_counts=[4], max_iterations=2,
    ...                     backend="estimator",
    ...                     use_characterized_delays=False)
    >>> store = RunStore()                  # in-memory: no durability
    >>> store.open(spec)
    >>> job = spec.jobs()[0]
    >>> store.record(job, {"final": {"registers": 9}}, runtime_s=0.1)
    >>> store.completed == {job.job_id}
    True
    >>> store.missing(spec)
    []
    >>> store.final_payload(spec)["jobs"][0]["result"]
    {'final': {'registers': 9}}

For *analysis* of a finished (or interrupted) store -- where the spec is
whatever the file says it is -- use :meth:`RunStore.load`, which reads any
campaign's store without demanding a matching spec.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.campaign.spec import CampaignJob, CampaignSpec

STORE_SCHEMA_VERSION = 1


class StoreMismatchError(ValueError):
    """The store on disk belongs to a different campaign or schema."""


def _parse_store_file(path: Path) -> tuple[list[dict], list[bytes], bytes]:
    """Parse a store file into ``(records, complete lines, torn tail)``.

    A corrupt *trailing* line (the signature of a kill mid-append) is
    tolerated and returned as the tail; corruption anywhere earlier raises.

    Raises:
        ValueError: the file is corrupt before its final line.
    """
    raw = path.read_bytes()
    lines = raw.split(b"\n")
    # Everything after the final newline is a torn tail (possibly empty).
    complete, tail = lines[:-1], lines[-1]
    records = []
    for position, line in enumerate(complete):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if position == len(complete) - 1 and not tail:
                tail = line  # corrupt final line, newline and all
                complete = complete[:position]
                break
            raise ValueError(
                f"run store {path} is corrupt at line {position + 1}; "
                "only the trailing line of an interrupted run may be torn")
    return records, complete, tail


class RunStore:
    """Checkpointed results of one campaign, keyed by job id.

    Args:
        path: JSONL file backing the store; ``None`` keeps everything in
            memory (no durability, useful for API runs and tests).

    Attributes:
        path: the backing file (or ``None``).
        results: job id -> job record (``design``, ``result``, ``runtime_s``).
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.results: dict[str, dict] = {}
        self._header: dict | None = None

    # ------------------------------------------------------------- lifecycle

    def open(self, spec: "CampaignSpec", resume: bool = False,
             jobs: "list[CampaignJob] | None" = None) -> None:
        """Bind the store to ``spec``, loading checkpoints when resuming.

        Args:
            spec: the campaign about to run.
            resume: load an existing file instead of refusing to overwrite.
            jobs: the spec's expanded job list, if the caller already has it
                (saves re-expanding the cross product).

        Raises:
            FileExistsError: the file exists and ``resume`` is false.
            StoreMismatchError: the file's header disagrees with ``spec``.
            ValueError: the file is corrupt before its final line.
        """
        self._header = {
            "kind": "header",
            "schema": STORE_SCHEMA_VERSION,
            "name": spec.name,
            "fingerprint": spec.fingerprint(),
            "num_jobs": len(spec.jobs() if jobs is None else jobs),
            "spec": spec.to_dict(),
        }
        if self.path is None:
            return
        if self.path.exists() and self.path.stat().st_size > 0:
            if not resume:
                raise FileExistsError(
                    f"run store {self.path} already exists; pass resume=True "
                    "(--resume) to continue it or choose another path")
            self._load()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("w") as handle:
                handle.write(json.dumps(self._header) + "\n")

    def _load(self) -> None:
        records, complete, tail = _parse_store_file(self.path)
        header = self._check_header(records)
        if header.get("fingerprint") != self._header["fingerprint"]:
            raise StoreMismatchError(
                f"run store {self.path} belongs to campaign "
                f"{header.get('name')!r} (fingerprint "
                f"{header.get('fingerprint')!r}); it cannot resume this one")
        for record in records[1:]:
            if record.get("kind") == "job" and "job_id" in record:
                self.results[record["job_id"]] = record
        if tail:
            # Drop the torn line so future appends start on a clean boundary.
            kept = b"\n".join(complete) + b"\n" if complete else b""
            self.path.write_bytes(kept)

    def _check_header(self, records: list[dict]) -> dict:
        """Validate the store's first record and return it.

        Raises:
            StoreMismatchError: no header record, or a foreign schema.
        """
        if not records or records[0].get("kind") != "header":
            raise StoreMismatchError(
                f"run store {self.path} has no campaign header")
        header = records[0]
        if header.get("schema") != STORE_SCHEMA_VERSION:
            raise StoreMismatchError(
                f"run store {self.path} has schema {header.get('schema')}, "
                f"expected {STORE_SCHEMA_VERSION}")
        return header

    # ------------------------------------------------------------- analysis

    @classmethod
    def load(cls, path: str | Path) -> "RunStore":
        """Open an existing store read-only, for analysis.

        Unlike :meth:`open`, no spec is required: the header on disk *is*
        the campaign identity, so any store -- finished, interrupted, even
        one with a torn trailing line -- loads as-is (the file is never
        modified; a torn tail is simply ignored).  This is the entry point
        the report engine (:mod:`repro.report`) uses.

        Raises:
            FileNotFoundError: no file at ``path``.
            StoreMismatchError: the file has no campaign header or a
                foreign store schema.
            ValueError: the file is corrupt before its final line.
        """
        store = cls(path)
        records, _, _ = _parse_store_file(store.path)
        store._header = store._check_header(records)
        for record in records[1:]:
            if record.get("kind") == "job" and "job_id" in record:
                store.results[record["job_id"]] = record
        return store

    @property
    def header(self) -> dict | None:
        """The campaign header (name, fingerprint, job count, full spec)."""
        return self._header

    # --------------------------------------------------------------- records

    def record(self, job: "CampaignJob", result: dict,
               runtime_s: float) -> None:
        """Checkpoint one completed job (appended and flushed immediately)."""
        entry = {
            "kind": "job",
            "job_id": job.job_id,
            "design": job.design,
            "result": result,
            "runtime_s": runtime_s,
        }
        self.results[job.job_id] = entry
        if self.path is None:
            return
        with self.path.open("a") as handle:
            handle.write(json.dumps(entry) + "\n")
            handle.flush()

    @property
    def completed(self) -> set[str]:
        """Ids of all checkpointed jobs."""
        return set(self.results)

    def missing(self, spec: "CampaignSpec",
                jobs: "list[CampaignJob] | None" = None) -> list["CampaignJob"]:
        """The spec's jobs that have no checkpoint yet, in canonical order."""
        jobs = spec.jobs() if jobs is None else jobs
        return [job for job in jobs if job.job_id not in self.results]

    # ---------------------------------------------------------------- export

    def final_payload(self, spec: "CampaignSpec",
                      jobs: "list[CampaignJob] | None" = None) -> dict:
        """Deterministic summary of the whole campaign.

        Jobs appear in the spec's canonical order with their deterministic
        ``result`` payloads only -- no wall-clock fields -- so the payload is
        byte-identical across runs, resumes and ``PYTHONHASHSEED`` values.

        Raises:
            KeyError: if any job of the spec has not completed yet.
        """
        entries = []
        for job in (spec.jobs() if jobs is None else jobs):
            record = self.results[job.job_id]
            entries.append({
                "job_id": job.job_id,
                "design": job.design,
                "config": job.config,
                "result": record["result"],
            })
        return {
            "schema": STORE_SCHEMA_VERSION,
            "name": spec.name,
            "fingerprint": spec.fingerprint(),
            "num_jobs": len(entries),
            "jobs": entries,
        }


__all__ = ["RunStore", "StoreMismatchError", "STORE_SCHEMA_VERSION"]
