"""The campaign run store: a typed view over the unified artifact store.

On disk a campaign is a set of unified store records
(:mod:`repro.store`): one ``campaign-header`` record (key = the spec's
fingerprint) and one ``campaign-job`` record per completed job (key = the
content-addressed job id)::

    {"kind": "campaign-header", "key": "<fingerprint>", "schema": 2,
     "body": {"name": ..., "fingerprint": ..., "num_jobs": N, "spec": {...}}}
    {"kind": "campaign-job", "key": "<job id>", "schema": 2,
     "body": {"design": ..., "result": {...}, "runtime_s": ...}}

The store is the campaign's durability layer: the executor appends (and
flushes) a record the moment a job completes, so killing a sweep loses at
most the jobs in flight.  On resume the header's spec fingerprint must match
the requested spec -- a store can never silently satisfy a *different*
campaign -- and already-recorded job ids are skipped.  Because job ids are
content hashes of ``(design, config)``, a store file may safely hold other
record kinds (cache entries, payloads) alongside a campaign; the view only
reads its own kinds.

A kill can leave a torn final line (no trailing newline, or half-written
JSON).  Loading tolerates exactly that -- the shared parser lives in
:mod:`repro.store.jsonl` now -- a corrupt *trailing* line is truncated away
(its job simply re-runs) while corruption anywhere earlier is an error.
Legacy schema-1 run stores (the pre-unification ``{"kind": "header"}``
format) still load everywhere, and resuming one migrates it to the unified
format in place first.

Everything in the ``result`` payload is deterministic (no wall-clock
fields); per-job ``runtime_s`` lives beside it and never enters
:meth:`RunStore.final_payload`, so two stores of the same campaign --
interrupted-and-resumed or not, before or after ``runner store compact``,
under any ``PYTHONHASHSEED`` -- agree byte for byte on the final payload.

An in-memory store (``path=None``) exercises the same record/export
machinery without touching disk::

    >>> from repro.campaign.spec import CampaignSpec
    >>> spec = CampaignSpec(name="demo", designs=["rrot"],
    ...                     subgraph_counts=[4], max_iterations=2,
    ...                     backend="estimator",
    ...                     use_characterized_delays=False)
    >>> store = RunStore()                  # in-memory: no durability
    >>> store.open(spec)
    >>> job = spec.jobs()[0]
    >>> store.record(job, {"final": {"registers": 9}}, runtime_s=0.1)
    >>> store.completed == {job.job_id}
    True
    >>> store.missing(spec)
    []
    >>> store.final_payload(spec)["jobs"][0]["result"]
    {'final': {'registers': 9}}

For *analysis* of a finished (or interrupted) store -- where the spec is
whatever the file says it is -- use :meth:`RunStore.load`, which reads any
campaign's store (either format) without demanding a matching spec.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.store import (ArtifactStore, campaign_header_record,
                         campaign_job_record, migrate_records, sniff_format)
# Re-exported for backward compatibility: the torn-tail parser used to be
# private here and is now the shared crash-tolerance primitive.
from repro.store.jsonl import parse_jsonl_tail  # noqa: F401
from repro.store.migrate import CAMPAIGN_BODY_SCHEMA

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.campaign.spec import CampaignJob, CampaignSpec

#: Campaign body schema in the unified store (1 was the legacy standalone
#: JSONL format; 2 is the unified-record form).
STORE_SCHEMA_VERSION = CAMPAIGN_BODY_SCHEMA
LEGACY_STORE_SCHEMA_VERSION = 1


class StoreMismatchError(ValueError):
    """The store on disk belongs to a different campaign or schema."""


def _legacy_records_to_store(records) -> tuple[dict | None, dict[str, dict]]:
    """Split migrated records into ``(header body, job_id -> job body)``."""
    header = None
    results: dict[str, dict] = {}
    for record in records:
        if record.kind == "campaign-header" and header is None:
            header = record.body
        elif record.kind == "campaign-job":
            results[record.key] = record.body
    return header, results


class RunStore:
    """Checkpointed results of one campaign, keyed by job id.

    Args:
        path: store file backing the campaign; ``None`` keeps everything
            in memory (no durability, useful for API runs and tests).

    Attributes:
        path: the backing file (or ``None``).
        results: job id -> job body (``design``, ``result``, ``runtime_s``).
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.results: dict[str, dict] = {}
        self._header: dict | None = None
        self._store: ArtifactStore | None = None

    # ------------------------------------------------------------- lifecycle

    def open(self, spec: "CampaignSpec", resume: bool = False,
             jobs: "list[CampaignJob] | None" = None) -> None:
        """Bind the store to ``spec``, loading checkpoints when resuming.

        Args:
            spec: the campaign about to run.
            resume: load an existing file instead of refusing to overwrite.
            jobs: the spec's expanded job list, if the caller already has it
                (saves re-expanding the cross product).

        Raises:
            FileExistsError: the file exists and ``resume`` is false.
            StoreMismatchError: the file's header disagrees with ``spec``.
            ValueError: the file is corrupt before its final line.
        """
        self._header = {
            "name": spec.name,
            "fingerprint": spec.fingerprint(),
            "num_jobs": len(spec.jobs() if jobs is None else jobs),
            "spec": spec.to_dict(),
        }
        if self.path is None:
            return
        self._store = ArtifactStore(self.path)
        if self.path.exists() and self.path.stat().st_size > 0:
            if not resume:
                raise FileExistsError(
                    f"run store {self.path} already exists; pass resume=True "
                    "(--resume) to continue it or choose another path")
            self._migrate_legacy_in_place()
            self._load()
        else:
            self._store.open_for_append()
            self._store.put(campaign_header_record(self._header))

    def _migrate_legacy_in_place(self) -> None:
        """Rewrite a legacy schema-1 file as unified records before resuming."""
        if sniff_format(self.path) != "run-store-v1":
            return
        self._check_legacy_schema()
        _, records = migrate_records(self.path)
        ArtifactStore(self.path).replace_with(records)
        self._store = ArtifactStore(self.path)

    def _check_legacy_schema(self) -> None:
        records, _, _, _ = parse_jsonl_tail(self.path, tolerant=False)
        header = records[0] if records else {}
        if header.get("kind") != "header":
            raise StoreMismatchError(
                f"run store {self.path} has no campaign header")
        if header.get("schema") != LEGACY_STORE_SCHEMA_VERSION:
            raise StoreMismatchError(
                f"run store {self.path} has schema {header.get('schema')}, "
                f"expected {LEGACY_STORE_SCHEMA_VERSION} or "
                f"{STORE_SCHEMA_VERSION}")

    def _load(self) -> None:
        store = self._store.open_for_append()
        header = self._find_header(store, self.path)
        if header.get("fingerprint") != self._header["fingerprint"]:
            raise StoreMismatchError(
                f"run store {self.path} belongs to campaign "
                f"{header.get('name')!r} (fingerprint "
                f"{header.get('fingerprint')!r}); it cannot resume this one")
        for record in store.kind("campaign-job"):
            self.results[record.key] = record.body

    def _find_header(self, store: ArtifactStore, path: Path) -> dict:
        """Pick this campaign's header record, validating its schema.

        The header under the requested spec's fingerprint wins (a shared
        store may hold several campaigns); with no bound spec -- or no
        exact match -- the first header in the file is returned so the
        mismatch error can name the foreign campaign.

        Raises:
            StoreMismatchError: no header record, or a foreign schema.
        """
        wanted = (self._header or {}).get("fingerprint")
        if wanted is not None:
            exact = store.get("campaign-header", wanted)
            if exact is not None:
                return self._validated_header(exact, path)
        for record in store.kind("campaign-header"):
            return self._validated_header(record, path)
        raise StoreMismatchError(f"run store {path} has no campaign header")

    @staticmethod
    def _validated_header(record, path: Path) -> dict:
        if record.schema != STORE_SCHEMA_VERSION:
            raise StoreMismatchError(
                f"run store {path} has campaign schema {record.schema}, "
                f"expected {STORE_SCHEMA_VERSION}")
        return record.body

    # ------------------------------------------------------------- analysis

    @classmethod
    def load(cls, path: str | Path) -> "RunStore":
        """Open an existing store read-only, for analysis.

        Unlike :meth:`open`, no spec is required: the header on disk *is*
        the campaign identity, so any store -- finished, interrupted, even
        one with a torn trailing line -- loads as-is (the file is never
        modified; a torn tail is simply ignored).  Legacy schema-1 files
        load equally.  This is the entry point the report engine
        (:mod:`repro.report`) uses.

        Raises:
            FileNotFoundError: no file at ``path``.
            StoreMismatchError: the file has no campaign header or a
                foreign store schema.
            ValueError: the file is corrupt before its final line.
        """
        store = cls(path)
        detected = sniff_format(store.path)
        if detected not in ("store", "run-store-v1"):
            # Headerless or foreign files are a mismatch, not corruption.
            raise StoreMismatchError(
                f"run store {path} has no campaign header")
        if detected == "run-store-v1":
            store._check_legacy_schema()
            _, records = migrate_records(store.path)
            header, results = _legacy_records_to_store(records)
            if header is None:
                raise StoreMismatchError(
                    f"run store {path} has no campaign header")
            store._header = header
            store.results = results
            return store
        artifacts = ArtifactStore.load(store.path)
        store._header = store._find_header(artifacts, store.path)
        for record in artifacts.kind("campaign-job"):
            store.results[record.key] = record.body
        return store

    @property
    def header(self) -> dict | None:
        """The campaign header (name, fingerprint, job count, full spec)."""
        return self._header

    # --------------------------------------------------------------- records

    def record(self, job: "CampaignJob", result: dict,
               runtime_s: float) -> None:
        """Checkpoint one completed job (appended and flushed immediately)."""
        body = {
            "design": job.design,
            "result": result,
            "runtime_s": runtime_s,
        }
        self.results[job.job_id] = body
        if self._store is not None:
            self._store.put(campaign_job_record(job.job_id, body))

    @property
    def completed(self) -> set[str]:
        """Ids of all checkpointed jobs."""
        return set(self.results)

    def missing(self, spec: "CampaignSpec",
                jobs: "list[CampaignJob] | None" = None) -> list["CampaignJob"]:
        """The spec's jobs that have no checkpoint yet, in canonical order."""
        jobs = spec.jobs() if jobs is None else jobs
        return [job for job in jobs if job.job_id not in self.results]

    # ---------------------------------------------------------------- export

    def final_payload(self, spec: "CampaignSpec",
                      jobs: "list[CampaignJob] | None" = None) -> dict:
        """Deterministic summary of the whole campaign.

        Jobs appear in the spec's canonical order with their deterministic
        ``result`` payloads only -- no wall-clock fields -- so the payload is
        byte-identical across runs, resumes, compactions and
        ``PYTHONHASHSEED`` values.

        Raises:
            KeyError: if any job of the spec has not completed yet.
        """
        entries = []
        for job in (spec.jobs() if jobs is None else jobs):
            record = self.results[job.job_id]
            entries.append({
                "job_id": job.job_id,
                "design": job.design,
                "config": job.config,
                "result": record["result"],
            })
        return {
            "schema": STORE_SCHEMA_VERSION,
            "name": spec.name,
            "fingerprint": spec.fingerprint(),
            "num_jobs": len(entries),
            "jobs": entries,
        }


__all__ = ["LEGACY_STORE_SCHEMA_VERSION", "RunStore", "StoreMismatchError",
           "STORE_SCHEMA_VERSION", "parse_jsonl_tail"]
