"""Campaign engine: resumable (design x IsdcConfig) sweeps at scale.

The campaign subsystem turns the one-experiment-at-a-time runner into a
sweep workload: a :class:`~repro.campaign.spec.CampaignSpec` describes the
axes, the executor shards the expanded jobs over a process pool, and the
:class:`~repro.campaign.store.RunStore` checkpoints every completed job to
an append-only JSONL file so interrupted campaigns resume instead of
restarting.  See ``python -m repro.experiments.runner campaign --help``.
"""

from repro.campaign.executor import CampaignRunResult, execute_job, run_campaign
from repro.campaign.spec import CampaignJob, CampaignSpec, quick_spec
from repro.campaign.store import (LEGACY_STORE_SCHEMA_VERSION, RunStore,
                                  StoreMismatchError, STORE_SCHEMA_VERSION)

__all__ = [
    "CampaignJob",
    "LEGACY_STORE_SCHEMA_VERSION",
    "CampaignRunResult",
    "CampaignSpec",
    "RunStore",
    "StoreMismatchError",
    "STORE_SCHEMA_VERSION",
    "execute_job",
    "quick_spec",
    "run_campaign",
]
