"""The sharded campaign executor: runs sweep jobs with checkpointed resume.

Jobs are shipped to worker processes as ``(design name, config payload)``
pairs -- both plain picklable data -- and re-built worker-side through the
design registry (:func:`repro.designs.generator.case_from_name`) and
:meth:`~repro.isdc.config.IsdcConfig.from_payload`, the same scheme the
Table-I harness uses for its process-pool fan-out.  Results stream back in
completion order and are checkpointed into the :class:`~repro.campaign.store.RunStore`
immediately, so an interrupted campaign resumes from its completed jobs.

Each job's ``result`` payload contains only deterministic quantities
(schedules, register/stage trajectories, true synthesis counts); wall-clock
time is recorded beside it.  The final payload is assembled in the spec's
canonical job order, independent of completion order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.campaign.spec import CampaignJob, CampaignSpec
from repro.campaign.store import RunStore
from repro.designs.generator import case_from_name
from repro.isdc.config import IsdcConfig
from repro.isdc.scheduler import IsdcScheduler
from repro.parallel import shared_pool


def execute_job(design: str, config_payload: dict) -> dict:
    """Run one campaign job and return its deterministic result payload."""
    case = case_from_name(design)
    config = IsdcConfig.from_payload(config_payload)
    scheduler = IsdcScheduler(config)
    try:
        result = scheduler.schedule(case.build())
    finally:
        close = getattr(scheduler.feedback.backend, "close", None)
        if close is not None:
            close()
    final = result.final_schedule
    return {
        "design": design,
        "initial": {
            "stages": result.initial_report.num_stages,
            "registers": result.initial_report.num_registers,
            "slack_ps": result.initial_report.slack_ps,
        },
        "final": {
            "stages": result.final_report.num_stages,
            "registers": result.final_report.num_registers,
            "slack_ps": result.final_report.slack_ps,
        },
        "iterations": result.iterations,
        "evaluations": result.subgraphs_evaluated,
        "registers_by_iteration": result.register_trajectory(),
        "stages_by_iteration": [record.num_stages for record in result.history],
        "schedule": {str(node_id): stage
                     for node_id, stage in sorted(final.stages.items())},
    }


def _execute_payload(payload: tuple[str, dict]) -> dict:
    """Worker-side entry point (module-level so it pickles into the pool)."""
    return execute_job(*payload)


@dataclass
class CampaignRunResult:
    """Outcome of one :func:`run_campaign` invocation.

    Attributes:
        spec: the campaign that ran.
        payload: the deterministic final payload
            (:meth:`~repro.campaign.store.RunStore.final_payload`).
        executed: jobs actually run by this invocation.
        skipped: jobs answered by the store's checkpoints (resume).
        elapsed_s: wall-clock time of this invocation.
        job_runtimes_s: job id -> wall-clock runtime of the jobs run here.
    """

    spec: CampaignSpec
    payload: dict
    executed: int = 0
    skipped: int = 0
    elapsed_s: float = 0.0
    job_runtimes_s: dict[str, float] = field(default_factory=dict)


def run_campaign(spec: CampaignSpec, store: RunStore | None = None,
                 jobs: int = 1, resume: bool = False,
                 verbose: bool = False) -> CampaignRunResult:
    """Execute (or finish) a campaign sweep.

    Args:
        spec: the sweep description.
        store: run store for checkpoints; an in-memory store is used when
            omitted (no durability, no resume across processes).
        jobs: worker processes sharding the sweep's jobs; results and the
            final payload are identical for any value.
        resume: continue from the store's completed jobs instead of
            refusing to touch an existing store file.
        verbose: print one line per completed job.

    Raises:
        FileExistsError: the store file exists and ``resume`` is false.
        StoreMismatchError: the store belongs to a different campaign.
    """
    start = time.perf_counter()
    store = store if store is not None else RunStore()
    all_jobs = spec.jobs()  # expanded once, shared with every store call
    store.open(spec, resume=resume, jobs=all_jobs)

    pending = store.missing(spec, jobs=all_jobs)
    skipped = len(all_jobs) - len(pending)

    runtimes: dict[str, float] = {}
    payloads = [(job.design, job.config) for job in pending]
    previous = time.perf_counter()
    # Shards stream through the process-wide shared pool so consecutive
    # campaigns (and service cold-miss batches) reuse one set of workers
    # instead of respawning per invocation.
    pool = shared_pool(jobs)
    for position, result in pool.imap_unordered(_execute_payload, payloads):
        job = pending[position]
        # Per-job wall clock is exact when serial; under a pool it is the
        # span since the previous completion (throughput, not latency).
        now = time.perf_counter()
        runtime = now - previous
        previous = now
        store.record(job, result, runtime)
        runtimes[job.job_id] = runtime
        if verbose:
            print(f"[campaign] {job.job_id} {job.design}: "
                  f"registers {result['initial']['registers']} -> "
                  f"{result['final']['registers']} "
                  f"({result['iterations']} iterations)")

    return CampaignRunResult(
        spec=spec,
        payload=store.final_payload(spec, jobs=all_jobs),
        executed=len(pending),
        skipped=skipped,
        elapsed_s=time.perf_counter() - start,
        job_runtimes_s=runtimes,
    )


__all__ = ["CampaignRunResult", "execute_job", "run_campaign"]
