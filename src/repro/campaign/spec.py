"""Campaign specifications: (design x configuration) sweep descriptions.

A :class:`CampaignSpec` names the axes of a sweep -- designs (Table-I rows
or ``gen:`` generated-design specs), clock periods, extraction/expansion
strategies, solver strategies and per-iteration subgraph budgets -- and
expands their cross product into an ordered list of :class:`CampaignJob`.

Every job carries a *content-addressed id*: the SHA-256 of its canonical
``(design, config)`` JSON.  Ids are therefore stable across interpreter
runs, ``PYTHONHASHSEED`` values and processes, which is what makes the run
store's resume-by-id semantics sound.

Expansion is the ordered cross product of the list-valued axes (designs
outermost, subgraph counts innermost), and a spec round-trips losslessly
through its JSON form::

    >>> spec = CampaignSpec(name="doc", designs=["rrot"],
    ...                     extraction=["fanout", "delay"],
    ...                     subgraph_counts=[4, 8])
    >>> jobs = spec.jobs()
    >>> len(jobs)                        # 2 strategies x 2 budgets
    4
    >>> [job.config["extraction"] for job in jobs]
    ['fanout', 'fanout', 'delay', 'delay']
    >>> restored = CampaignSpec.from_dict(spec.to_dict())
    >>> restored.fingerprint() == spec.fingerprint()
    True
    >>> [job.job_id for job in restored.jobs()] == [j.job_id for j in jobs]
    True
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.designs.generator import case_from_name
from repro.isdc.config import IsdcConfig

JOB_ID_BYTES = 16


def _canonical_digest(payload: Any) -> str:
    """Hex digest of a JSON-serialisable payload, independent of hash seeds."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class CampaignJob:
    """One (design, configuration) point of a campaign.

    Attributes:
        index: position in the spec's canonical job order.
        job_id: content-addressed identity (prefix of the SHA-256 of the
            canonical ``(design, config)`` payload).
        design: design name (``gen:`` spec or Table-I row), resolvable by
            :func:`repro.designs.generator.case_from_name` in any process.
        config: canonical :class:`IsdcConfig` payload for the run.
    """

    index: int
    job_id: str
    design: str
    config: dict

    def build_config(self) -> IsdcConfig:
        """Instantiate the job's scheduler configuration."""
        return IsdcConfig.from_payload(self.config)


@dataclass
class CampaignSpec:
    """The axes of a (design x IsdcConfig) sweep.

    List-valued fields are sweep axes (their cross product defines the
    jobs); scalar fields apply to every job.  ``clock_periods_ps`` may
    contain ``None``, meaning "the design's own clock period" (the Table-I
    row figure, or the ``clock=`` field of a ``gen:`` name).

    Attributes:
        name: human-readable campaign name (reports and the store header).
        designs: design names; Table-I rows and/or ``gen:`` specs.
        clock_periods_ps: clock-period axis (``None`` entries use the
            design default).
        extraction: extraction-strategy axis (``"fanout"``/``"delay"``).
        expansion: expansion-strategy axis (``"path"``/``"cone"``/``"window"``).
        solvers: solver-strategy axis (``"full"``/``"incremental"``).
        subgraph_counts: per-iteration subgraph budget axis (``m``).
        max_iterations: iteration cap applied to every job.
        patience: early-stop patience applied to every job.
        backend: flow backend for every job (``"local"``/``"estimator"``).
        use_characterized_delays: characterise isolated operator delays.
        track_estimation_error: record per-iteration estimation error.
    """

    name: str = "campaign"
    designs: list[str] = field(default_factory=list)
    clock_periods_ps: list[float | None] = field(default_factory=lambda: [None])
    extraction: list[str] = field(default_factory=lambda: ["fanout"])
    expansion: list[str] = field(default_factory=lambda: ["window"])
    solvers: list[str] = field(default_factory=lambda: ["full"])
    subgraph_counts: list[int] = field(default_factory=lambda: [16])
    max_iterations: int = 15
    patience: int = 3
    backend: str = "local"
    use_characterized_delays: bool = True
    track_estimation_error: bool = False

    def __post_init__(self) -> None:
        if not self.designs:
            raise ValueError("a campaign needs at least one design")
        for axis_name in ("clock_periods_ps", "extraction", "expansion",
                          "solvers", "subgraph_counts"):
            if not getattr(self, axis_name):
                raise ValueError(f"axis {axis_name} must not be empty")

    # ------------------------------------------------------------- expansion

    def jobs(self) -> list[CampaignJob]:
        """The sweep's cross product as an ordered, id-stamped job list.

        Axis order (designs outermost, subgraph counts innermost) fixes the
        canonical job order; a job's identity, however, comes only from its
        content, so reordering axes in a spec re-orders but never re-labels
        work.  Axis points that collapse onto the same content -- e.g. a
        ``clock_periods_ps`` of ``[None, X]`` where ``X`` is a design's own
        default clock -- are deduplicated: one job per distinct id, first
        occurrence wins, so job counts always match the store's id-keyed
        resume semantics.

        Raises:
            ValueError: when a design name or a configuration point is
                invalid (every point is validated through
                :class:`IsdcConfig` at expansion time).
        """
        jobs: list[CampaignJob] = []
        seen: set[str] = set()
        for design in self.designs:
            case = case_from_name(design)  # raises on unknown/malformed names
            for clock in self.clock_periods_ps:
                for extraction in self.extraction:
                    for expansion in self.expansion:
                        for solver in self.solvers:
                            for count in self.subgraph_counts:
                                config = IsdcConfig(
                                    clock_period_ps=(case.clock_period_ps
                                                     if clock is None
                                                     else float(clock)),
                                    subgraphs_per_iteration=count,
                                    max_iterations=self.max_iterations,
                                    patience=self.patience,
                                    extraction=extraction,
                                    expansion=expansion,
                                    solver=solver,
                                    backend=self.backend,
                                    use_characterized_delays=(
                                        self.use_characterized_delays),
                                    track_estimation_error=(
                                        self.track_estimation_error),
                                ).to_payload()
                                digest = _canonical_digest(
                                    {"design": design, "config": config})
                                job_id = digest[:JOB_ID_BYTES * 2]
                                if job_id in seen:
                                    continue
                                seen.add(job_id)
                                jobs.append(CampaignJob(
                                    index=len(jobs),
                                    job_id=job_id,
                                    design=design,
                                    config=config))
        return jobs

    # ---------------------------------------------------------- serialisation

    def to_dict(self) -> dict:
        """Plain JSON-serialisable form (the spec-file format)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        """Build a spec from :meth:`to_dict` output / a parsed spec file.

        Raises:
            TypeError: on unknown fields.
            ValueError: on invalid axis values.
        """
        return cls(**payload)

    @classmethod
    def from_file(cls, path: str | Path) -> "CampaignSpec":
        """Load a JSON spec file."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    def fingerprint(self) -> str:
        """Content identity of the whole spec (guards resume compatibility)."""
        return _canonical_digest(self.to_dict())


def quick_spec(num_designs: int = 3, seed: int = 0,
               designs: Sequence[str] | None = None) -> CampaignSpec:
    """The built-in smoke campaign: generated designs, estimator backend.

    ``num_designs`` generated designs x 4 configuration points (two
    extraction strategies x two subgraph budgets), small iteration counts
    and the closed-form backend, so the whole sweep finishes in seconds.
    ``designs`` swaps in explicit names (Table-I rows, ``gen:``/``loop:``
    specs, or ``.ir`` file paths) instead of the generated designs while
    keeping the quick configuration axes -- the ``runner campaign
    --design`` path.
    """
    from repro.designs.generator import GeneratorParams

    if designs:
        designs = list(designs)
    else:
        designs = [GeneratorParams(seed=seed + offset, depth=5, width=3).name
                   for offset in range(num_designs)]
    return CampaignSpec(
        name="quick",
        designs=designs,
        extraction=["fanout", "delay"],
        subgraph_counts=[4, 8],
        max_iterations=3,
        patience=3,
        backend="estimator",
        use_characterized_delays=False,
    )


__all__ = ["CampaignJob", "CampaignSpec", "quick_spec"]
