"""repro.kernel: the unified vectorized graph/timing kernel.

One shared, array-based timing substrate queried by every layer that used to
hand-roll its own dict/set traversal: the IR analyses (:mod:`repro.ir`), the
netlist STA (:mod:`repro.netlist.sta`), the SDC delay matrix
(:mod:`repro.sdc.delays`), the ISDC re-propagation and extraction scans
(:mod:`repro.isdc`), the estimator backend (:mod:`repro.synth`) and the AIG
depth metric (:mod:`repro.aig`).

* :class:`GraphView` -- an immutable levelized-CSR view of any DAG, cached on
  the container and invalidated by its ``structural_version`` counter.
* :mod:`repro.kernel.ops` -- level-batched numpy primitives: forward
  propagation, single-source longest paths, frontier reachability and the
  all-pairs critical-path matrix.
* :mod:`repro.kernel.sparse` -- the frontier-compressed sparse all-pairs
  sweep plus :func:`auto_critical_path_matrix`, the density-based
  dense/sparse dispatcher.
* :mod:`repro.kernel.config` -- the process-wide :class:`KernelConfig`
  (sparse-vs-dense cutover, view-patch budgets) with ``REPRO_KERNEL_*``
  environment overrides.
* :mod:`repro.kernel.patch` -- incremental :class:`GraphView` patching from
  the containers' recorded structural deltas.
* :mod:`repro.kernel.reference` -- the historical pure-Python algorithms,
  kept as the executable specification the parity tests and the
  ``bench-kernel`` CI gate diff against.
* :mod:`repro.kernel.bench` -- the old-vs-new micro-benchmark behind
  ``BENCH_kernel.json`` (``python -m repro.kernel.bench``).
"""

from repro.kernel.config import (
    HAVE_SCIPY,
    KernelConfig,
    kernel_config,
    set_kernel_config,
)
from repro.kernel.ops import (
    NOT_CONNECTED,
    UNREACHED,
    critical_path_matrix,
    forward_propagate,
    longest_path_from,
    path_delay,
    reachable_indices,
    reachable_mask,
    reconstruct_path,
)
from repro.kernel.sparse import (
    SparseMatrix,
    auto_critical_path_matrix,
    sparse_critical_path_matrix,
)
from repro.kernel.view import GraphView

__all__ = [
    "GraphView",
    "HAVE_SCIPY",
    "KernelConfig",
    "NOT_CONNECTED",
    "SparseMatrix",
    "UNREACHED",
    "auto_critical_path_matrix",
    "critical_path_matrix",
    "forward_propagate",
    "kernel_config",
    "longest_path_from",
    "path_delay",
    "reachable_indices",
    "reachable_mask",
    "reconstruct_path",
    "set_kernel_config",
    "sparse_critical_path_matrix",
]
