"""repro.kernel: the unified vectorized graph/timing kernel.

One shared, array-based timing substrate queried by every layer that used to
hand-roll its own dict/set traversal: the IR analyses (:mod:`repro.ir`), the
netlist STA (:mod:`repro.netlist.sta`), the SDC delay matrix
(:mod:`repro.sdc.delays`), the ISDC re-propagation and extraction scans
(:mod:`repro.isdc`), the estimator backend (:mod:`repro.synth`) and the AIG
depth metric (:mod:`repro.aig`).

* :class:`GraphView` -- an immutable levelized-CSR view of any DAG, cached on
  the container and invalidated by its ``structural_version`` counter.
* :mod:`repro.kernel.ops` -- level-batched numpy primitives: forward
  propagation, single-source longest paths, frontier reachability and the
  all-pairs critical-path matrix.
* :mod:`repro.kernel.reference` -- the historical pure-Python algorithms,
  kept as the executable specification the parity tests and the
  ``bench-kernel`` CI gate diff against.
* :mod:`repro.kernel.bench` -- the old-vs-new micro-benchmark behind
  ``BENCH_kernel.json`` (``python -m repro.kernel.bench``).
"""

from repro.kernel.ops import (
    NOT_CONNECTED,
    UNREACHED,
    critical_path_matrix,
    forward_propagate,
    longest_path_from,
    path_delay,
    reachable_mask,
    reconstruct_path,
)
from repro.kernel.view import GraphView

__all__ = [
    "GraphView",
    "NOT_CONNECTED",
    "UNREACHED",
    "critical_path_matrix",
    "forward_propagate",
    "longest_path_from",
    "path_delay",
    "reachable_mask",
    "reconstruct_path",
]
