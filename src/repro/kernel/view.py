"""The immutable levelized-CSR graph view shared by every timing consumer.

A :class:`GraphView` is a frozen, array-based snapshot of a directed acyclic
graph: node ids in the exact deterministic Kahn topological order the rest of
the repository has always used, predecessor/successor adjacency in CSR form,
ASAP levels (longest path in edges from any source), and a grouping of nodes
by level.  Every vectorized primitive in :mod:`repro.kernel.ops` operates on
these arrays, so the IR analyses, the netlist STA, the SDC delay matrix, the
ISDC re-propagation and the extraction scans all query one substrate instead
of re-deriving private dict/set traversals.

The view is duck-typed: :meth:`GraphView.from_dataflow`,
:meth:`GraphView.from_netlist` and :meth:`GraphView.from_aig` only touch the
public container APIs, so this module imports nothing from the higher layers.

Pipelined-loop back-edges (``DataflowGraph.back_edges()``) are *not* part of
the view: they live outside ``Node.operands``, so the forward graph stays a
DAG and Kahn levelization, the delay matrix and every reachability scan stay
valid unchanged.  Loop-carried timing is enforced separately, by II-scaled
difference constraints in the SDC layer (:mod:`repro.sdc.loops`).

Invalidation contract
---------------------

Views are cached on the container object, keyed by its
``structural_version`` counter.  The counter advances on *structural* edits
only -- adding or removing a node/gate -- because those are the only edits
that change the arrays; attribute edits (renames, output marking) leave the
cached view valid.  Containers without a ``structural_version`` attribute
are never cached.  ``copy()`` produces a fresh object, so copies never
share a cache entry with their source.

A stale cached view is not always discarded: containers record their edits
in a structural-delta log (:mod:`repro.kernel.delta`), and when the log is
small the new view is *patched* from the cached one
(:mod:`repro.kernel.patch`) -- identical arrays, a fraction of the cost.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.kernel.config import kernel_config
from repro.kernel.delta import delta_log, reset_delta_log

#: Attribute under which the cached ``(version, view)`` pair is stored.
_CACHE_ATTR = "_repro_kernel_view"


class GraphView:
    """Immutable levelized-CSR snapshot of a DAG.

    Positions ("dense indices") are topological: dense index ``i`` is the
    ``i``-th node of the deterministic Kahn order, so ``index_of`` doubles as
    the row/column mapping of every all-pairs delay matrix built on top.

    Attributes:
        num_nodes: node count.
        order: dense index -> original node id (``np.ndarray`` of int64).
        index_of: original node id -> dense index (insertion-ordered dict,
            iteration yields ids in topological order).
        pred_indptr / pred_indices: CSR of predecessors in *original operand
            order*, duplicates preserved (STA tie-breaks depend on it).
        succ_indptr / succ_indices: CSR of successors (users), duplicates
            preserved.
        levels: ASAP level per dense index (longest path in edges from any
            source node; sources are level 0).
        num_levels: ``levels.max() + 1`` (0 for the empty graph).
        level_order: dense indices sorted by (level, dense index).
        level_starts: boundaries into ``level_order``: level ``l`` occupies
            ``level_order[level_starts[l]:level_starts[l + 1]]``.
        source_mask: boolean per dense index, True for source nodes
            (PARAM/CONSTANT nodes, INPUT/tie gates, AIG non-AND nodes).
    """

    __slots__ = (
        "num_nodes", "order", "index_of", "pred_indptr", "pred_indices",
        "succ_indptr", "succ_indices", "levels", "num_levels", "level_order",
        "level_starts", "source_mask", "_order_list",
    )

    def __init__(self, ids: Sequence[int], operands: Mapping[int, Sequence[int]],
                 sources: Iterable[int], cycle_message: str) -> None:
        order = _kahn_order(ids, operands, cycle_message)
        self._order_list: list[int] = order
        self.num_nodes = len(order)
        self.order = np.asarray(order, dtype=np.int64)
        self.index_of: dict[int, int] = {nid: i for i, nid in enumerate(order)}
        index_of = self.index_of

        pred_indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        pred_flat: list[int] = []
        for i, nid in enumerate(order):
            for operand in operands[nid]:
                pred_flat.append(index_of[operand])
            pred_indptr[i + 1] = len(pred_flat)
        self.pred_indptr = pred_indptr
        self.pred_indices = np.asarray(pred_flat, dtype=np.int64)

        # Successors are grouped by scanning ids in their container order so
        # succ segments mirror the container's user insertion order.
        succ_lists: dict[int, list[int]] = {nid: [] for nid in ids}
        for nid in ids:
            for operand in operands[nid]:
                succ_lists[operand].append(index_of[nid])
        succ_indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        succ_flat: list[int] = []
        for i, nid in enumerate(order):
            succ_flat.extend(succ_lists[nid])
            succ_indptr[i + 1] = len(succ_flat)
        self.succ_indptr = succ_indptr
        self.succ_indices = np.asarray(succ_flat, dtype=np.int64)

        levels = [0] * self.num_nodes
        for i in range(self.num_nodes):
            worst = -1
            for position in range(pred_indptr[i], pred_indptr[i + 1]):
                pred_level = levels[pred_flat[position]]
                if pred_level > worst:
                    worst = pred_level
            levels[i] = worst + 1
        self.levels = np.asarray(levels, dtype=np.int64)
        self.num_levels = int(self.levels.max()) + 1 if self.num_nodes else 0
        self.level_order = np.argsort(self.levels, kind="stable").astype(np.int64)
        self.level_starts = np.searchsorted(
            self.levels[self.level_order], np.arange(self.num_levels + 1))

        source_mask = np.zeros(self.num_nodes, dtype=bool)
        for nid in sources:
            source_mask[index_of[nid]] = True
        self.source_mask = source_mask

    # ------------------------------------------------------------ constructors

    @classmethod
    def _from_arrays(cls, order_ids: list[int], pred_indptr: np.ndarray,
                     pred_indices: np.ndarray, succ_indptr: np.ndarray,
                     succ_indices: np.ndarray, levels: np.ndarray,
                     source_mask: np.ndarray) -> "GraphView":
        """Assemble a view directly from final arrays (the patching path).

        Bypasses ``__init__``'s from-scratch Kahn/CSR construction; the
        caller (:mod:`repro.kernel.patch`) guarantees the arrays are exactly
        what ``__init__`` would have produced.
        """
        view = cls.__new__(cls)
        view._order_list = order_ids
        view.num_nodes = len(order_ids)
        view.order = np.asarray(order_ids, dtype=np.int64)
        view.index_of = {nid: i for i, nid in enumerate(order_ids)}
        view.pred_indptr = pred_indptr
        view.pred_indices = pred_indices
        view.succ_indptr = succ_indptr
        view.succ_indices = succ_indices
        view.levels = levels
        view.num_levels = int(levels.max()) + 1 if view.num_nodes else 0
        view.level_order = np.argsort(levels, kind="stable").astype(np.int64)
        view.level_starts = np.searchsorted(
            levels[view.level_order], np.arange(view.num_levels + 1))
        view.source_mask = source_mask
        return view

    @classmethod
    def from_dataflow(cls, graph) -> "GraphView":
        """Cached view of a :class:`~repro.ir.graph.DataflowGraph`."""
        cached = _cached_view(graph)
        if cached is not None:
            return cached
        patched = _patched_view(graph)
        if patched is not None:
            return patched
        nodes = graph.nodes()
        view = cls(
            ids=[node.node_id for node in nodes],
            operands={node.node_id: node.operands for node in nodes},
            sources=[node.node_id for node in nodes if node.is_source],
            cycle_message=f"graph {graph.name!r} contains a cycle",
        )
        _store_view(graph, view)
        return view

    @classmethod
    def from_netlist(cls, netlist) -> "GraphView":
        """Cached view of a :class:`~repro.netlist.netlist.Netlist`."""
        cached = _cached_view(netlist)
        if cached is not None:
            return cached
        patched = _patched_view(netlist)
        if patched is not None:
            return patched
        gates = netlist.gates()
        view = cls(
            ids=[gate.gate_id for gate in gates],
            operands={gate.gate_id: gate.inputs for gate in gates},
            sources=[gate.gate_id for gate in gates if gate.kind.is_source],
            cycle_message=(
                f"netlist {netlist.name!r} contains a combinational cycle"),
        )
        _store_view(netlist, view)
        return view

    @classmethod
    def from_aig(cls, aig) -> "GraphView":
        """Cached view of an :class:`~repro.aig.aig.Aig`.

        Edges run from fanin nodes to AND nodes, so :attr:`levels` is exactly
        the AND-level metric (non-AND nodes are level-0 sources).
        """
        cached = _cached_view(aig)
        if cached is not None:
            return cached
        patched = _patched_view(aig)
        if patched is not None:
            return patched
        from repro.aig.aig import literal_node

        nodes = aig.nodes()
        operands: dict[int, tuple[int, ...]] = {}
        sources: list[int] = []
        for node in nodes:
            if node.is_and:
                operands[node.node_id] = (literal_node(node.fanin0),
                                          literal_node(node.fanin1))
            else:
                operands[node.node_id] = ()
                sources.append(node.node_id)
        view = cls(
            ids=[node.node_id for node in nodes],
            operands=operands,
            sources=sources,
            cycle_message=f"aig {aig.name!r} contains a cycle",
        )
        _store_view(aig, view)
        return view

    # ----------------------------------------------------------------- access

    def order_ids(self) -> list[int]:
        """Node ids in topological order (a fresh list, safe to mutate)."""
        return list(self._order_list)

    def dense_of(self, node_ids: Iterable[int]) -> np.ndarray:
        """Dense indices of the given original ids."""
        index_of = self.index_of
        return np.asarray([index_of[nid] for nid in node_ids], dtype=np.int64)

    def ids_of(self, dense: Iterable[int]) -> list[int]:
        """Original ids of the given dense indices."""
        order = self._order_list
        return [order[int(i)] for i in dense]

    def delay_vector(self, delays) -> np.ndarray:
        """Per-node float delays in dense order.

        ``delays`` is either a mapping from original node id to delay or a
        callable taking a node id.
        """
        if callable(delays):
            return np.asarray([float(delays(nid)) for nid in self._order_list],
                              dtype=float)
        return np.asarray([float(delays[nid]) for nid in self._order_list],
                          dtype=float)

    def level_nodes(self, level: int) -> np.ndarray:
        """Dense indices of the nodes at ``level``, ascending."""
        return self.level_order[self.level_starts[level]:
                                self.level_starts[level + 1]]

    def pred_counts(self) -> np.ndarray:
        """Predecessor (in-edge) count per dense index, duplicates included."""
        return self.pred_indptr[1:] - self.pred_indptr[:-1]

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"GraphView({self.num_nodes} nodes, {len(self.pred_indices)} "
                f"edges, {self.num_levels} levels)")


def _kahn_order(ids: Sequence[int], operands: Mapping[int, Sequence[int]],
                cycle_message: str) -> list[int]:
    """Deterministic Kahn topological order.

    Byte-for-byte the order the per-layer implementations produced: the
    initial ready set is sorted ascending, the queue is FIFO, and each popped
    node releases its distinct users in ascending-id order.

    Raises:
        ValueError: with ``cycle_message`` if the graph contains a cycle.
    """
    indegree: dict[int, int] = {nid: len(set(operands[nid])) for nid in ids}
    users: dict[int, list[int]] = {nid: [] for nid in ids}
    for nid in ids:
        for operand in operands[nid]:
            users[operand].append(nid)
    queue: deque[int] = deque(sorted(nid for nid, deg in indegree.items()
                                     if deg == 0))
    order: list[int] = []
    while queue:
        nid = queue.popleft()
        order.append(nid)
        for user in sorted(set(users[nid])):
            indegree[user] -= 1
            if indegree[user] == 0:
                queue.append(user)
    if len(order) != len(ids):
        raise ValueError(cycle_message)
    return order


def _cached_view(container) -> GraphView | None:
    """Return the cached view of ``container`` if still valid."""
    version = getattr(container, "structural_version", None)
    if version is None:
        return None
    cached = getattr(container, _CACHE_ATTR, None)
    if cached is not None and cached[0] == version:
        return cached[1]
    return None


def _patched_view(container) -> GraphView | None:
    """Patch the stale cached view from the container's recorded delta.

    Only applies when the delta log fully accounts for the version drift
    (``cached version + log length == current version``) and the delta is
    small by the active :class:`~repro.kernel.config.KernelConfig` budget;
    anything else -- including delta shapes the patcher does not support --
    returns ``None`` so the caller rebuilds from scratch.  A successful
    patch is cached (and the log reset) exactly like a rebuild.
    """
    version = getattr(container, "structural_version", None)
    if version is None:
        return None
    cached = getattr(container, _CACHE_ATTR, None)
    if cached is None:
        return None
    old_version, old_view = cached
    log = delta_log(container)
    if not log or old_version + len(log) != version:
        return None
    if len(log) > kernel_config().patch_budget(old_view.num_nodes):
        return None
    from repro.kernel.patch import PatchError, patch_view

    try:
        view = patch_view(old_view, log)
    except PatchError:
        return None
    _store_view(container, view)
    return view


def _store_view(container, view: GraphView) -> None:
    """Cache ``view`` on ``container`` keyed by its structural version.

    Also starts a fresh structural-delta log: from this point on the
    container's mutators record their edits, and the next ``from_*`` call
    may patch this view instead of rebuilding (see
    :mod:`repro.kernel.patch`).
    """
    version = getattr(container, "structural_version", None)
    if version is None:
        return
    try:
        setattr(container, _CACHE_ATTR, (version, view))
    except AttributeError:  # __slots__ containers opt out of caching
        return
    reset_delta_log(container)
