"""Vectorized graph/timing primitives over :class:`~repro.kernel.view.GraphView`.

All primitives are level-batched: instead of one Python iteration per node,
each ASAP level is processed with a handful of numpy operations over the CSR
arrays.  Because every edge crosses at least one level boundary, all
predecessor values a level needs are final before the level is touched, so
the batched sweeps compute bit-identical results to the historical per-node
loops (max is exact, and every addition pairs the same two floats as before).

Tie-breaking is explicit and deterministic:

* ``tie="csr"`` picks the first maximal predecessor in CSR (operand) order --
  the contract of the netlist STA, whose critical path historically followed
  ``max(gate.inputs, key=...)``.
* ``tie="topo"`` picks the maximal predecessor with the smallest topological
  position -- the contract of every IR longest-path search, equivalent to a
  sequential relaxation in topological order with strict-``>`` improvement
  (and therefore independent of hash-seed-dependent set iteration).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.kernel.view import GraphView

#: Sentinel stored in all-pairs delay matrices for unconnected node pairs.
NOT_CONNECTED = -1.0

#: Sentinel for unreached nodes in single-source propagations.
UNREACHED = float("-inf")


def _gather_segments(indptr: np.ndarray, indices: np.ndarray,
                     rows: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate the CSR segments of ``rows``.

    Returns:
        ``(concat, starts, counts)`` where ``concat`` holds the neighbour
        dense indices of every row back to back, ``starts[i]`` is the offset
        of row ``i``'s segment in ``concat`` and ``counts[i]`` its length.
    """
    counts = indptr[rows + 1] - indptr[rows]
    total = int(counts.sum())
    ends = np.cumsum(counts)
    starts = ends - counts
    if total == 0:
        return np.empty(0, dtype=indices.dtype), starts, counts
    positions = np.arange(total, dtype=np.int64) + np.repeat(
        indptr[rows] - starts, counts)
    return indices[positions], starts, counts


def forward_propagate(view: GraphView, delays: np.ndarray, *,
                      init: np.ndarray | None = None,
                      mask: np.ndarray | None = None,
                      floor: float = UNREACHED,
                      tie: str | None = None,
                      ) -> tuple[np.ndarray, np.ndarray | None]:
    """Level-batched forward value propagation.

    For every node ``v`` (restricted to ``mask`` when given, in ascending
    level order) the candidate value is
    ``max(floor, max over predecessors p of values[p]) + delays[v]``;
    predecessors still at :data:`UNREACHED` do not contribute.  A finite
    candidate overwrites the node's entry; otherwise the node keeps its
    ``init`` value (:data:`UNREACHED` by default).  This one engine covers

    * netlist arrival times (``init`` seeds indegree-0 gates, ``tie="csr"``),
    * single-source longest paths (``init`` seeds the source, ``tie="topo"``),
    * masked subgraph longest paths (``floor=0.0``, no parents).

    Args:
        view: the graph view.
        delays: per-node delay in dense order.
        init: initial values in dense order (defaults to all-unreached);
            copied, never mutated.
        mask: boolean per dense index; nodes outside the mask are skipped
            entirely (they neither receive values nor relay them).
        floor: lower bound entering every candidate (use ``0.0`` to treat
            predecessor-less in-mask nodes as path starts).
        tie: ``"csr"`` / ``"topo"`` to also compute predecessor choices, or
            ``None`` to skip parent tracking.

    Returns:
        ``(values, parents)``; ``parents`` is ``None`` unless ``tie`` is
        given, else the chosen predecessor dense index per node (-1 where the
        value did not come from a predecessor).
    """
    n = view.num_nodes
    values = (np.full(n, UNREACHED, dtype=float) if init is None
              else np.array(init, dtype=float, copy=True))
    parents = np.full(n, -1, dtype=np.int64) if tie is not None else None
    if n == 0:
        return values, parents
    indptr, indices = view.pred_indptr, view.pred_indices
    for level in range(view.num_levels):
        rows = view.level_nodes(level)
        if mask is not None:
            rows = rows[mask[rows]]
        if rows.size == 0:
            continue
        concat, starts, counts = _gather_segments(indptr, indices, rows)
        segmax = np.full(rows.size, UNREACHED, dtype=float)
        nonempty = counts > 0
        if concat.size:
            pred_values = values[concat]
            segmax[nonempty] = np.maximum.reduceat(
                pred_values, starts[nonempty])
        best = np.maximum(segmax, floor)
        candidates = best + delays[rows]
        finite = candidates > UNREACHED
        if finite.any():
            values[rows[finite]] = candidates[finite]
        if parents is not None and concat.size:
            reached = nonempty & (segmax > UNREACHED) & (segmax >= floor)
            if reached.any():
                is_max = pred_values == np.repeat(segmax, counts)
                if tie == "csr":
                    offsets = np.arange(concat.size, dtype=np.int64)
                else:  # "topo": smallest topological position among maxima
                    offsets = concat
                ranked = np.where(is_max, offsets, np.iinfo(np.int64).max)
                winner = np.minimum.reduceat(ranked, starts[nonempty])
                seg_parent = np.full(rows.size, -1, dtype=np.int64)
                if tie == "csr":
                    seg_parent[nonempty] = concat[winner]
                else:
                    seg_parent[nonempty] = winner
                parents[rows[reached]] = seg_parent[reached]
    return values, parents


def longest_path_from(view: GraphView, delays: np.ndarray, source: int, *,
                      mask: np.ndarray | None = None,
                      with_parents: bool = True,
                      ) -> tuple[np.ndarray, np.ndarray | None]:
    """Single-source longest (critical) path values, endpoint delays included.

    ``values[source] == delays[source]``; every node reachable from
    ``source`` (within ``mask`` when given) holds the largest sum of node
    delays over any connecting path; unreachable nodes hold
    :data:`UNREACHED`.  Parents break ties toward the smallest topological
    position (see module docstring).

    Args:
        view: the graph view.
        delays: per-node delays in dense order.
        source: dense index of the path source.
        mask: optional traversal restriction; must include ``source`` to
            produce any path.
        with_parents: skip parent tracking when False.
    """
    init = np.full(view.num_nodes, UNREACHED, dtype=float)
    if mask is None or mask[source]:
        init[source] = delays[source]
    return forward_propagate(view, delays, init=init, mask=mask,
                             tie="topo" if with_parents else None)


def reconstruct_path(parents: np.ndarray, source: int, sink: int) -> list[int]:
    """Walk ``parents`` from ``sink`` back to ``source`` (dense indices)."""
    path = [sink]
    while path[-1] != source:
        previous = int(parents[path[-1]])
        if previous < 0:
            raise ValueError(f"no recorded path from {source} to {sink}")
        path.append(previous)
    path.reverse()
    return path


def reachable_indices(view: GraphView, seeds: Iterable[int], *,
                      backward: bool = False,
                      mask: np.ndarray | None = None,
                      scratch: np.ndarray | None = None) -> np.ndarray:
    """Frontier-compressed reachability over the CSR index arrays.

    The sweep only ever touches the frontier and its neighbours, and the
    result is the (typically much smaller than ``n``) set of reached dense
    indices rather than an ``n``-wide mask -- with a caller-provided
    ``scratch`` buffer, repeated small-cone sweeps cost O(reached) each
    instead of O(n) for a fresh visited allocation per call.

    Args:
        view: the graph view.
        seeds: dense indices the sweep starts from (inclusive; seeds outside
            ``mask`` are dropped).
        backward: sweep predecessors (ancestors) instead of successors.
        mask: boolean per dense index restricting the traversal.
        scratch: optional all-False boolean buffer of length ``num_nodes``
            reused as the visited set; restored to all-False before
            returning.

    Returns:
        Ascending dense indices of every node reachable from the seeds.
    """
    visited = (np.zeros(view.num_nodes, dtype=bool) if scratch is None
               else scratch)
    frontier = np.asarray(list(seeds), dtype=np.int64)
    if mask is not None and frontier.size:
        frontier = frontier[mask[frontier]]
    frontier = np.unique(frontier)
    visited[frontier] = True
    reached = [frontier]
    if backward:
        indptr, indices = view.pred_indptr, view.pred_indices
    else:
        indptr, indices = view.succ_indptr, view.succ_indices
    while frontier.size:
        neighbours, _, _ = _gather_segments(indptr, indices, frontier)
        if neighbours.size == 0:
            break
        neighbours = np.unique(neighbours)
        fresh = neighbours[~visited[neighbours]]
        if mask is not None:
            fresh = fresh[mask[fresh]]
        visited[fresh] = True
        reached.append(fresh)
        frontier = fresh
    result = np.sort(np.concatenate(reached)) if len(reached) > 1 else reached[0]
    if scratch is not None:
        visited[result] = False
    return result


def reachable_mask(view: GraphView, seeds: Iterable[int], *,
                   backward: bool = False,
                   mask: np.ndarray | None = None) -> np.ndarray:
    """Reachability as a boolean mask over dense indices.

    Thin wrapper over :func:`reachable_indices` for callers that feed the
    result straight into masked sweeps.

    Args:
        view: the graph view.
        seeds: dense indices the sweep starts from (inclusive; seeds outside
            ``mask`` are dropped).
        backward: sweep predecessors (ancestors) instead of successors.
        mask: boolean per dense index restricting the traversal.

    Returns:
        Boolean array over dense indices: True for every node reachable from
        the seeds.
    """
    visited = np.zeros(view.num_nodes, dtype=bool)
    visited[reachable_indices(view, seeds, backward=backward, mask=mask)] = True
    return visited


def critical_path_matrix(view: GraphView, delays: np.ndarray) -> np.ndarray:
    """All-pairs critical combinational path delays, level by level.

    Entry ``[i][j]`` holds the largest sum of node delays over any directed
    path from dense index ``i`` to dense index ``j`` (both endpoint delays
    included); the diagonal holds individual node delays; unconnected pairs
    hold :data:`NOT_CONNECTED`.  This is the vectorized form of the paper's
    Alg. 1 lines 1--9, tuned for memory layout and exactness:

    * the matrix is built *transposed* (one contiguous row per target node)
      so every level is a handful of whole-row operations, and returned as
      the cheap transposed view -- values are position-for-position identical
      to the historical per-node-column loop;
    * unconnected pairs are :data:`UNREACHED` during construction so the
      recurrence is a plain ``max``/``+`` without per-entry connectivity
      masks, rewritten to :data:`NOT_CONNECTED` at the end;
    * predecessors are folded positionally (first operand, second operand,
      ...) with elementwise ``np.maximum`` -- exact, and far faster than a
      segmented reduction since in-degrees are small;
    * each node's own delay is added once *after* the max over predecessors;
      rounding is monotonic, so ``max(a, b) + d`` is bit-identical to the
      reference's ``max(a + d, b + d)``.
    """
    n = view.num_nodes
    transposed = np.full((n, n), UNREACHED, dtype=float)
    if n == 0:
        return transposed
    indptr, indices = view.pred_indptr, view.pred_indices
    for level in range(view.num_levels):
        rows = view.level_nodes(level)
        if level > 0:
            starts = indptr[rows]
            counts = indptr[rows + 1] - starts
            best = transposed[indices[starts], :].copy()
            for position in range(1, int(counts.max())):
                present = counts > position
                preds = indices[starts[present] + position]
                best[present] = np.maximum(best[present], transposed[preds, :])
            best += delays[rows][:, None]
            transposed[rows, :] = best
        transposed[rows, rows] = delays[rows]
    matrix = transposed.T
    matrix[np.isneginf(matrix)] = NOT_CONNECTED
    return matrix


def path_delay(delay_of, path: Iterable[int]) -> float:
    """Sum of per-element delays along an explicit path.

    The one shared implementation behind the IR-level and netlist-level
    ``path_delay`` helpers: ``delay_of`` is either a mapping from element id
    to delay or a callable.
    """
    if isinstance(delay_of, Mapping):
        return sum(float(delay_of[element]) for element in path)
    return sum(float(delay_of(element)) for element in path)
