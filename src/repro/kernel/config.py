"""Runtime configuration of the kernel's sparse and incremental paths.

One process-wide :class:`KernelConfig` decides, for every consumer at once,

* whether the all-pairs delay matrix is built by the dense level-batched
  sweep or the sparse frontier-compressed one (``matrix_mode``), and where
  the automatic density cutover sits (``density_threshold``);
* whether ``GraphView.from_*`` may patch a cached view from the container's
  recorded structural delta instead of rebuilding (``patch_mode``) and how
  large a delta still counts as "small" (``patch_max_delta`` /
  ``patch_max_delta_fraction``).

Every knob has an environment override so campaigns and CI can flip paths
without code changes::

    REPRO_KERNEL_MATRIX=dense|sparse|auto   (default auto)
    REPRO_KERNEL_DENSITY=0.25               (auto cutover, fraction of n^2)
    REPRO_KERNEL_MIN_SPARSE_NODES=512       (below this, dense always wins)
    REPRO_KERNEL_PATCH=auto|never           (default auto)
    REPRO_KERNEL_PATCH_MAX_DELTA=256        (absolute small-delta bound)

Both paths are bit-identical by construction (enforced by the
``tests/kernel`` parity suites and the bench divergence gate), so flipping
these knobs can only ever change speed, never results.

scipy is optional here: the sparse sweep itself is pure numpy, scipy.sparse
is only used to *export* results (:meth:`~repro.kernel.sparse.SparseMatrix.
to_scipy`), so everything in this package keeps working when scipy is
absent.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

try:  # pragma: no cover - exercised implicitly by every import
    from scipy import sparse as _scipy_sparse  # noqa: F401
    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - scipy is an optional accelerator
    HAVE_SCIPY = False

_MATRIX_MODES = ("auto", "dense", "sparse")
_PATCH_MODES = ("auto", "never")


@dataclass(frozen=True)
class KernelConfig:
    """Knobs of the kernel's sparse matrix sweep and view patching.

    Attributes:
        matrix_mode: ``"auto"`` picks sparse when the graph is large and the
            connectivity stays under ``density_threshold`` (the sweep aborts
            to dense past the budget); ``"dense"``/``"sparse"`` force a path.
        density_threshold: connected-pair budget of the auto mode, as a
            fraction of ``n^2``; the sparse sweep gives up and the dense
            kernel takes over once the budget is exceeded.
        min_sparse_nodes: graphs below this node count always use the dense
            sweep (the sparse bookkeeping only pays off at scale).
        patch_mode: ``"auto"`` lets ``GraphView.from_*`` patch cached views
            from small structural deltas; ``"never"`` always rebuilds.
        patch_max_delta: absolute bound on the recorded delta length that
            still patches.
        patch_max_delta_fraction: relative bound -- deltas up to this
            fraction of the view's node count also patch even past the
            absolute bound.
    """

    matrix_mode: str = "auto"
    density_threshold: float = 0.25
    min_sparse_nodes: int = 512
    patch_mode: str = "auto"
    patch_max_delta: int = 256
    patch_max_delta_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.matrix_mode not in _MATRIX_MODES:
            raise ValueError(f"matrix_mode must be one of {_MATRIX_MODES}, "
                             f"got {self.matrix_mode!r}")
        if self.patch_mode not in _PATCH_MODES:
            raise ValueError(f"patch_mode must be one of {_PATCH_MODES}, "
                             f"got {self.patch_mode!r}")
        if not 0.0 < self.density_threshold <= 1.0:
            raise ValueError("density_threshold must be in (0, 1]")
        if self.min_sparse_nodes < 0 or self.patch_max_delta < 0:
            raise ValueError("node/delta bounds must be non-negative")
        if self.patch_max_delta_fraction < 0:
            raise ValueError("patch_max_delta_fraction must be non-negative")

    # ------------------------------------------------------------- decisions

    def wants_sparse(self, num_nodes: int) -> bool:
        """Should the matrix sweep even *attempt* the sparse path?"""
        if self.matrix_mode == "dense":
            return False
        if self.matrix_mode == "sparse":
            return True
        return num_nodes >= self.min_sparse_nodes

    def nnz_budget(self, num_nodes: int) -> int:
        """Connected-pair budget past which the auto sweep falls back."""
        if self.matrix_mode == "sparse":
            return num_nodes * num_nodes  # forced: never abort
        return int(self.density_threshold * num_nodes * num_nodes)

    def patch_budget(self, num_nodes: int) -> int:
        """Largest recorded delta that still patches instead of rebuilding."""
        if self.patch_mode == "never":
            return 0
        return max(self.patch_max_delta,
                   int(self.patch_max_delta_fraction * num_nodes))


def _config_from_env(env: dict[str, str] | None = None) -> KernelConfig:
    """Build a :class:`KernelConfig` from environment overrides."""
    env = os.environ if env is None else env
    base = KernelConfig()
    matrix_mode = env.get("REPRO_KERNEL_MATRIX", base.matrix_mode).lower()
    patch_mode = env.get("REPRO_KERNEL_PATCH", base.patch_mode).lower()
    if patch_mode in ("0", "off", "no"):
        patch_mode = "never"
    try:
        return KernelConfig(
            matrix_mode=matrix_mode,
            density_threshold=float(env.get("REPRO_KERNEL_DENSITY",
                                            base.density_threshold)),
            min_sparse_nodes=int(env.get("REPRO_KERNEL_MIN_SPARSE_NODES",
                                         base.min_sparse_nodes)),
            patch_mode=patch_mode,
            patch_max_delta=int(env.get("REPRO_KERNEL_PATCH_MAX_DELTA",
                                        base.patch_max_delta)),
            patch_max_delta_fraction=base.patch_max_delta_fraction,
        )
    except ValueError as error:
        raise ValueError(f"invalid REPRO_KERNEL_* environment override: "
                         f"{error}") from error


_ACTIVE: KernelConfig = _config_from_env()


def kernel_config() -> KernelConfig:
    """The process-wide active configuration."""
    return _ACTIVE


def set_kernel_config(config: KernelConfig | None = None, **overrides
                      ) -> KernelConfig:
    """Replace (or tweak) the active configuration; returns the new one.

    ``set_kernel_config()`` with no arguments re-reads the environment.
    """
    global _ACTIVE
    if config is None:
        config = _config_from_env()
    if overrides:
        config = replace(config, **overrides)
    _ACTIVE = config
    return _ACTIVE
