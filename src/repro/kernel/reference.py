"""Pure-Python reference implementations of the kernel primitives.

These are the historical per-layer algorithms, kept verbatim (modulo
deterministic iteration) as an executable specification: the parity tests in
``tests/kernel/`` and the divergence gate of :mod:`repro.kernel.bench` run
every kernel primitive against them across the Table-I suite and seeded
``gen:`` designs.  They are deliberately duck-typed (plain mappings instead
of Schedule/DelayMatrix objects) so this module never imports upward.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Mapping

import numpy as np

from repro.kernel.ops import NOT_CONNECTED


def reference_topological_order(ids, operands: Mapping, users: Mapping) -> list[int]:
    """Kahn topological order with deterministic ascending-id tie-breaks."""
    indegree = {nid: len(set(operands[nid])) for nid in ids}
    queue: deque[int] = deque(sorted(nid for nid, deg in indegree.items()
                                     if deg == 0))
    order: list[int] = []
    seen_edges: dict[int, set[int]] = {nid: set() for nid in ids}
    while queue:
        nid = queue.popleft()
        order.append(nid)
        for user in sorted(set(users[nid])):
            if nid in seen_edges[user]:
                continue
            seen_edges[user].add(nid)
            indegree[user] -= 1
            if indegree[user] == 0:
                queue.append(user)
    if len(order) != len(list(ids)):
        raise ValueError("graph contains a cycle")
    return order


def graph_adjacency(graph) -> tuple[list[int], dict, dict]:
    """(ids, operands, users) of a DataflowGraph, in container order."""
    nodes = graph.nodes()
    ids = [node.node_id for node in nodes]
    operands = {node.node_id: node.operands for node in nodes}
    users = {nid: graph.users_of(nid) for nid in ids}
    return ids, operands, users


def netlist_adjacency(netlist) -> tuple[list[int], dict, dict]:
    """(ids, inputs, fanout) of a Netlist, in container order."""
    gates = netlist.gates()
    ids = [gate.gate_id for gate in gates]
    operands = {gate.gate_id: gate.inputs for gate in gates}
    users = {gid: netlist.fanout(gid) for gid in ids}
    return ids, operands, users


def reference_reachable_from(users: Mapping, node_id: int) -> set[int]:
    """Downstream reachability (inclusive) via an explicit stack."""
    seen = {node_id}
    stack = [node_id]
    while stack:
        current = stack.pop()
        for user in users[current]:
            if user not in seen:
                seen.add(user)
                stack.append(user)
    return seen


def reference_reaching_to(operands: Mapping, node_id: int) -> set[int]:
    """Upstream reachability (inclusive) via an explicit stack."""
    seen = {node_id}
    stack = [node_id]
    while stack:
        current = stack.pop()
        for operand in operands[current]:
            if operand not in seen:
                seen.add(operand)
                stack.append(operand)
    return seen


def reference_longest_path_lengths(order: list[int], operands: Mapping
                                   ) -> dict[int, int]:
    """Longest source-to-node path length (in edges) per node."""
    depth: dict[int, int] = {}
    for nid in order:
        if not operands[nid]:
            depth[nid] = 0
        else:
            depth[nid] = 1 + max(depth[o] for o in operands[nid])
    return depth


def reference_critical_path_matrix(order: list[int], operands: Mapping,
                                   delays: Mapping[int, float]
                                   ) -> tuple[np.ndarray, dict[int, int]]:
    """The historical per-node-column all-pairs delay matrix (Alg. 1)."""
    index_of = {node_id: index for index, node_id in enumerate(order)}
    size = len(order)
    matrix = np.full((size, size), NOT_CONNECTED, dtype=float)
    for node_id in order:
        column = index_of[node_id]
        delay = float(delays[node_id])
        operand_columns = sorted({index_of[o] for o in operands[node_id]})
        if operand_columns:
            incoming = matrix[:, operand_columns]
            connected = incoming != NOT_CONNECTED
            candidates = np.where(connected, incoming + delay, NOT_CONNECTED)
            matrix[:, column] = np.maximum(matrix[:, column],
                                           candidates.max(axis=1))
        matrix[column, column] = delay
    return matrix, index_of


def reference_critical_path_between(order: list[int], users: Mapping,
                                    delays: Mapping[int, float],
                                    source: int, sink: int
                                    ) -> tuple[float, list[int]]:
    """Sequential single-source critical path with sorted-user relaxation."""
    best: dict[int, float] = {source: float(delays[source])}
    parent: dict[int, int] = {}
    for node_id in order:
        if node_id not in best:
            continue
        for user in sorted(set(users[node_id])):
            candidate = best[node_id] + float(delays[user])
            if candidate > best.get(user, float("-inf")):
                best[user] = candidate
                parent[user] = node_id
    if sink not in best:
        return NOT_CONNECTED, []
    path = [sink]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return best[sink], path


def reference_sta(netlist, gate_delay: Callable, endpoints=None
                  ) -> tuple[float, tuple[int, ...], dict[int, float]]:
    """The historical per-gate arrival-time STA loop.

    Returns:
        ``(critical_path_delay_ps, critical_path, arrival_times)``.
    """
    ids, operands, users = netlist_adjacency(netlist)
    arrival: dict[int, float] = {}
    predecessor: dict[int, int | None] = {}
    for gate_id in reference_topological_order(ids, operands, users):
        gate = netlist.gate(gate_id)
        delay = gate_delay(gate.kind)
        if not gate.inputs:
            arrival[gate_id] = delay if not gate.kind.is_source else 0.0
            predecessor[gate_id] = None
            continue
        worst_input = max(gate.inputs, key=lambda i: arrival[i])
        arrival[gate_id] = arrival[worst_input] + delay
        predecessor[gate_id] = worst_input
    if endpoints is None:
        endpoints = netlist.outputs() or list(arrival)
    if not endpoints:
        return 0.0, (), arrival
    worst = max(endpoints, key=lambda e: arrival[e])
    path: list[int] = []
    cursor: int | None = worst
    while cursor is not None:
        path.append(cursor)
        cursor = predecessor[cursor]
    path.reverse()
    return arrival[worst], tuple(path), arrival


def reference_in_stage_ancestors(operands: Mapping, is_source: Mapping,
                                 stages: Mapping[int, int], root: int
                                 ) -> set[int]:
    """Same-stage non-source ancestor cone of ``root`` (root included)."""
    stage = stages[root]
    cone: set[int] = {root}
    stack = [root]
    while stack:
        current = stack.pop()
        for operand in operands[current]:
            if operand in cone:
                continue
            if is_source[operand] or stages[operand] != stage:
                continue
            cone.add(operand)
            stack.append(operand)
    return cone


def reference_subgraph_longest_path(order: list[int], operands: Mapping,
                                    members: set[int],
                                    node_delay: Callable[[int], float]
                                    ) -> dict[int, float]:
    """Longest path through the induced subgraph, floored at zero."""
    best: dict[int, float] = {}
    for nid in order:
        if nid not in members:
            continue
        upstream = max((best[op] for op in operands[nid] if op in best),
                       default=0.0)
        best[nid] = upstream + node_delay(nid)
    return best
