"""Sparse all-pairs critical-path sweep over the levelized-CSR view.

The dense :func:`~repro.kernel.ops.critical_path_matrix` spends one whole
``n``-wide row operation per node and level -- ``O(n^2)`` work and memory no
matter how the graph is actually connected.  On wide, shallow, bounded-fanout
designs (the shapes that dominate past ~10k nodes) the number of *connected*
pairs is a tiny fraction of ``n^2``, so this module re-runs the same max-plus
recurrence over a compressed frontier instead: every node keeps only the
sparse row of its ancestors, each level merges the predecessor rows with one
``lexsort`` + segmented ``max`` over the level's gathered entries, and
unconnected pairs never materialise at all.

Exactness is inherited from the dense sweep: ``max`` over floats is
order-independent (ties included), and each node's own delay is added once
*after* the max -- the same two operations on the same floats, so
densifying a :class:`SparseMatrix` reproduces the dense kernel's output
bit-for-bit (``tests/kernel/test_sparse.py`` enforces this on the Table-I
suite, seeded ``gen:`` designs and hypothesis-random graphs).

The sweep is budgeted: past ``nnz_budget`` accumulated entries it returns
``None`` and the caller falls back to the dense kernel, which is exactly the
automatic density cutover of :class:`~repro.kernel.config.KernelConfig`.

Everything here is pure numpy; scipy.sparse is only used (when installed)
to export results via :meth:`SparseMatrix.to_scipy`.
"""

from __future__ import annotations

import numpy as np

from repro.kernel.config import HAVE_SCIPY, KernelConfig, kernel_config
from repro.kernel.ops import NOT_CONNECTED, critical_path_matrix
from repro.kernel.view import GraphView


class SparseMatrix:
    """CSR storage of the all-pairs critical-path delays, transposed.

    Row ``v`` (in dense-index space) holds one entry per *ancestor* ``u`` of
    ``v`` -- the critical-path delay ``D[u][v]`` -- plus the diagonal entry
    ``D[v][v]`` (the node's own delay).  Column indices within a row are
    strictly ascending; because ancestors always precede a node in
    topological order, the diagonal entry is always the last of its row.

    The transposed orientation mirrors how both sweeps build the matrix (one
    contiguous row per *target* node); :meth:`to_dense` returns the normal
    ``matrix[u][v]`` orientation consumers expect.

    Attributes:
        num_nodes: matrix dimension.
        indptr: row boundaries, shape ``(num_nodes + 1,)``.
        indices: ancestor dense indices, back to back.
        data: the delays, aligned with ``indices``.
    """

    __slots__ = ("num_nodes", "indptr", "indices", "data")

    def __init__(self, num_nodes: int, indptr: np.ndarray,
                 indices: np.ndarray, data: np.ndarray) -> None:
        self.num_nodes = num_nodes
        self.indptr = indptr
        self.indices = indices
        self.data = data

    @property
    def nnz(self) -> int:
        """Number of stored (connected) ordered pairs, diagonal included."""
        return int(self.indices.size)

    @property
    def density(self) -> float:
        """``nnz / n^2`` (1.0 for the empty matrix, which is trivially full)."""
        if self.num_nodes == 0:
            return 1.0
        return self.nnz / float(self.num_nodes * self.num_nodes)

    def row(self, target: int) -> tuple[np.ndarray, np.ndarray]:
        """``(ancestor_indices, delays)`` of one transposed row (a view)."""
        start, end = self.indptr[target], self.indptr[target + 1]
        return self.indices[start:end], self.data[start:end]

    def to_dense(self) -> np.ndarray:
        """Densify into the consumer orientation, bit-identical to the dense
        kernel: ``matrix[u][v]`` is the critical delay from ``u`` to ``v``
        and unconnected pairs hold :data:`~repro.kernel.ops.NOT_CONNECTED`.
        """
        n = self.num_nodes
        transposed = np.full((n, n), NOT_CONNECTED, dtype=float)
        if self.indices.size:
            rows = np.repeat(np.arange(n, dtype=np.int64),
                             np.diff(self.indptr))
            transposed[rows, self.indices] = self.data
        return transposed.T

    def transpose_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR arrays of the *matrix* orientation (row ``u`` -> descendants).

        Returns ``(indptr, indices, data)`` where row ``u`` lists every
        descendant ``v`` (ascending, diagonal first) with delay ``D[u][v]``.
        Pure numpy (lexsort), so it works without scipy.
        """
        n = self.num_nodes
        owner = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        order = np.lexsort((owner, self.indices))
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(self.indices, minlength=n), out=indptr[1:])
        return indptr, owner[order], self.data[order]

    def to_scipy(self):
        """Export as ``scipy.sparse.csr_matrix`` in consumer orientation.

        Raises:
            RuntimeError: when scipy is not installed.
        """
        if not HAVE_SCIPY:
            raise RuntimeError("scipy is not available; SparseMatrix.to_scipy"
                               " needs scipy.sparse")
        from scipy import sparse

        indptr, indices, data = self.transpose_arrays()
        return sparse.csr_matrix((data, indices, indptr),
                                 shape=(self.num_nodes, self.num_nodes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SparseMatrix({self.num_nodes} nodes, {self.nnz} entries, "
                f"density {self.density:.4f})")


def sparse_critical_path_matrix(view: GraphView, delays: np.ndarray, *,
                                nnz_budget: int | None = None
                                ) -> SparseMatrix | None:
    """Frontier-compressed all-pairs critical-path sweep (max-plus semiring).

    Level by level, every node's transposed row is the entry-wise max of its
    predecessors' rows plus the node's own delay, followed by the diagonal
    entry -- the same recurrence as the dense kernel, restricted to the
    entries that exist.  The per-level merge is batched: all predecessor
    rows of the level are gathered into one triple of ``(target, ancestor,
    value)`` arrays, grouped with a single ``lexsort`` and reduced with one
    segmented ``max``.

    Args:
        view: the levelized-CSR graph view.
        delays: per-node delays in dense order.
        nnz_budget: abort threshold on accumulated entries; ``None`` means
            unbudgeted.

    Returns:
        The sparse matrix, or ``None`` when the budget was exceeded (the
        caller should fall back to the dense kernel).
    """
    n = view.num_nodes
    empty_idx = np.empty(0, dtype=np.int64)
    empty_val = np.empty(0, dtype=float)
    row_idx: list[np.ndarray] = [empty_idx] * n
    row_val: list[np.ndarray] = [empty_val] * n
    indptr = np.zeros(n + 1, dtype=np.int64)
    if n == 0:
        return SparseMatrix(0, indptr, empty_idx, empty_val)

    pred_indptr, pred_indices = view.pred_indptr, view.pred_indices
    total_nnz = 0
    for level in range(view.num_levels):
        nodes = view.level_nodes(level)
        starts = pred_indptr[nodes]
        counts = pred_indptr[nodes + 1] - starts
        if int(counts.max(initial=0)) == 0:
            # A whole level of sources: rows are pure diagonal entries.
            for v in nodes:
                row_idx[v] = np.asarray([v], dtype=np.int64)
                row_val[v] = np.asarray([delays[v]], dtype=float)
            total_nnz += int(nodes.size)
            if nnz_budget is not None and total_nnz > nnz_budget:
                return None
            continue

        # Gather every predecessor row of the level into one flat triple.
        parts_idx: list[np.ndarray] = []
        parts_val: list[np.ndarray] = []
        part_owner: list[int] = []
        part_len: list[int] = []
        for position, v in enumerate(nodes):
            for slot in range(starts[position],
                              starts[position] + counts[position]):
                p = pred_indices[slot]
                parts_idx.append(row_idx[p])
                parts_val.append(row_val[p])
                part_owner.append(v)
                part_len.append(row_idx[p].shape[0])
        all_cols = np.concatenate(parts_idx)
        all_vals = np.concatenate(parts_val)
        all_owner = np.repeat(np.asarray(part_owner, dtype=np.int64),
                              np.asarray(part_len, dtype=np.int64))

        # Group by (target, ancestor); max over duplicates is exact and
        # order-independent, so one segmented reduction replaces the dense
        # kernel's positional fold.
        grouping = np.lexsort((all_cols, all_owner))
        owner_sorted = all_owner[grouping]
        cols_sorted = all_cols[grouping]
        vals_sorted = all_vals[grouping]
        boundary = np.empty(owner_sorted.size, dtype=bool)
        boundary[0] = True
        np.logical_or(owner_sorted[1:] != owner_sorted[:-1],
                      cols_sorted[1:] != cols_sorted[:-1], out=boundary[1:])
        group_starts = np.nonzero(boundary)[0]
        group_owner = owner_sorted[group_starts]
        group_cols = cols_sorted[group_starts]
        group_vals = np.maximum.reduceat(vals_sorted, group_starts)
        # The node's own delay lands once, after the max -- identical to the
        # dense kernel's ``best += delays[rows]``.
        group_vals = group_vals + delays[group_owner]

        # Append the diagonal at the end of each owner segment (the target
        # is topologically after every ancestor, so rows stay sorted).
        owner_counts = np.bincount(
            np.searchsorted(nodes, group_owner), minlength=nodes.size)
        owner_ends = np.cumsum(owner_counts)
        level_cols = np.insert(group_cols, owner_ends, nodes)
        level_vals = np.insert(group_vals, owner_ends, delays[nodes])

        final_counts = owner_counts + 1
        final_ends = np.cumsum(final_counts)
        final_starts = final_ends - final_counts
        for position, v in enumerate(nodes):
            row_idx[v] = level_cols[final_starts[position]:
                                    final_ends[position]]
            row_val[v] = level_vals[final_starts[position]:
                                    final_ends[position]]
        total_nnz += int(level_cols.size)
        if nnz_budget is not None and total_nnz > nnz_budget:
            return None

    counts_all = np.asarray([row.shape[0] for row in row_idx],
                            dtype=np.int64)
    np.cumsum(counts_all, out=indptr[1:])
    return SparseMatrix(n, indptr, np.concatenate(row_idx),
                        np.concatenate(row_val))


def auto_critical_path_matrix(view: GraphView, delays: np.ndarray, *,
                              config: KernelConfig | None = None
                              ) -> tuple[np.ndarray, SparseMatrix | None]:
    """All-pairs matrix via whichever sweep the active config picks.

    The decision tree of :class:`~repro.kernel.config.KernelConfig`: small
    graphs (or ``matrix_mode="dense"``) go straight to the dense kernel;
    otherwise the sparse sweep runs under the config's nnz budget and falls
    back to dense when the graph turns out too connected.

    Returns:
        ``(matrix, sparse)`` -- the dense consumer-oriented matrix plus the
        :class:`SparseMatrix` it was densified from when the sparse path won
        (``None`` when the dense kernel produced the result).  Both paths
        yield bit-identical matrices.
    """
    config = kernel_config() if config is None else config
    if config.wants_sparse(view.num_nodes):
        sparse = sparse_critical_path_matrix(
            view, delays, nnz_budget=config.nnz_budget(view.num_nodes))
        if sparse is not None:
            return sparse.to_dense(), sparse
    return critical_path_matrix(view, delays), None
