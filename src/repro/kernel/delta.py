"""Structural delta recording on the graph containers.

Next to ``structural_version`` (which says *that* a container changed), the
containers record *what* changed: a flat log of ``("add", id, operands,
is_source)`` / ``("remove", id)`` entries appended by their mutators.  The
log is the input of :mod:`repro.kernel.patch`: when ``GraphView.from_*``
finds a cached view whose version plus the log length equals the current
version, it can splice the delta into the cached arrays instead of
rebuilding the whole view.

The log only exists once a view has been cached (``_store_view`` initialises
it), so containers that never build a view pay nothing; it is capped so a
long-lived container that mutates forever cannot grow an unbounded log --
past the cap the log is dropped and the next view falls back to a full
rebuild.

This module is imported by the container layers (:mod:`repro.ir.graph`,
:mod:`repro.netlist.netlist`, :mod:`repro.aig.aig`), so it must stay
dependency-free -- no numpy, no other kernel modules.
"""

from __future__ import annotations

from typing import Sequence

#: Attribute under which the containers keep their pending delta log.
DELTA_ATTR = "_repro_kernel_delta"

#: Hard cap on pending entries; past it the log is dropped (full rebuild).
DELTA_CAP = 65536


def record_add(container, node_id: int, operands: Sequence[int],
               is_source: bool) -> None:
    """Log a node/gate addition on ``container`` (no-op without a log)."""
    log = getattr(container, DELTA_ATTR, None)
    if log is None:
        return
    if len(log) >= DELTA_CAP:
        setattr(container, DELTA_ATTR, None)
        return
    log.append(("add", node_id, tuple(operands), is_source))


def record_remove(container, node_id: int) -> None:
    """Log a node/gate removal on ``container`` (no-op without a log)."""
    log = getattr(container, DELTA_ATTR, None)
    if log is None:
        return
    if len(log) >= DELTA_CAP:
        setattr(container, DELTA_ATTR, None)
        return
    log.append(("remove", node_id))


def reset_delta_log(container) -> None:
    """Start a fresh (empty) log; called whenever a view is cached."""
    try:
        setattr(container, DELTA_ATTR, [])
    except AttributeError:  # __slots__ containers opt out, like the cache
        pass


def delta_log(container) -> list | None:
    """The pending log, or ``None`` (never initialised / overflowed)."""
    log = getattr(container, DELTA_ATTR, None)
    return log if isinstance(log, list) else None
