"""Incremental GraphView patching from recorded structural deltas.

Rebuilding a :class:`~repro.kernel.view.GraphView` is ``O(nodes + edges)``
of pure-Python loops -- fine once, painful when a 100k-node container takes
a handful of structural edits between queries.  This module rebuilds the
view from the *delta* instead: the cached arrays are spliced (vectorized
numpy) and only the edited region is re-derived, in ``O(delta)`` active
work plus ``O(n)`` array copies.

Exactness rests on a characterization of the repo's deterministic Kahn
order (validated against the reference implementation on randomized DAGs,
and enforced field-by-field by ``tests/kernel/test_patch.py``): the order
equals sorting all nodes by the key ``(position of the last-placed distinct
dependency, node id)``, sources keyed ``(-1, id)``.  Three corollaries make
patching cheap:

* node ids are handed out monotonically, so every added node's id exceeds
  every existing id -- under additions, existing nodes keep their relative
  order and their levels, and a new node slots in right after the last
  existing node whose key does not exceed its own;
* removals are restricted to *sinks* (no users), so removing them never
  changes anyone's key: survivors keep their relative order and levels;
* an added node can only be consumed by nodes added later, so old CSR rows
  never change content -- they are only re-indexed.

``patch_view`` therefore compacts the cached arrays over the removals, then
merges the additions with a heap of ready new nodes against the streamed
old order -- bulk-copying contiguous old runs with numpy and touching
Python only per added node.  Anything the characterization does not cover
(unknown ids, non-sink removals, out-of-order additions) raises
:class:`PatchError` and the caller falls back to a full rebuild.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.kernel.view import GraphView


class PatchError(Exception):
    """The recorded delta cannot be patched; rebuild from scratch."""


def patch_view(old: GraphView, delta: list) -> GraphView:
    """Apply a recorded structural delta to a cached view.

    Args:
        old: the cached view the delta is relative to.
        delta: entries ``("add", id, operand_ids, is_source)`` and
            ``("remove", id)`` in the order the edits happened.

    Returns:
        A view equal, field by field, to a from-scratch rebuild of the
        edited container.

    Raises:
        PatchError: when the delta falls outside the supported shape
            (the caller should rebuild instead).
    """
    added, removed = _net_effect(delta)
    compacted = _compact(old, removed)
    return _merge(compacted, added)


def _net_effect(delta: list) -> tuple[dict[int, tuple[tuple[int, ...], bool]],
                                      list[int]]:
    """Collapse the log into net additions and net removals.

    A node added and later removed inside the same delta cancels out;
    removing it requires it to be user-free at that point, so no surviving
    addition can reference it.
    """
    added: dict[int, tuple[tuple[int, ...], bool]] = {}
    removed: list[int] = []
    for entry in delta:
        tag = entry[0]
        if tag == "add":
            _, node_id, operands, is_source = entry
            added[node_id] = (tuple(operands), bool(is_source))
        elif tag == "remove":
            node_id = entry[1]
            if node_id in added:
                del added[node_id]
            else:
                removed.append(node_id)
        else:
            raise PatchError(f"unknown delta entry {entry!r}")
    return added, removed


class _Compacted:
    """The cached view with net removals compacted away (all ndarray int64)."""

    __slots__ = ("num_nodes", "ids", "pred_indptr", "pred_vals",
                 "succ_counts", "succ_vals", "levels", "source_mask",
                 "last_dep")

    def __init__(self, num_nodes, ids, pred_indptr, pred_vals, succ_counts,
                 succ_vals, levels, source_mask, last_dep):
        self.num_nodes = num_nodes
        self.ids = ids
        self.pred_indptr = pred_indptr
        self.pred_vals = pred_vals
        self.succ_counts = succ_counts
        self.succ_vals = succ_vals
        self.levels = levels
        self.source_mask = source_mask
        self.last_dep = last_dep


def _compact(old: GraphView, removed: list[int]) -> _Compacted:
    """Drop the removed nodes from the cached arrays (vectorized).

    Only *users-closed* removal sets are patchable: every consumer of a
    removed node must itself be removed (guaranteed when the container only
    ever removes user-free nodes).  Survivors then keep their relative
    order and levels, and no surviving CSR entry references a removed node.
    """
    n_old = old.num_nodes
    keep = np.ones(n_old, dtype=bool)
    index_of = old.index_of
    for node_id in removed:
        dense = index_of.get(node_id)
        if dense is None:
            raise PatchError(f"removed node {node_id} not in cached view")
        if not keep[dense]:
            raise PatchError(f"node {node_id} removed twice")
        keep[dense] = False

    old_pred_counts = np.diff(old.pred_indptr)
    old_succ_counts = np.diff(old.succ_indptr)
    if removed:
        removed_users = old.succ_indices[np.repeat(~keep, old_succ_counts)]
        if removed_users.size and keep[removed_users].any():
            raise PatchError("removal set is not users-closed")

    comp_index = np.cumsum(keep, dtype=np.int64) - 1
    n_c = int(keep.sum())

    pred_counts = old_pred_counts[keep]
    pred_vals = comp_index[old.pred_indices[np.repeat(keep, old_pred_counts)]]
    pred_indptr = np.zeros(n_c + 1, dtype=np.int64)
    np.cumsum(pred_counts, out=pred_indptr[1:])

    # Successor rows of survivors, minus entries pointing at removed nodes.
    succ_row = np.repeat(np.arange(n_old, dtype=np.int64), old_succ_counts)
    entry_keep = np.repeat(keep, old_succ_counts)
    entry_keep &= keep[old.succ_indices]
    succ_vals = comp_index[old.succ_indices[entry_keep]]
    succ_counts = np.bincount(comp_index[succ_row[entry_keep]], minlength=n_c
                              ).astype(np.int64)

    # Dense index of each survivor's last (maximum-position) predecessor:
    # with survivors keeping relative order, this is also its last-placed
    # dependency, i.e. the first half of the (epos, id) merge key.
    last_dep = np.full(n_c, -1, dtype=np.int64)
    has_preds = pred_counts > 0
    if has_preds.any():
        last_dep[has_preds] = np.maximum.reduceat(
            pred_vals, pred_indptr[:-1][has_preds])

    return _Compacted(n_c, old.order[keep], pred_indptr, pred_vals,
                      succ_counts, succ_vals, old.levels[keep],
                      old.source_mask[keep], last_dep)


def _merge(comp: _Compacted,
           added: dict[int, tuple[tuple[int, ...], bool]]) -> GraphView:
    """Merge the net additions into the compacted order and splice the CSRs."""
    n_c = comp.num_nodes
    num_new = len(added)
    n = n_c + num_new
    new_ids = np.fromiter(added.keys(), dtype=np.int64, count=num_new)
    if num_new:
        floor = int(comp.ids.max()) if n_c else -1
        if int(new_ids.min()) <= floor or np.any(np.diff(new_ids) <= 0):
            raise PatchError("added ids must be fresh and ascending")

    # Resolve every new node's operands to merge tokens: >= 0 is a compacted
    # old index, < 0 encodes new-node rank r as -(r + 1).  Old ids resolve
    # through a sorted-id binary search rather than an n-wide dict.
    ids_sorter = (np.argsort(comp.ids) if n_c
                  else np.empty(0, dtype=np.int64))
    ids_sorted = comp.ids[ids_sorter]
    new_rank_of = {int(nid): r for r, nid in enumerate(new_ids)}
    new_operand_tokens: list[list[int]] = []
    new_is_source = np.zeros(num_new, dtype=bool)
    has_new_deps = False
    for rank, (node_id, (operands, is_source)) in enumerate(added.items()):
        tokens: list[int] = []
        for operand in operands:
            slot = int(np.searchsorted(ids_sorted, operand))
            if slot < n_c and ids_sorted[slot] == operand:
                tokens.append(int(ids_sorter[slot]))
            else:
                dep_rank = new_rank_of.get(operand)
                if dep_rank is None or dep_rank >= rank:
                    raise PatchError(
                        f"operand {operand} of added node {node_id} unknown")
                tokens.append(-(dep_rank + 1))
                has_new_deps = True
        new_operand_tokens.append(tokens)
        new_is_source[rank] = is_source

    if has_new_deps:
        merged_ids, old_pos, new_pos, placed = _merge_order_chained(
            comp, new_ids, new_operand_tokens)
    else:
        merged_ids, old_pos, new_pos, placed = _merge_order_flat(
            comp, new_ids, new_operand_tokens)

    # ----------------------------------------------------- array splicing
    # Rows of added nodes slot between the (order-preserved) old rows; the
    # i-th placed new node has exactly new_pos - i old rows before it.
    rows_before = (np.sort(new_pos) - np.arange(num_new, dtype=np.int64)
                   if num_new else np.empty(0, dtype=np.int64))

    token_arrays = []
    for rank in placed:
        tokens = np.asarray(new_operand_tokens[rank], dtype=np.int64)
        neg = tokens < 0
        resolved = np.empty(tokens.shape, dtype=np.int64)
        resolved[~neg] = old_pos[tokens[~neg]]
        resolved[neg] = new_pos[-tokens[neg] - 1]
        token_arrays.append(resolved)
    new_pred_counts = np.asarray([t.size for t in token_arrays],
                                 dtype=np.int64)
    new_pred_vals = (np.concatenate(token_arrays) if token_arrays
                     else np.empty(0, dtype=np.int64))

    old_pred_counts = np.diff(comp.pred_indptr)
    pred_counts = np.insert(old_pred_counts, rows_before, new_pred_counts)
    pred_vals = np.insert(old_pos[comp.pred_vals],
                          np.repeat(comp.pred_indptr[rows_before],
                                    new_pred_counts),
                          new_pred_vals)
    pred_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(pred_counts, out=pred_indptr[1:])

    # Successor CSR: old rows (re-indexed) with empty rows spliced in for
    # the added nodes, then the added nodes' edges appended at the end of
    # each producer's segment -- consumers scan in ascending-id order, and
    # every added id exceeds every old id, so appending matches a rebuild.
    succ_counts = np.insert(comp.succ_counts, rows_before,
                            np.zeros(num_new, dtype=np.int64))
    succ_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(succ_counts, out=succ_indptr[1:])
    edge_owner: list[int] = []
    edge_val: list[int] = []
    for rank in range(num_new):
        consumer = int(new_pos[rank])
        tokens = new_operand_tokens[rank]
        for token in tokens:
            owner = (int(old_pos[token]) if token >= 0
                     else int(new_pos[-token - 1]))
            edge_owner.append(owner)
            edge_val.append(consumer)
    succ_vals = old_pos[comp.succ_vals]
    if edge_owner:
        owners = np.asarray(edge_owner, dtype=np.int64)
        values = np.asarray(edge_val, dtype=np.int64)
        by_owner = np.argsort(owners, kind="stable")
        owners = owners[by_owner]
        values = values[by_owner]
        succ_vals = np.insert(succ_vals, succ_indptr[owners + 1], values)
        succ_counts = succ_counts + np.bincount(owners, minlength=n)
        succ_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(succ_counts, out=succ_indptr[1:])

    levels = np.empty(n, dtype=np.int64)
    levels[old_pos] = comp.levels
    for rank in range(num_new):  # id order: dependencies resolve first
        tokens = new_operand_tokens[rank]
        if tokens:
            level = 1 + max(
                int(comp.levels[t]) if t >= 0 else int(levels[new_pos[-t - 1]])
                for t in tokens)
        else:
            level = 0
        levels[new_pos[rank]] = level

    source_mask = np.empty(n, dtype=bool)
    source_mask[old_pos] = comp.source_mask
    source_mask[new_pos] = new_is_source

    return GraphView._from_arrays(
        order_ids=merged_ids.tolist(),  # tolist() yields Python ints
        pred_indptr=pred_indptr, pred_indices=pred_vals,
        succ_indptr=succ_indptr, succ_indices=succ_vals,
        levels=levels, source_mask=source_mask)


def _merge_order_flat(comp: _Compacted, new_ids: np.ndarray,
                      new_operand_tokens: list[list[int]]
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray]:
    """Merge positions when no added node consumes another added node.

    Every new node's key position is then the position of an *old* node,
    and the old key sequence ``comp.last_dep`` is non-decreasing along the
    compacted order (the order *is* the sort by ``(epos, id)``), so the
    whole interleave reduces to two binary searches: a new node whose last
    dependency is compacted index ``d`` goes after the old nodes with
    ``last_dep <= d`` (equal keys break toward the old node's smaller id),
    and new nodes with equal ``d`` order by rank (ascending id).  No
    per-node Python at all.
    """
    n_c = comp.num_nodes
    num_new = len(new_ids)
    d = np.fromiter((max(tokens) if tokens else -1
                     for tokens in new_operand_tokens),
                    dtype=np.int64, count=num_new)
    placed = np.argsort(d, kind="stable")  # merged order of the new nodes
    d_sorted = d[placed]
    new_pos = np.empty(num_new, dtype=np.int64)
    new_pos[placed] = (
        np.searchsorted(comp.last_dep, d_sorted, side="right")
        + np.arange(num_new, dtype=np.int64))
    old_pos = (np.arange(n_c, dtype=np.int64)
               + np.searchsorted(d_sorted, comp.last_dep, side="left"))
    merged_ids = np.empty(n_c + num_new, dtype=np.int64)
    merged_ids[old_pos] = comp.ids
    merged_ids[new_pos] = new_ids
    return merged_ids, old_pos, new_pos, placed


def _merge_order_chained(comp: _Compacted, new_ids: np.ndarray,
                         new_operand_tokens: list[list[int]]
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                    np.ndarray]:
    """General merge positions: a heap of ready new nodes vs the old stream.

    Handles chains of added nodes consuming other added nodes; bulk-copies
    contiguous old runs with :func:`_block_end` and touches Python only per
    added node.
    """
    n_c = comp.num_nodes
    num_new = len(new_ids)
    trigger_old: dict[int, list[int]] = {}
    trigger_new: dict[int, list[int]] = {}
    unplaced = [0] * num_new
    for rank, tokens in enumerate(new_operand_tokens):
        for token in set(tokens):
            if token >= 0:
                trigger_old.setdefault(token, []).append(rank)
            else:
                trigger_new.setdefault(-token - 1, []).append(rank)
            unplaced[rank] += 1

    merged_ids = np.empty(n_c + num_new, dtype=np.int64)
    old_pos = np.empty(n_c, dtype=np.int64)   # compacted index -> merged pos
    new_pos = np.empty(num_new, dtype=np.int64)  # rank -> merged pos
    last_dep_pos = [-1] * num_new
    heap: list[tuple[int, int]] = [(-1, r) for r in range(num_new)
                                   if unplaced[r] == 0]
    heapq.heapify(heap)
    trigger_keys = sorted(trigger_old)
    placement_ranks: list[int] = []  # ranks in merged-position order
    last_dep = comp.last_dep
    pos = 0
    next_old = 0
    trigger_cursor = 0

    def release(rank: int, dep_position: int) -> None:
        unplaced[rank] -= 1
        if dep_position > last_dep_pos[rank]:
            last_dep_pos[rank] = dep_position
        if unplaced[rank] == 0:
            heapq.heappush(heap, (last_dep_pos[rank], rank))

    while next_old < n_c or heap:
        if heap:
            epos_top = heap[0][0]
            block_end = _block_end(last_dep, old_pos, next_old, n_c, pos,
                                   epos_top)
        elif trigger_cursor < len(trigger_keys):
            block_end = trigger_keys[trigger_cursor] + 1
        else:
            block_end = n_c
        if block_end > next_old:
            count = block_end - next_old
            old_pos[next_old:block_end] = np.arange(pos, pos + count,
                                                    dtype=np.int64)
            merged_ids[pos:pos + count] = comp.ids[next_old:block_end]
            next_old = block_end
            pos += count
            while (trigger_cursor < len(trigger_keys)
                   and trigger_keys[trigger_cursor] < next_old):
                trigger = trigger_keys[trigger_cursor]
                trigger_cursor += 1
                for rank in trigger_old[trigger]:
                    release(rank, int(old_pos[trigger]))
            continue
        # The heap top now precedes every remaining old node: place it.
        _epos, rank = heapq.heappop(heap)
        merged_ids[pos] = new_ids[rank]
        new_pos[rank] = pos
        placement_ranks.append(rank)
        for dependent in trigger_new.get(rank, ()):
            release(dependent, pos)
        pos += 1

    placed = np.asarray(placement_ranks, dtype=np.int64)
    return merged_ids, old_pos, new_pos, placed


def _block_end(last_dep: np.ndarray, old_pos: np.ndarray, next_old: int,
               n_c: int, pos: int, epos_top: int) -> int:
    """First old index ``m >= next_old`` whose merge key exceeds the heap top.

    Old node ``m``'s key position is the merged position of its last
    dependency: already placed (``last_dep[m] < next_old``, read from
    ``old_pos``) or placed earlier inside this very block (offset from
    ``pos``).  Old ids are always smaller than new ids, so ties go to the
    old node and the block is exactly the run with key position
    ``<= epos_top``.  Scanned in doubling chunks so the total cost stays
    proportional to the block length, not to the remaining stream.
    """
    chunk = 64
    m = next_old
    while m < n_c:
        end = min(n_c, m + chunk)
        deps = last_dep[m:end]
        placed = deps < next_old
        key_pos = np.where(
            placed,
            old_pos[np.clip(deps, 0, max(next_old - 1, 0))],
            pos + (deps - next_old))
        key_pos = np.where(deps < 0, -1, key_pos)
        beyond = key_pos > epos_top
        if beyond.any():
            return m + int(np.argmax(beyond))
        m = end
        chunk = min(chunk * 2, 65536)
    return n_c
