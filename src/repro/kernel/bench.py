"""Micro-benchmark: historical loops vs the vectorized + sparse kernel.

Two benchmark families back ``BENCH_kernel.json``:

* The **reference ladder** (``--scale``) times the two hot primitives the
  original kernel refactor targeted -- all-pairs delay-matrix initialisation
  (Alg. 1 lines 1--9) and netlist STA -- against the pure-Python reference
  implementations kept in :mod:`repro.kernel.reference`, across seeded
  ``gen:`` designs.  Every timed pair is checked for *byte-identical*
  results, so the benchmark doubles as the divergence gate of the
  ``bench-kernel`` CI job.
* The **huge tier** (``--huge`` / ``--nightly``) times the scaling paths on
  the 10k--100k-node shapes of :data:`repro.designs.generator.HUGE_SHAPES`:
  the sparse all-pairs sweep against the dense kernel, and incremental
  :class:`GraphView` patching against a from-scratch rebuild after a small
  structural delta.  Sparse results are verified bit-identical against the
  dense matrix where one fits in memory, and against sampled
  single-source ``longest_path_from`` rows on the nightly ~100k shape.

Timings are best-of-``--repeats`` (single-shot once a measurement exceeds
``--time-box`` seconds); peak memory is sampled with :mod:`tracemalloc` in a
separate untimed pass.  ``--baseline`` compares the run against a committed
``BENCH_kernel.json`` and fails on a >``--max-regression`` drop of the
largest reference tier's combined speedup.

Usage::

    python -m repro.kernel.bench --scale full --huge --out BENCH_kernel.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
import tracemalloc
from typing import Callable

import numpy as np

from repro.designs.generator import (
    HUGE_SHAPES,
    GeneratorParams,
    LEAN_OP_MIX,
    build_generated_design,
)
from repro.ir.ops import OpKind
from repro.kernel import (
    GraphView,
    NOT_CONNECTED,
    UNREACHED,
    kernel_config,
    longest_path_from,
    set_kernel_config,
    sparse_critical_path_matrix,
)
from repro.kernel import critical_path_matrix as kernel_matrix
from repro.kernel.delta import delta_log
from repro.kernel.patch import patch_view
from repro.kernel.reference import (
    graph_adjacency,
    reference_critical_path_matrix,
    reference_sta,
    reference_topological_order,
)
from repro.kernel.view import _CACHE_ATTR
from repro.netlist.lowering import lower_graph
from repro.netlist.sta import StaticTimingAnalysis
from repro.sdc.delays import node_delays
from repro.tech.delay_model import OperatorModel

_SCALES: dict[str, list[tuple[str, GeneratorParams]]] = {
    "quick": [
        ("small", GeneratorParams(seed=7, depth=6, width=5, op_mix=LEAN_OP_MIX)),
        ("medium", GeneratorParams(seed=7, depth=10, width=12, op_mix=LEAN_OP_MIX)),
        ("large", GeneratorParams(seed=7, depth=14, width=20, op_mix=LEAN_OP_MIX)),
    ],
    "full": [
        ("small", GeneratorParams(seed=7, depth=8, width=8, op_mix=LEAN_OP_MIX)),
        ("medium", GeneratorParams(seed=7, depth=14, width=20, op_mix=LEAN_OP_MIX)),
        ("large", GeneratorParams(seed=7, depth=20, width=40, op_mix=LEAN_OP_MIX)),
        ("xlarge", GeneratorParams(seed=7, depth=28, width=60, op_mix=LEAN_OP_MIX)),
    ],
}

#: Above this node count the dense ``n x n`` comparison is skipped (a 30k
#: matrix alone is ~7 GB); parity then runs against sampled rows.
_DENSE_NODE_CAP = 20_000

#: Structural edits applied for the patch-vs-rebuild comparison.
_PATCH_DELTA = 64

#: Sampled sources for the parity check of dense-infeasible shapes.
_PARITY_SAMPLES = 16


def _best_of(repeats: int, run: Callable[[], object],
             time_box: float = float("inf")) -> tuple[float, object]:
    """Minimum wall-clock over up to ``repeats`` runs, plus the last result.

    Stops repeating once a run exceeds ``time_box`` seconds: at that scale
    run-to-run variance is small against the effects being measured, and the
    huge tier must stay inside a CI time slot.
    """
    best = float("inf")
    result: object = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
        if best > time_box:
            break
    return best, result


def _peak_memory(run: Callable[[], object]) -> int:
    """Peak traced allocation (bytes) of one untimed run."""
    tracemalloc.start()
    try:
        run()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def bench_design(tier: str, params: GeneratorParams, repeats: int) -> dict:
    """Benchmark one reference-ladder design; raises on kernel divergence."""
    graph = build_generated_design(params)
    delays = node_delays(graph, OperatorModel())
    ids, operands, users = graph_adjacency(graph)

    view_start = time.perf_counter()
    view = GraphView.from_dataflow(graph)
    view_build_s = time.perf_counter() - view_start
    delay_vector = view.delay_vector(delays)

    def run_reference_matrix():
        order = reference_topological_order(ids, operands, users)
        return reference_critical_path_matrix(order, operands, delays)

    matrix_ref_s, (matrix_ref, index_ref) = _best_of(repeats, run_reference_matrix)
    matrix_new_s, matrix_new = _best_of(
        repeats, lambda: kernel_matrix(view, delay_vector))
    if index_ref != view.index_of or not np.array_equal(matrix_ref, matrix_new):
        raise SystemExit(
            f"kernel delay matrix diverges from reference on {params.name}")

    netlist = lower_graph(graph).netlist
    sta = StaticTimingAnalysis()
    sta_ref_s, ref_result = _best_of(
        repeats, lambda: reference_sta(netlist, sta.gate_delay))
    # Warm the cached netlist view once, outside the timed region, mirroring
    # how the synthesis flow shares it between optimiser and STA.
    GraphView.from_netlist(netlist)
    sta_new_s, new_result = _best_of(repeats, lambda: sta.run(netlist))
    ref_delay, ref_path, ref_arrival = ref_result
    if (ref_delay != new_result.critical_path_delay_ps
            or ref_path != new_result.critical_path
            or ref_arrival != new_result.arrival_times):
        raise SystemExit(f"kernel STA diverges from reference on {params.name}")

    peak_mem = _peak_memory(lambda: (kernel_matrix(view, delay_vector),
                                     sta.run(netlist)))

    combined_ref = matrix_ref_s + sta_ref_s
    combined_new = matrix_new_s + sta_new_s
    return {
        "name": params.name,
        "tier": tier,
        "num_nodes": len(graph),
        "num_edges": int(len(view.pred_indices)),
        "num_gates": len(netlist),
        "view_build_s": view_build_s,
        "peak_mem_bytes": peak_mem,
        "matrix": {
            "reference_s": matrix_ref_s,
            "kernel_s": matrix_new_s,
            "speedup": matrix_ref_s / matrix_new_s,
        },
        "sta": {
            "reference_s": sta_ref_s,
            "kernel_s": sta_new_s,
            "speedup": sta_ref_s / sta_new_s,
        },
        "combined_speedup": combined_ref / combined_new,
    }


def _sampled_parity(view: GraphView, delay_vector: np.ndarray,
                    sparse, name: str) -> None:
    """Check sparse rows against single-source sweeps on sampled sources.

    For dense-infeasible shapes: ``longest_path_from(s)`` is the logical
    matrix row ``s``, independently computed; the sparse transpose CSR must
    reproduce it exactly on every sampled source.
    """
    indptr, indices, data = sparse.transpose_arrays()
    rng = random.Random(0)
    for source in rng.sample(range(view.num_nodes), _PARITY_SAMPLES):
        values, _ = longest_path_from(view, delay_vector, source,
                                      with_parents=False)
        expected = np.where(values == UNREACHED, NOT_CONNECTED, values)
        row = np.full(view.num_nodes, NOT_CONNECTED, dtype=float)
        row[indices[indptr[source]:indptr[source + 1]]] = (
            data[indptr[source]:indptr[source + 1]])
        if not np.array_equal(row, expected):
            raise SystemExit(
                f"sparse matrix diverges from single-source sweep on "
                f"{name} (source {source})")


def bench_huge_design(shape: str, params: GeneratorParams, repeats: int,
                      time_box: float) -> dict:
    """Benchmark the scaling paths on one huge-tier shape."""
    build_start = time.perf_counter()
    graph = build_generated_design(params)
    graph_build_s = time.perf_counter() - build_start
    delays = node_delays(graph, OperatorModel())

    view_start = time.perf_counter()
    view = GraphView.from_dataflow(graph)
    view_build_s = time.perf_counter() - view_start
    delay_vector = view.delay_vector(delays)
    n = view.num_nodes

    # --- sparse vs dense all-pairs sweep -----------------------------------
    sparse_s, sparse = _best_of(
        repeats,
        lambda: sparse_critical_path_matrix(view, delay_vector,
                                            nnz_budget=None),
        time_box)
    config = kernel_config()
    auto_sparse = (config.wants_sparse(n)
                   and sparse.nnz <= config.nnz_budget(n))
    record_matrix = {
        "sparse_s": sparse_s,
        "nnz": int(sparse.nnz),
        "density": float(sparse.density),
        "auto_picks_sparse": bool(auto_sparse),
        "dense_s": None,
        "sparse_speedup": None,
        "parity": "sampled",
    }
    if n <= _DENSE_NODE_CAP:
        dense_s, dense = _best_of(
            repeats, lambda: kernel_matrix(view, delay_vector), time_box)
        if not np.array_equal(dense, sparse.to_dense()):
            raise SystemExit(
                f"sparse matrix diverges from dense kernel on {params.name}")
        record_matrix.update(dense_s=dense_s,
                             sparse_speedup=dense_s / sparse_s,
                             parity="full")
        del dense
    else:
        _sampled_parity(view, delay_vector, sparse, params.name)

    # --- incremental patch vs full rebuild ---------------------------------
    rng = random.Random(12345)
    node_ids = graph.node_ids()
    for _ in range(_PATCH_DELTA):
        graph.add_node(OpKind.XOR, (rng.choice(node_ids), rng.choice(node_ids)))
    delta = list(delta_log(graph))
    patch_s, patched = _best_of(repeats, lambda: patch_view(view, delta))

    saved_config = kernel_config()
    set_kernel_config(saved_config, patch_mode="never")
    try:
        def rebuild():
            if hasattr(graph, _CACHE_ATTR):
                delattr(graph, _CACHE_ATTR)
            return GraphView.from_dataflow(graph)

        rebuild_s, rebuilt = _best_of(repeats, rebuild, time_box)
    finally:
        set_kernel_config(saved_config)
    if (patched.order_ids() != rebuilt.order_ids()
            or not np.array_equal(patched.levels, rebuilt.levels)
            or not np.array_equal(patched.pred_indptr, rebuilt.pred_indptr)
            or not np.array_equal(patched.pred_indices, rebuilt.pred_indices)
            or not np.array_equal(patched.succ_indptr, rebuilt.succ_indptr)
            or not np.array_equal(patched.succ_indices, rebuilt.succ_indices)):
        raise SystemExit(
            f"patched GraphView diverges from rebuild on {params.name}")

    # --- peak memory (untimed pass; the dense peak is ~2 n^2 doubles by
    # construction, so only the scaling paths are worth sampling) -----------
    sparse_peak = _peak_memory(
        lambda: sparse_critical_path_matrix(view, delay_vector,
                                            nnz_budget=None))
    patch_peak = _peak_memory(lambda: patch_view(view, delta))

    return {
        "name": params.name,
        "tier": "huge",
        "shape": shape,
        "num_nodes": n,
        "num_edges": int(len(view.pred_indices)),
        "graph_build_s": graph_build_s,
        "view_build_s": view_build_s,
        "matrix": record_matrix,
        "patch": {
            "delta": _PATCH_DELTA,
            "patch_s": patch_s,
            "rebuild_s": rebuild_s,
            "speedup": rebuild_s / patch_s,
        },
        "peak_mem": {
            "sparse_bytes": sparse_peak,
            "patch_bytes": patch_peak,
        },
    }


def _gate(condition: bool, message: str) -> int:
    if condition:
        print(message, file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Kernel micro-benchmark (reference vs vectorized, dense "
                    "vs sparse, rebuild vs patch), with built-in divergence "
                    "and regression gates.")
    parser.add_argument("--scale", choices=sorted(_SCALES), default="quick",
                        help="reference-ladder design sizes (default: quick)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default: 3)")
    parser.add_argument("--time-box", type=float, default=5.0,
                        help="seconds past which a measurement is not "
                             "repeated (default: 5)")
    parser.add_argument("--huge", action="store_true",
                        help="also run the huge tier (10k-node shapes)")
    parser.add_argument("--nightly", action="store_true",
                        help="include the ~100k-node nightly shape "
                             "(implies --huge)")
    parser.add_argument("--out", default="BENCH_kernel.json",
                        help="output JSON path (default: BENCH_kernel.json)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless the largest reference tier's "
                             "combined speedup reaches this factor")
    parser.add_argument("--min-sparse-speedup", type=float, default=0.0,
                        help="fail unless every sparse-eligible huge shape "
                             "beats dense by this factor")
    parser.add_argument("--min-patch-speedup", type=float, default=0.0,
                        help="fail unless every huge shape's patch beats a "
                             "rebuild by this factor")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_kernel.json to diff against")
    parser.add_argument("--max-regression", type=float, default=0.2,
                        help="tolerated fractional combined-speedup drop "
                             "versus --baseline (default: 0.2)")
    args = parser.parse_args(argv)

    designs = []
    for tier, params in _SCALES[args.scale]:
        record = bench_design(tier, params, args.repeats)
        designs.append(record)
        print(f"[{tier:>6}] {record['num_nodes']:5d} nodes "
              f"{record['num_gates']:6d} gates | "
              f"matrix {record['matrix']['speedup']:5.1f}x | "
              f"sta {record['sta']['speedup']:5.1f}x | "
              f"combined {record['combined_speedup']:5.1f}x")

    huge = []
    if args.huge or args.nightly:
        for shape, params in HUGE_SHAPES:
            if shape == "xwide" and not args.nightly:
                continue
            record = bench_huge_design(shape, params, args.repeats,
                                       args.time_box)
            huge.append(record)
            matrix = record["matrix"]
            sparse_part = (f"sparse {matrix['sparse_speedup']:5.1f}x vs dense"
                           if matrix["sparse_speedup"] is not None
                           else f"sparse {matrix['sparse_s']:.2f}s "
                                f"({matrix['parity']} parity)")
            print(f"[huge:{shape:>6}] {record['num_nodes']:6d} nodes | "
                  f"{sparse_part} | density {matrix['density']:.3f} | "
                  f"patch {record['patch']['speedup']:5.1f}x vs rebuild")

    largest = designs[-1]
    payload = {
        "schema": 2,
        "scale": args.scale,
        "repeats": args.repeats,
        "designs": designs,
        "largest": {
            "name": largest["name"],
            "tier": largest["tier"],
            "matrix_speedup": largest["matrix"]["speedup"],
            "sta_speedup": largest["sta"]["speedup"],
            "combined_speedup": largest["combined_speedup"],
        },
    }
    if huge:
        sparse_speedups = [r["matrix"]["sparse_speedup"] for r in huge
                           if r["matrix"]["sparse_speedup"] is not None
                           and r["matrix"]["auto_picks_sparse"]]
        payload["huge"] = {
            "shapes": huge,
            "min_sparse_speedup": min(sparse_speedups, default=None),
            "min_patch_speedup": min(r["patch"]["speedup"] for r in huge),
        }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    failures = 0
    if args.min_speedup:
        failures += _gate(
            largest["combined_speedup"] < args.min_speedup,
            f"combined speedup {largest['combined_speedup']:.2f}x below "
            f"required {args.min_speedup:.2f}x")
    if huge and args.min_sparse_speedup:
        worst = payload["huge"]["min_sparse_speedup"]
        failures += _gate(
            worst is None or worst < args.min_sparse_speedup,
            f"huge-tier sparse speedup {worst} below required "
            f"{args.min_sparse_speedup:.2f}x")
    if huge and args.min_patch_speedup:
        worst = payload["huge"]["min_patch_speedup"]
        failures += _gate(
            worst < args.min_patch_speedup,
            f"huge-tier patch speedup {worst:.2f}x below required "
            f"{args.min_patch_speedup:.2f}x")
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        if baseline.get("scale") != args.scale:
            # Tier names mean different sizes per scale, so a cross-scale
            # speedup comparison would gate on noise; skip loudly instead.
            print(f"baseline scale {baseline.get('scale')!r} != run scale "
                  f"{args.scale!r}; skipping the regression gate")
        else:
            reference = baseline["largest"]["combined_speedup"]
            floor = (1.0 - args.max_regression) * reference
            failures += _gate(
                largest["combined_speedup"] < floor,
                f"combined speedup {largest['combined_speedup']:.2f}x "
                f"regressed >{args.max_regression:.0%} from baseline "
                f"{reference:.2f}x")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
