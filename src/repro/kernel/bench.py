"""Micro-benchmark: historical per-node loops vs the vectorized kernel.

Times the two hot primitives the kernel refactor targets -- all-pairs
delay-matrix initialisation (Alg. 1 lines 1--9) and netlist STA -- against
the pure-Python reference implementations kept in
:mod:`repro.kernel.reference`, across a ladder of seeded ``gen:`` design
sizes.  Every timed pair is also checked for *byte-identical* results, so the
benchmark doubles as the divergence gate of the ``bench-kernel`` CI job.

Usage::

    python -m repro.kernel.bench --scale full --out BENCH_kernel.json

The JSON records, per design: node/edge/gate counts and best-of-``--repeats``
timings for reference and kernel (matrix and STA), plus the per-primitive and
combined speedups.  Kernel timings are measured with the design's
:class:`~repro.kernel.GraphView` warm (the view is built once per graph and
shared by every consuming layer); the one-off view construction cost is
reported separately as ``view_build_s``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable

import numpy as np

from repro.designs.generator import GeneratorParams, build_generated_design
from repro.kernel import GraphView
from repro.kernel import critical_path_matrix as kernel_matrix
from repro.kernel.reference import (
    graph_adjacency,
    reference_critical_path_matrix,
    reference_sta,
    reference_topological_order,
)
from repro.netlist.lowering import lower_graph
from repro.netlist.sta import StaticTimingAnalysis
from repro.sdc.delays import node_delays
from repro.tech.delay_model import OperatorModel

#: (tier, generator parameters) ladder per scale.  The op mix drops ``mul``
#: so the gate-level designs stay lowerable in seconds at every size.
_OP_MIX: tuple[tuple[str, int], ...] = (
    ("add", 4), ("sub", 2), ("xor", 3), ("and", 2), ("or", 2), ("rotr", 1),
)

_SCALES: dict[str, list[tuple[str, GeneratorParams]]] = {
    "quick": [
        ("small", GeneratorParams(seed=7, depth=6, width=5, op_mix=_OP_MIX)),
        ("medium", GeneratorParams(seed=7, depth=10, width=12, op_mix=_OP_MIX)),
        ("large", GeneratorParams(seed=7, depth=14, width=20, op_mix=_OP_MIX)),
    ],
    "full": [
        ("small", GeneratorParams(seed=7, depth=8, width=8, op_mix=_OP_MIX)),
        ("medium", GeneratorParams(seed=7, depth=14, width=20, op_mix=_OP_MIX)),
        ("large", GeneratorParams(seed=7, depth=20, width=40, op_mix=_OP_MIX)),
        ("xlarge", GeneratorParams(seed=7, depth=28, width=60, op_mix=_OP_MIX)),
    ],
}


def _best_of(repeats: int, run: Callable[[], object]) -> tuple[float, object]:
    """Minimum wall-clock over ``repeats`` runs, plus the last result."""
    best = float("inf")
    result: object = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_design(tier: str, params: GeneratorParams, repeats: int) -> dict:
    """Benchmark one generated design; raises on any kernel divergence."""
    graph = build_generated_design(params)
    delays = node_delays(graph, OperatorModel())
    ids, operands, users = graph_adjacency(graph)

    view_start = time.perf_counter()
    view = GraphView.from_dataflow(graph)
    view_build_s = time.perf_counter() - view_start
    delay_vector = view.delay_vector(delays)

    def run_reference_matrix():
        order = reference_topological_order(ids, operands, users)
        return reference_critical_path_matrix(order, operands, delays)

    matrix_ref_s, (matrix_ref, index_ref) = _best_of(repeats, run_reference_matrix)
    matrix_new_s, matrix_new = _best_of(
        repeats, lambda: kernel_matrix(view, delay_vector))
    if index_ref != view.index_of or not np.array_equal(matrix_ref, matrix_new):
        raise SystemExit(
            f"kernel delay matrix diverges from reference on {params.name}")

    netlist = lower_graph(graph).netlist
    sta = StaticTimingAnalysis()
    sta_ref_s, ref_result = _best_of(
        repeats, lambda: reference_sta(netlist, sta.gate_delay))
    # Warm the cached netlist view once, outside the timed region, mirroring
    # how the synthesis flow shares it between optimiser and STA.
    GraphView.from_netlist(netlist)
    sta_new_s, new_result = _best_of(repeats, lambda: sta.run(netlist))
    ref_delay, ref_path, ref_arrival = ref_result
    if (ref_delay != new_result.critical_path_delay_ps
            or ref_path != new_result.critical_path
            or ref_arrival != new_result.arrival_times):
        raise SystemExit(f"kernel STA diverges from reference on {params.name}")

    combined_ref = matrix_ref_s + sta_ref_s
    combined_new = matrix_new_s + sta_new_s
    return {
        "name": params.name,
        "tier": tier,
        "num_nodes": len(graph),
        "num_edges": int(len(view.pred_indices)),
        "num_gates": len(netlist),
        "view_build_s": view_build_s,
        "matrix": {
            "reference_s": matrix_ref_s,
            "kernel_s": matrix_new_s,
            "speedup": matrix_ref_s / matrix_new_s,
        },
        "sta": {
            "reference_s": sta_ref_s,
            "kernel_s": sta_new_s,
            "speedup": sta_ref_s / sta_new_s,
        },
        "combined_speedup": combined_ref / combined_new,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Kernel micro-benchmark (reference vs vectorized), "
                    "with a built-in divergence gate.")
    parser.add_argument("--scale", choices=sorted(_SCALES), default="quick",
                        help="design-size ladder (default: quick)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default: 3)")
    parser.add_argument("--out", default="BENCH_kernel.json",
                        help="output JSON path (default: BENCH_kernel.json)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless the largest tier's combined "
                             "speedup reaches this factor (default: off)")
    args = parser.parse_args(argv)

    designs = []
    for tier, params in _SCALES[args.scale]:
        record = bench_design(tier, params, args.repeats)
        designs.append(record)
        print(f"[{tier:>6}] {record['num_nodes']:5d} nodes "
              f"{record['num_gates']:6d} gates | "
              f"matrix {record['matrix']['speedup']:5.1f}x | "
              f"sta {record['sta']['speedup']:5.1f}x | "
              f"combined {record['combined_speedup']:5.1f}x")

    largest = designs[-1]
    payload = {
        "schema": 1,
        "scale": args.scale,
        "repeats": args.repeats,
        "designs": designs,
        "largest": {
            "name": largest["name"],
            "tier": largest["tier"],
            "matrix_speedup": largest["matrix"]["speedup"],
            "sta_speedup": largest["sta"]["speedup"],
            "combined_speedup": largest["combined_speedup"],
        },
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    if args.min_speedup and largest["combined_speedup"] < args.min_speedup:
        print(f"combined speedup {largest['combined_speedup']:.2f}x below "
              f"required {args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
