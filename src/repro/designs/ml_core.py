"""Synthetic ML-processor datapaths (the paper's ML-core benchmarks).

The paper's ML-core is a proprietary machine-learning processor; its
datapath0 executes five different opcodes (quantised multiply, MAC lanes of
increasing width, ...), datapath1 is a small dot-product unit, and datapath2
is a deeper accumulation/normalisation pipeline.  The generators below keep
the same flavour and, crucially, the same size ordering reported in Table I
(opcode4 < opcode3 < opcode0 < opcode1 < opcode2 < all-opcodes).
"""

from __future__ import annotations

from repro.ir.builder import GraphBuilder
from repro.ir.graph import DataflowGraph
from repro.ir.node import Node


def _clamp(builder: GraphBuilder, value: Node, low: int, high: int,
           width: int, name: str = "") -> Node:
    """Clamp ``value`` into [low, high] with compare/select pairs."""
    low_const = builder.constant(low, width)
    high_const = builder.constant(high, width)
    above = builder.ugt(value, high_const)
    clipped_high = builder.select(above, high_const, value)
    below = builder.ult(clipped_high, low_const)
    return builder.select(below, low_const, clipped_high, name=name)


def _mac_lane(builder: GraphBuilder, activation: Node, weight: Node,
              accumulator: Node, width: int, tag: str) -> Node:
    """One multiply-accumulate lane with a requantising shift."""
    product = builder.mul(activation, weight, name=f"{tag}_mul")
    shifted = builder.shrl_const(product, 2, name=f"{tag}_shift")
    return builder.add(accumulator, shifted, name=f"{tag}_acc")


def build_ml_core_datapath0_opcode(opcode: int, width: int = 32) -> DataflowGraph:
    """One opcode of the ML-core datapath0.

    Args:
        opcode: 0--4, matching the paper's ``ML-core datapath0 opcodeN`` rows.
            Higher opcode numbers 1 and 2 are wider (more MAC lanes); opcode 4
            is the smallest (a single requantising multiply); opcode 0 is a
            quantised multiply with clamping; opcode 3 is a two-lane MAC.
        width: datapath word width (32 keeps individual multiplies above the
            2.5 ns clock, which is why these rows use a 5 ns clock in the
            paper and here).
    """
    if opcode not in range(5):
        raise ValueError(f"opcode must be 0..4, got {opcode}")
    lanes_by_opcode = {4: 1, 3: 2, 0: 2, 1: 4, 2: 8}
    lanes = lanes_by_opcode[opcode]
    builder = GraphBuilder(f"ml_core_datapath0_opcode{opcode}")

    activations = [builder.param(f"act{i}", width) for i in range(lanes)]
    weights = [builder.param(f"wgt{i}", width) for i in range(lanes)]
    bias = builder.param("bias", width)

    if opcode == 4:
        product = builder.mul(activations[0], weights[0], name="q_mul")
        requantised = builder.shrl_const(product, 8, name="q_shift")
        result = builder.add(requantised, bias, name="q_bias")
    elif opcode == 0:
        accumulator: Node = bias
        for lane in range(lanes):
            accumulator = _mac_lane(builder, activations[lane], weights[lane],
                                    accumulator, width, f"lane{lane}")
        result = _clamp(builder, accumulator, 0, (1 << (width - 1)) - 1, width,
                        name="clamped")
    else:
        accumulator = bias
        for lane in range(lanes):
            accumulator = _mac_lane(builder, activations[lane], weights[lane],
                                    accumulator, width, f"lane{lane}")
        scale = builder.param("scale", width)
        rescaled = builder.mul(accumulator, scale, name="rescale")
        result = builder.shrl_const(rescaled, 8, name="requant")
        if opcode == 2:
            # The widest opcode also applies a ReLU and a saturating add.
            zero = builder.constant(0, width)
            negative = builder.slt(result, zero, name="is_negative")
            relu = builder.select(negative, zero, result, name="relu")
            result = builder.add(relu, bias, name="post_bias")
    builder.output(result, name="out")
    return builder.graph


def build_ml_core_datapath0_all(width: int = 32) -> DataflowGraph:
    """All five opcodes of datapath0 merged behind an opcode selector mux."""
    builder = GraphBuilder("ml_core_datapath0_all")
    opcode_select = builder.param("opcode", 3)
    lanes = 8
    activations = [builder.param(f"act{i}", width) for i in range(lanes)]
    weights = [builder.param(f"wgt{i}", width) for i in range(lanes)]
    bias = builder.param("bias", width)
    scale = builder.param("scale", width)

    results: list[Node] = []

    # opcode 4: single requantising multiply.
    product = builder.mul(activations[0], weights[0], name="op4_mul")
    results.append(builder.add(builder.shrl_const(product, 8), bias, name="op4"))

    # opcode 0: 2-lane MAC with clamp.
    accumulator: Node = bias
    for lane in range(2):
        accumulator = _mac_lane(builder, activations[lane], weights[lane],
                                accumulator, width, f"op0_lane{lane}")
    results.append(_clamp(builder, accumulator, 0, (1 << (width - 1)) - 1, width,
                          name="op0"))

    # opcodes 3, 1, 2: MAC trees of increasing width with rescale.
    for opcode, lane_count in ((3, 2), (1, 4), (2, 8)):
        accumulator = bias
        for lane in range(lane_count):
            accumulator = _mac_lane(builder, activations[lane], weights[lane],
                                    accumulator, width, f"op{opcode}_lane{lane}")
        rescaled = builder.mul(accumulator, scale, name=f"op{opcode}_rescale")
        results.append(builder.shrl_const(rescaled, 8, name=f"op{opcode}"))

    # Opcode selector: a mux chain over the five results.
    selected = results[0]
    for index, candidate in enumerate(results[1:], start=1):
        code = builder.constant(index, 3)
        is_match = builder.eq(opcode_select, code, name=f"match{index}")
        selected = builder.select(is_match, candidate, selected, name=f"mux{index}")
    builder.output(selected, name="out")
    return builder.graph


def build_ml_core_datapath1(lanes: int = 4, width: int = 16) -> DataflowGraph:
    """Small dot-product unit (the paper's smallest benchmark, datapath1)."""
    builder = GraphBuilder("ml_core_datapath1")
    activations = [builder.param(f"act{i}", width) for i in range(lanes)]
    weights = [builder.param(f"wgt{i}", width) for i in range(lanes)]
    bias = builder.param("bias", width)

    products = [builder.mul(a, w, name=f"prod{i}")
                for i, (a, w) in enumerate(zip(activations, weights))]
    total = builder.add_tree(products, name="dot")
    biased = builder.add(total, bias, name="biased")
    builder.output(biased, name="out")
    return builder.graph


def build_ml_core_datapath2(lanes: int = 8, width: int = 16,
                            depth: int = 4) -> DataflowGraph:
    """Deeper accumulation / normalisation pipeline (datapath2).

    ``depth`` rounds of: elementwise multiply, accumulate into a running sum,
    range-normalise by the running maximum (compare/select chains), which
    yields the ~10-stage schedule of the paper's row without any operation
    exceeding the 2.5 ns clock.
    """
    builder = GraphBuilder("ml_core_datapath2")
    values = [builder.param(f"v{i}", width) for i in range(lanes)]
    gains = [builder.param(f"g{i}", width) for i in range(lanes)]
    running_sum: Node = builder.constant(0, width, name="sum0")
    running_max: Node = builder.constant(1, width, name="max0")

    for round_index in range(depth):
        scaled = []
        for lane in range(lanes):
            product = builder.mul(values[lane], gains[(lane + round_index) % lanes],
                                  name=f"r{round_index}_mul{lane}")
            scaled.append(builder.shrl_const(product, 4,
                                             name=f"r{round_index}_shift{lane}"))
        round_sum = builder.add_tree(scaled, name=f"r{round_index}_sum")
        running_sum = builder.add(running_sum, round_sum, name=f"sum{round_index + 1}")
        is_larger = builder.ugt(round_sum, running_max, name=f"r{round_index}_cmp")
        running_max = builder.select(is_larger, round_sum, running_max,
                                     name=f"max{round_index + 1}")
        # Normalise the running sum against the maximum (shift approximates
        # the divide the real datapath performs with a reciprocal multiply).
        normalised = builder.sub(running_sum, running_max, name=f"r{round_index}_norm")
        running_sum = builder.select(
            builder.ugt(running_sum, running_max, name=f"r{round_index}_ovf"),
            normalised, running_sum, name=f"r{round_index}_clip")

    builder.output(running_sum, name="sum_out")
    builder.output(running_max, name="max_out")
    return builder.graph
