"""File-based design ingestion: ``.ir`` textual files as benchmark cases.

``runner campaign --design path/to/file.ir`` (and ``runner dse``) resolve
design names ending in ``.ir`` through this module instead of the Table-I
registry: the file is parsed with the hardened textual-IR parser, verified
structurally, and wrapped as a :class:`~repro.designs.suite.BenchmarkCase`
whose factory re-parses the file -- campaign workers rebuild designs from
the job's design name alone, so the name *is* the path and the file must
stay readable for the run's duration.

The file's optional ``clock <picoseconds>`` directive selects the case's
clock period (default 2500 ps, the suite's standard).
"""

from __future__ import annotations

import os

from repro.designs.suite import BenchmarkCase
from repro.ir.graph import DataflowGraph
from repro.ir.textual import parse_design_text
from repro.ir.verify import IRVerificationError, verify_graph

DEFAULT_CLOCK_PS = 2500.0


def is_ir_path(name: str) -> bool:
    """True when a design name denotes a textual-IR file."""
    return name.endswith(".ir")


def load_ir_design(path: str) -> tuple[DataflowGraph, float]:
    """Parse and verify one ``.ir`` file.

    Returns:
        ``(graph, clock_period_ps)``.

    Raises:
        ValueError: when the file is missing, unparsable (with the
            offending line number) or structurally invalid -- file
            ingestion never surfaces ``KeyError``/``OSError`` to callers.
    """
    if not os.path.isfile(path):
        raise ValueError(f"design file not found: {path!r}")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ValueError(f"cannot read design file {path!r}: {exc}") from None
    try:
        graph, clock_ps = parse_design_text(text)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None
    try:
        verify_graph(graph)
    except IRVerificationError as exc:
        raise ValueError(f"{path}: {exc}") from None
    return graph, clock_ps if clock_ps is not None else DEFAULT_CLOCK_PS


def ir_file_case(path: str) -> BenchmarkCase:
    """Wrap a ``.ir`` file as a :class:`BenchmarkCase`.

    The file is parsed eagerly once (so malformed files fail at resolution
    time, not inside a worker) and again by the factory at build time
    (workers re-resolve cases by name).

    Raises:
        ValueError: when the file cannot be loaded (see :func:`load_ir_design`).
    """
    _, clock_ps = load_ir_design(path)

    def factory() -> DataflowGraph:
        graph, _ = load_ir_design(path)
        return graph

    return BenchmarkCase(path, clock_ps, factory, "small")


__all__ = ["DEFAULT_CLOCK_PS", "ir_file_case", "is_ir_path", "load_ir_design"]
