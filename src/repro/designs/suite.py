"""The Table-I benchmark suite and the ablation design."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.designs.arith import (
    build_binary_divide,
    build_float32_fast_rsqrt,
    build_fpexp32,
    build_rrot,
)
from repro.designs.crypto import build_crc32, build_sha256
from repro.designs.media import build_hsv2rgb, build_video_core_datapath
from repro.designs.misc import build_internal_datapath
from repro.designs.ml_core import (
    build_ml_core_datapath0_all,
    build_ml_core_datapath0_opcode,
    build_ml_core_datapath1,
    build_ml_core_datapath2,
)
from repro.ir.graph import DataflowGraph


@dataclass(frozen=True)
class BenchmarkCase:
    """One row of the Table-I benchmark suite.

    Attributes:
        name: row name, matching the paper's benchmark naming.
        clock_period_ps: target clock period (2500 ps, or 5000 ps for the
            designs whose individual multiplies exceed 2500 ps -- the same
            rule the paper applies).
        factory: zero-argument callable building the design's DFG.
        scale: relative size class ("small", "medium", "large"), used by the
            pytest benchmarks to pick tractable subsets.
    """

    name: str
    clock_period_ps: float
    factory: Callable[[], DataflowGraph]
    scale: str = "small"

    def build(self) -> DataflowGraph:
        """Instantiate the design."""
        graph = self.factory()
        graph.name = self.name
        return graph


def table1_suite() -> list[BenchmarkCase]:
    """The 17 benchmark cases of Table I, in the paper's row order.

    The proprietary SoC datapaths are synthetic stand-ins (see the package
    docstring); sha256 and fpexp use reduced round/degree counts so the whole
    suite runs in minutes rather than hours, while preserving the relative
    size ordering of the rows.
    """
    return [
        BenchmarkCase("ML-core datapath1", 2500.0,
                      lambda: build_ml_core_datapath1(lanes=4, width=16), "small"),
        BenchmarkCase("ML-core datapath0 opcode4", 5000.0,
                      lambda: build_ml_core_datapath0_opcode(4), "small"),
        BenchmarkCase("rrot", 2500.0,
                      lambda: build_rrot(width=32, num_rounds=6), "small"),
        BenchmarkCase("ML-core datapath0 opcode3", 5000.0,
                      lambda: build_ml_core_datapath0_opcode(3), "small"),
        BenchmarkCase("binary divide", 2500.0,
                      lambda: build_binary_divide(width=16), "small"),
        BenchmarkCase("hsv2rgb", 5000.0, build_hsv2rgb, "small"),
        BenchmarkCase("ML-core datapath0 opcode0", 5000.0,
                      lambda: build_ml_core_datapath0_opcode(0), "small"),
        BenchmarkCase("crc32", 2500.0,
                      lambda: build_crc32(num_steps=24), "small"),
        BenchmarkCase("ML-core datapath0 opcode1", 5000.0,
                      lambda: build_ml_core_datapath0_opcode(1), "medium"),
        BenchmarkCase("ML-core datapath0 opcode2", 5000.0,
                      lambda: build_ml_core_datapath0_opcode(2), "medium"),
        BenchmarkCase("ML-core datapath0 (all opcodes)", 5000.0,
                      build_ml_core_datapath0_all, "medium"),
        BenchmarkCase("ML-core datapath2", 2500.0,
                      lambda: build_ml_core_datapath2(lanes=8, width=16, depth=4),
                      "medium"),
        BenchmarkCase("float32 fast rsqrt", 5000.0,
                      lambda: build_float32_fast_rsqrt(newton_iterations=2),
                      "medium"),
        BenchmarkCase("video-core datapath", 2500.0,
                      lambda: build_video_core_datapath(taps=5, width=16),
                      "large"),
        BenchmarkCase("internal datapath", 2500.0,
                      lambda: build_internal_datapath(num_rounds=12), "large"),
        BenchmarkCase("sha256", 2500.0,
                      lambda: build_sha256(num_rounds=10), "large"),
        BenchmarkCase("fpexp 32", 5000.0,
                      lambda: build_fpexp32(polynomial_degree=5, num_segments=2),
                      "large"),
    ]


def suite_by_name(name: str) -> BenchmarkCase:
    """Look up a Table-I case by its exact row name.

    Raises:
        KeyError: if no case has that name.
    """
    for case in table1_suite():
        if case.name == name:
            return case
    raise KeyError(f"no benchmark named {name!r}")


def ablation_design(depth: int = 4, lanes: int = 8) -> tuple[DataflowGraph, float]:
    """The design used for the Fig. 5 / Fig. 6 extraction-strategy ablations.

    The paper runs its ablations on a single mid-size XLS design at a 400 MHz
    clock (2500 ps); a deeper variant of the ML-core datapath2 pipeline plays
    that role here.

    Returns:
        ``(graph, clock_period_ps)``.
    """
    graph = build_ml_core_datapath2(lanes=lanes, width=16, depth=depth)
    graph.name = "ablation_ml_core_datapath2"
    return graph, 2500.0
