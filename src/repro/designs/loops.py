"""Seeded pipelined-loop benchmark generator (the ``loop:`` design tier).

Mirrors the feed-forward ``gen:`` tier in :mod:`repro.designs.generator`:
a :class:`LoopParams` value is the *name* (every parameter is encoded in
the canonical ``loop:`` string, so campaign workers can re-build the exact
design from the job's design name alone), and the build is deterministic
in the seed.

The shape is a pipelined reduction loop: ``num_phis`` loop-carried
accumulators are initialised from the primary inputs, a ``depth``-layer
random operation body mixes the accumulators with streaming inputs, and
each accumulator's back-edge closes from a distinct node of the last
layer with a seeded iteration distance in ``1..max_distance``.  Larger
depths produce longer recurrences and therefore larger minimum IIs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.designs.suite import BenchmarkCase
from repro.ir.builder import GraphBuilder
from repro.ir.graph import DataflowGraph
from repro.ir.node import Node

LOOP_PREFIX = "loop:"

_BODY_OPS = ("add", "sub", "xor", "and", "or", "select")


@dataclass(frozen=True)
class LoopParams:
    """Shape parameters of one generated pipelined-loop design.

    Attributes:
        seed: RNG seed; the only source of randomness.
        depth: operation layers in the loop body.
        width: operations per layer.
        bit_width: word width of every value.
        num_inputs: streaming primary inputs feeding the body.
        num_phis: loop-carried accumulators.
        max_distance: back-edge distances are drawn from ``1..max_distance``.
        clock_period_ps: target clock period of the resulting benchmark case.
    """

    seed: int = 0
    depth: int = 4
    width: int = 3
    bit_width: int = 16
    num_inputs: int = 2
    num_phis: int = 2
    max_distance: int = 1
    clock_period_ps: float = 2500.0

    def __post_init__(self) -> None:
        if self.depth < 1 or self.width < 1:
            raise ValueError("depth and width must be at least 1")
        if self.bit_width < 2 or self.num_inputs < 1:
            raise ValueError("bit_width must be >= 2 and num_inputs >= 1")
        if self.num_phis < 1 or self.num_phis > self.width:
            raise ValueError("num_phis must be in 1..width")
        if self.max_distance < 1:
            raise ValueError("max_distance must be at least 1")
        if self.clock_period_ps <= 0:
            raise ValueError("clock_period_ps must be positive")

    @property
    def name(self) -> str:
        """Canonical ``loop:`` registry name encoding every parameter."""
        return (f"{LOOP_PREFIX}seed={self.seed},depth={self.depth},"
                f"width={self.width},bits={self.bit_width},"
                f"inputs={self.num_inputs},phis={self.num_phis},"
                f"dist={self.max_distance},clock={self.clock_period_ps:g}")

    @classmethod
    def from_name(cls, name: str) -> "LoopParams":
        """Parse a canonical ``loop:`` name back into parameters.

        Raises:
            ValueError: if the name is not a well-formed ``loop:`` spec.
        """
        if not name.startswith(LOOP_PREFIX):
            raise ValueError(f"not a loop-design name: {name!r}")
        fields: dict[str, str] = {}
        for part in name[len(LOOP_PREFIX):].split(","):
            key, _, value = part.partition("=")
            if not value:
                raise ValueError(f"malformed loop-design field {part!r}")
            fields[key] = value
        try:
            return cls(seed=int(fields["seed"]), depth=int(fields["depth"]),
                       width=int(fields["width"]),
                       bit_width=int(fields["bits"]),
                       num_inputs=int(fields["inputs"]),
                       num_phis=int(fields["phis"]),
                       max_distance=int(fields.get("dist", 1)),
                       clock_period_ps=float(fields.get("clock", 2500.0)))
        except (KeyError, ValueError) as error:
            raise ValueError(f"malformed loop-design name {name!r}: {error}")


def build_loop_design(params: LoopParams) -> DataflowGraph:
    """Build the deterministic pipelined-loop DFG described by ``params``."""
    rng = random.Random(params.seed)
    builder = GraphBuilder(params.name)
    bits = params.bit_width

    inputs = [builder.param(f"in{i}", bits) for i in range(params.num_inputs)]
    phis = [builder.phi(inputs[i % params.num_inputs], name=f"acc{i}")
            for i in range(params.num_phis)]

    layers: list[list[Node]] = [phis + inputs]
    for level in range(params.depth):
        pool = layers[-1] + (phis if level else [])
        current: list[Node] = []
        for position in range(params.width):
            op = rng.choice(_BODY_OPS)
            a = rng.choice(pool)
            b = rng.choice(pool)
            tag = f"l{level}_n{position}"
            if op == "add":
                value = builder.add(a, b, name=tag)
            elif op == "sub":
                value = builder.sub(a, b, name=tag)
            elif op == "xor":
                value = builder.xor(a, b, name=tag)
            elif op == "and":
                value = builder.and_(a, b, name=tag)
            elif op == "or":
                value = builder.or_(a, b, name=tag)
            else:  # select: compare + mux pair
                cond = builder.ugt(a, b, name=f"{tag}_cmp")
                value = builder.select(cond, a, b, name=tag)
            current.append(value)
        layers.append(current)

    # Close each accumulator's recurrence from a distinct last-layer node
    # (cycling when there are more phis than layer positions).
    last = layers[-1]
    for index, phi in enumerate(phis):
        src = last[index % len(last)]
        distance = rng.randint(1, params.max_distance)
        builder.back_edge(phi, src, distance)

    # Every sink becomes a primary output so no body logic is dead.
    for node in builder.graph.nodes():
        if not node.is_source and not builder.graph.users_of(node.node_id):
            builder.output(node, name=f"out_{node.name or node.node_id}")
    return builder.graph


def loop_case(params: LoopParams) -> BenchmarkCase:
    """Wrap a parameter set as a :class:`BenchmarkCase` (Table-I compatible)."""
    return BenchmarkCase(params.name, params.clock_period_ps,
                         lambda: build_loop_design(params), "small")


def loop_suite(count: int = 3, seed: int = 0, depth: int = 4, width: int = 3,
               max_distance: int = 2) -> list[BenchmarkCase]:
    """A family of ``count`` loop designs with consecutive seeds."""
    return [loop_case(LoopParams(seed=seed + offset, depth=depth, width=width,
                                 max_distance=max_distance))
            for offset in range(count)]


__all__ = [
    "LOOP_PREFIX",
    "LoopParams",
    "build_loop_design",
    "loop_case",
    "loop_suite",
]
