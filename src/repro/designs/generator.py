"""Seeded parametric design generator for scenario sweeps.

The Table-I suite pins down the paper's 17 rows; campaigns need *scenario
diversity* beyond them.  This module grows random-but-reproducible dataflow
graphs with controllable shape:

* ``depth``/``width`` -- number of operation layers and operations per layer;
* ``fanout`` -- how far back an operand may reach (1 = strictly layered
  chains, larger values create long skip connections and wide fanout);
* ``op_mix`` -- weighted opcode distribution (adders vs. multipliers vs.
  logic vs. compare/select).

Everything derives from ``random.Random(seed)``, which is independent of
``PYTHONHASHSEED``: the same :class:`GeneratorParams` always build the same
graph, across interpreter runs and across worker processes.  Generated
designs register alongside the Table-I suite through the ``gen:`` name
scheme (:func:`case_from_name`), so campaign jobs can ship them to workers
by name exactly like registry benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.designs.suite import BenchmarkCase, suite_by_name
from repro.ir.builder import GraphBuilder
from repro.ir.graph import DataflowGraph
from repro.ir.node import Node

GENERATED_PREFIX = "gen:"

#: Opcode weights of the default mix.  ``select`` emits a compare + select
#: pair; ``rotr`` rotates by a seeded constant amount.
DEFAULT_OP_MIX: tuple[tuple[str, int], ...] = (
    ("add", 4), ("sub", 2), ("xor", 3), ("and", 2), ("or", 2),
    ("mul", 1), ("rotr", 1), ("select", 1),
)

_KNOWN_OPS = frozenset(op for op, _ in DEFAULT_OP_MIX)

#: Multiplier-free mix used by the scale benchmarks: keeps per-node delays
#: (and, where lowering happens at all, gate counts) small enough that design
#: size is the only variable across a ladder.
LEAN_OP_MIX: tuple[tuple[str, int], ...] = (
    ("add", 4), ("sub", 2), ("xor", 3), ("and", 2), ("or", 2), ("rotr", 1),
)


@dataclass(frozen=True)
class GeneratorParams:
    """Shape parameters of one generated design.

    Attributes:
        seed: RNG seed; the only source of randomness.
        depth: number of operation layers.
        width: operations per layer.
        fanout: how many preceding layers an operand may be drawn from
            (1 = the previous layer only).
        bit_width: word width of every value.
        num_inputs: primary inputs feeding layer 0.
        op_mix: ``(opcode, weight)`` pairs; opcodes from
            ``add/sub/xor/and/or/mul/rotr/select``.
        clock_period_ps: target clock period of the resulting benchmark case.
    """

    seed: int = 0
    depth: int = 6
    width: int = 4
    fanout: int = 2
    bit_width: int = 16
    num_inputs: int = 4
    op_mix: tuple[tuple[str, int], ...] = field(default=DEFAULT_OP_MIX)
    clock_period_ps: float = 2500.0

    def __post_init__(self) -> None:
        if self.depth < 1 or self.width < 1:
            raise ValueError("depth and width must be at least 1")
        if self.fanout < 1:
            raise ValueError("fanout must be at least 1")
        if self.bit_width < 2 or self.num_inputs < 1:
            raise ValueError("bit_width must be >= 2 and num_inputs >= 1")
        if self.clock_period_ps <= 0:
            raise ValueError("clock_period_ps must be positive")
        unknown = {op for op, _ in self.op_mix} - _KNOWN_OPS
        if unknown:
            raise ValueError(f"unknown opcodes in op_mix: {sorted(unknown)}")
        if not self.op_mix or all(weight <= 0 for _, weight in self.op_mix):
            raise ValueError("op_mix needs at least one positive weight")

    @property
    def name(self) -> str:
        """Canonical ``gen:`` registry name encoding every parameter."""
        mix = "+".join(f"{op}{weight}" for op, weight in self.op_mix)
        return (f"{GENERATED_PREFIX}seed={self.seed},depth={self.depth},"
                f"width={self.width},fanout={self.fanout},"
                f"bits={self.bit_width},inputs={self.num_inputs},"
                f"clock={self.clock_period_ps:g},mix={mix}")

    @classmethod
    def from_name(cls, name: str) -> "GeneratorParams":
        """Parse a canonical ``gen:`` name back into parameters.

        Raises:
            ValueError: if the name is not a well-formed ``gen:`` spec.
        """
        if not name.startswith(GENERATED_PREFIX):
            raise ValueError(f"not a generated-design name: {name!r}")
        fields: dict[str, str] = {}
        for part in name[len(GENERATED_PREFIX):].split(","):
            key, _, value = part.partition("=")
            if not value:
                raise ValueError(f"malformed generated-design field {part!r}")
            fields[key] = value
        try:
            mix = tuple(
                (entry.rstrip("0123456789"),
                 int(entry[len(entry.rstrip("0123456789")):]))
                for entry in fields["mix"].split("+")) \
                if "mix" in fields else DEFAULT_OP_MIX
            return cls(seed=int(fields["seed"]), depth=int(fields["depth"]),
                       width=int(fields["width"]), fanout=int(fields["fanout"]),
                       bit_width=int(fields["bits"]),
                       num_inputs=int(fields["inputs"]),
                       clock_period_ps=float(fields.get("clock", 2500.0)),
                       op_mix=mix)
        except (KeyError, ValueError) as error:
            raise ValueError(f"malformed generated-design name {name!r}: {error}")


def build_generated_design(params: GeneratorParams) -> DataflowGraph:
    """Build the deterministic random DFG described by ``params``."""
    rng = random.Random(params.seed)
    builder = GraphBuilder(params.name)
    bits = params.bit_width

    layers: list[list[Node]] = [[builder.param(f"in{i}", bits)
                                 for i in range(params.num_inputs)]]
    ops = [op for op, _ in params.op_mix]
    weights = [weight for _, weight in params.op_mix]

    for level in range(params.depth):
        pool: list[Node] = []
        for back in range(1, min(params.fanout, len(layers)) + 1):
            pool.extend(layers[-back])
        current: list[Node] = []
        for position in range(params.width):
            op = rng.choices(ops, weights=weights)[0]
            a = rng.choice(pool)
            b = rng.choice(pool)
            tag = f"l{level}_n{position}"
            if op == "add":
                value = builder.add(a, b, name=tag)
            elif op == "sub":
                value = builder.sub(a, b, name=tag)
            elif op == "xor":
                value = builder.xor(a, b, name=tag)
            elif op == "and":
                value = builder.and_(a, b, name=tag)
            elif op == "or":
                value = builder.or_(a, b, name=tag)
            elif op == "mul":
                value = builder.mul(a, b, name=tag, width=bits)
            elif op == "rotr":
                amount = rng.randrange(1, bits)
                value = builder.rotr_const(a, amount, name=tag)
            else:  # select: compare + mux pair
                cond = builder.ugt(a, b, name=f"{tag}_cmp")
                value = builder.select(cond, a, b, name=tag)
            current.append(value)
        layers.append(current)

    # Every sink value becomes a primary output, so no generated logic is
    # dead and the whole graph participates in scheduling.
    for node in builder.graph.nodes():
        if not node.is_source and not builder.graph.users_of(node.node_id):
            builder.output(node, name=f"out_{node.name or node.node_id}")
    return builder.graph


def scale_of(params: GeneratorParams) -> str:
    """Size class of a parameter set, from the operation-count estimate.

    ``depth * width`` is the number of layer positions; ``select`` positions
    emit two nodes, so the estimate is a floor, which is the right bias for
    picking tractable pytest subsets.
    """
    operations = params.depth * params.width
    if operations >= 10_000:
        return "huge"
    if operations >= 2_000:
        return "large"
    if operations >= 500:
        return "medium"
    return "small"


def generated_case(params: GeneratorParams) -> BenchmarkCase:
    """Wrap a parameter set as a :class:`BenchmarkCase` (Table-I compatible)."""
    return BenchmarkCase(params.name, params.clock_period_ps,
                         lambda: build_generated_design(params),
                         scale_of(params))


def generated_suite(count: int = 4, seed: int = 0, depth: int = 6,
                    width: int = 4, fanout: int = 2,
                    bit_width: int = 16) -> list[BenchmarkCase]:
    """A family of ``count`` generated designs with consecutive seeds."""
    return [generated_case(GeneratorParams(seed=seed + offset, depth=depth,
                                           width=width, fanout=fanout,
                                           bit_width=bit_width))
            for offset in range(count)]


#: The ``huge`` benchmark tier: 10k--100k-node shapes stressing the three
#: regimes the sparse/incremental kernel paths target.  ``wide`` and
#: ``fanout`` stay sparsely connected (the sparse all-pairs sweep wins by an
#: order of magnitude); ``deep`` saturates reachability across its narrow
#: band (density well above the cutover, exercising the automatic dense
#: fallback); ``xwide`` is the ~100k-node shape reserved for nightly runs,
#: far past what a dense ``n x n`` matrix can allocate.
HUGE_SHAPES: tuple[tuple[str, GeneratorParams], ...] = (
    ("wide", GeneratorParams(seed=7, depth=10, width=1000, fanout=1,
                             num_inputs=64, op_mix=LEAN_OP_MIX)),
    ("deep", GeneratorParams(seed=7, depth=200, width=50, fanout=2,
                             num_inputs=16, op_mix=LEAN_OP_MIX)),
    ("fanout", GeneratorParams(seed=7, depth=40, width=250, fanout=16,
                               num_inputs=32, op_mix=LEAN_OP_MIX)),
    ("xwide", GeneratorParams(seed=7, depth=10, width=10000, fanout=1,
                              num_inputs=256, op_mix=LEAN_OP_MIX)),
)


def huge_suite(nightly: bool = False) -> list[BenchmarkCase]:
    """The ``huge``-tier benchmark cases (``xwide`` only when ``nightly``)."""
    return [generated_case(params) for name, params in HUGE_SHAPES
            if nightly or name != "xwide"]


def case_from_name(name: str) -> BenchmarkCase:
    """Resolve a design name: ``gen:``/``loop:`` spec, ``.ir`` file path,
    or Table-I registry row.

    This is the lookup campaign workers use to re-build designs shipped by
    name, so everything a job references must round-trip through it.

    Raises:
        KeyError: for an unknown Table-I name.
        ValueError: for a malformed ``gen:``/``loop:`` name or an
            unloadable ``.ir`` file.
    """
    if name.startswith(GENERATED_PREFIX):
        return generated_case(GeneratorParams.from_name(name))
    if name.startswith("loop:"):
        from repro.designs.loops import LoopParams, loop_case

        return loop_case(LoopParams.from_name(name))
    if name.endswith(".ir"):
        from repro.designs.ingest import ir_file_case

        return ir_file_case(name)
    return suite_by_name(name)


__all__ = [
    "DEFAULT_OP_MIX",
    "GENERATED_PREFIX",
    "HUGE_SHAPES",
    "GeneratorParams",
    "LEAN_OP_MIX",
    "build_generated_design",
    "case_from_name",
    "generated_case",
    "generated_suite",
    "huge_suite",
    "scale_of",
]
