"""Arithmetic benchmark designs: rrot, binary_divide, rsqrt, fpexp."""

from __future__ import annotations

from repro.ir.builder import GraphBuilder
from repro.ir.graph import DataflowGraph
from repro.ir.node import Node


def build_rrot(width: int = 32, num_rounds: int = 6) -> DataflowGraph:
    """Rotate-and-mix datapath (the paper's ``rrot`` benchmark).

    Each round rotates the running word by a data-dependent amount and mixes
    it with a second operand through XOR/ADD alternation -- the structure of
    an ARX permutation round.
    """
    builder = GraphBuilder("rrot")
    value = builder.param("value", width)
    mix = builder.param("mix", width)
    amount = builder.param("amount", 5)

    state: Node = value
    for round_index in range(num_rounds):
        rotated = builder.rotr(state, amount, name=f"rot{round_index}")
        if round_index % 2 == 0:
            mixed = builder.xor(rotated, mix, name=f"xor{round_index}")
        else:
            mixed = builder.add(rotated, mix, name=f"add{round_index}")
        state = mixed
    builder.output(state, name="rrot_out")
    return builder.graph


def build_binary_divide(width: int = 16, num_steps: int | None = None
                        ) -> DataflowGraph:
    """Restoring binary division unrolled at the IR level.

    One step per quotient bit: shift the partial remainder left by one,
    bring in the next dividend bit, conditionally subtract the divisor.
    The unrolled subtract/select chain is the long dependence chain the
    paper's ``binary divide`` benchmark schedules across 3 stages.
    """
    steps = num_steps if num_steps is not None else width
    builder = GraphBuilder("binary_divide")
    dividend = builder.param("dividend", width)
    divisor = builder.param("divisor", width)
    remainder: Node = builder.constant(0, width, name="rem0")
    quotient_bits: list[Node] = []

    for step in range(steps):
        bit_index = width - 1 - step
        next_bit = builder.bit_slice(dividend, bit_index, 1, name=f"dbit{step}")
        shifted = builder.shl_const(remainder, 1, name=f"shl{step}")
        brought_in = builder.or_(shifted, builder.zero_ext(next_bit, width),
                                 name=f"acc{step}")
        difference = builder.sub(brought_in, divisor, name=f"diff{step}")
        fits = builder.uge(brought_in, divisor, name=f"fits{step}")
        remainder = builder.select(fits, difference, brought_in, name=f"rem{step + 1}")
        quotient_bits.append(fits)

    # Step ``i`` processes dividend bit (width - 1 - i) and therefore produces
    # quotient bit (width - 1 - i).
    quotient = builder.shl_const(builder.zero_ext(quotient_bits[0], width),
                                 width - 1, name="quot0")
    for index, bit in enumerate(quotient_bits[1:], start=1):
        position = width - 1 - index
        shifted_bit = builder.zero_ext(bit, width)
        if position:
            shifted_bit = builder.shl_const(shifted_bit, position)
        quotient = builder.or_(quotient, shifted_bit, name=f"quot{index}")
    builder.output(quotient, name="quotient")
    builder.output(remainder, name="remainder")
    return builder.graph


def build_float32_fast_rsqrt(width: int = 32, newton_iterations: int = 2
                             ) -> DataflowGraph:
    """Fast reciprocal square root in the style of the Quake III kernel.

    The floating-point arithmetic is modelled in fixed point (the scheduling
    problem only sees word-level multiplies, subtracts and shifts, exactly as
    the XLS datapath does after float lowering): the magic-constant subtract
    of the exponent trick followed by ``newton_iterations`` Newton-Raphson
    refinement steps ``y = y * (3/2 - x/2 * y * y)``.
    """
    builder = GraphBuilder("float32_fast_rsqrt")
    x = builder.param("x", width)
    magic = builder.constant(0x5F3759DF, width, name="magic")
    three_halves = builder.constant(3 << (width // 2 - 1), width, name="three_halves")

    half_x = builder.shrl_const(x, 1, name="half_x")
    estimate = builder.sub(magic, builder.shrl_const(x, 1), name="seed")

    y: Node = estimate
    for iteration in range(newton_iterations):
        y_squared = builder.mul(y, y, name=f"y2_{iteration}")
        scaled = builder.mul(half_x, y_squared, name=f"xy2_{iteration}")
        correction = builder.sub(three_halves, scaled, name=f"corr_{iteration}")
        y = builder.mul(y, correction, name=f"y_{iteration + 1}")
    builder.output(y, name="rsqrt_out")
    return builder.graph


def build_fpexp32(width: int = 32, polynomial_degree: int = 5,
                  num_segments: int = 2) -> DataflowGraph:
    """Fixed-point exponential datapath (the paper's ``fpexp 32``).

    Range reduction (subtract k*ln2 via multiply/shift), followed by a Horner
    evaluation of a degree-``polynomial_degree`` polynomial, replicated over
    ``num_segments`` accuracy segments combined with selects, then a final
    reconstruction shift.  This yields the long multiply-add chains that make
    fpexp the second-largest design of Table I.
    """
    builder = GraphBuilder("fpexp_32")
    x = builder.param("x", width)
    ln2_inverse = builder.constant(0x0000B8AA, width, name="inv_ln2")
    ln2 = builder.constant(0x0000B172, width, name="ln2")

    # Range reduction: k = round(x / ln2), r = x - k * ln2.
    k_raw = builder.mul(x, ln2_inverse, name="k_raw")
    k = builder.shrl_const(k_raw, 16, name="k")
    k_ln2 = builder.mul(k, ln2, name="k_ln2")
    r = builder.sub(x, k_ln2, name="r")

    # Polynomial coefficients of exp(r) ~= sum c_i r^i (Q16 fixed point).
    coefficients = [0x00010000, 0x00010000, 0x00008000, 0x00002AAA, 0x00000AAA,
                    0x00000222, 0x0000005B]

    segment_results: list[Node] = []
    for segment in range(num_segments):
        accumulator: Node = builder.constant(
            coefficients[polynomial_degree] + segment, width,
            name=f"c{polynomial_degree}_s{segment}")
        for degree in range(polynomial_degree - 1, -1, -1):
            coefficient = builder.constant(coefficients[degree], width,
                                           name=f"c{degree}_s{segment}")
            product = builder.mul(accumulator, r, name=f"horner_mul_{segment}_{degree}")
            scaled = builder.shrl_const(product, 16, name=f"horner_shift_{segment}_{degree}")
            accumulator = builder.add(scaled, coefficient,
                                      name=f"horner_add_{segment}_{degree}")
        segment_results.append(accumulator)

    result = segment_results[0]
    for segment, candidate in enumerate(segment_results[1:], start=1):
        threshold = builder.constant(segment << 14, width, name=f"seg_thr{segment}")
        use_candidate = builder.ugt(r, threshold, name=f"seg_sel{segment}")
        result = builder.select(use_candidate, candidate, result,
                                name=f"seg_mux{segment}")

    reconstructed = builder.shl(result, builder.bit_slice(k, 0, 5, name="k_low"),
                                name="reconstruct")
    builder.output(reconstructed, name="exp_out")
    return builder.graph
