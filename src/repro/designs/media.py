"""Media-processing benchmark designs: hsv2rgb and the video-core datapath."""

from __future__ import annotations

from repro.ir.builder import GraphBuilder
from repro.ir.graph import DataflowGraph
from repro.ir.node import Node


def build_hsv2rgb(width: int = 32) -> DataflowGraph:
    """HSV to RGB colour-space conversion datapath.

    The classic sector-based conversion: compute the chroma and intermediate
    terms with multiplies, then select the (R, G, B) permutation according to
    the hue sector with compare/select chains.  The 32-bit multiplies push the
    individual operation delay above 2.5 ns, hence the 5 ns clock in Table I.
    """
    builder = GraphBuilder("hsv2rgb")
    hue = builder.param("h", width)
    saturation = builder.param("s", width)
    value = builder.param("v", width)

    chroma_raw = builder.mul(value, saturation, name="chroma_raw")
    chroma = builder.shrl_const(chroma_raw, 8, name="chroma")

    sector = builder.shrl_const(hue, 8, name="sector")
    fraction = builder.and_(hue, builder.constant(0xFF, width), name="fraction")

    ramp_up_raw = builder.mul(chroma, fraction, name="ramp_up_raw")
    ramp_up = builder.shrl_const(ramp_up_raw, 8, name="ramp_up")
    inverse_fraction = builder.sub(builder.constant(0xFF, width), fraction,
                                   name="inv_fraction")
    ramp_down_raw = builder.mul(chroma, inverse_fraction, name="ramp_down_raw")
    ramp_down = builder.shrl_const(ramp_down_raw, 8, name="ramp_down")
    base = builder.sub(value, chroma, name="base")

    def sector_equals(index: int) -> Node:
        return builder.eq(sector, builder.constant(index, width),
                          name=f"is_sector{index}")

    def pick(candidates: list[Node], tag: str) -> Node:
        selected = candidates[0]
        for index, candidate in enumerate(candidates[1:], start=1):
            selected = builder.select(sector_equals(index), candidate, selected,
                                      name=f"{tag}_mux{index}")
        return selected

    red = pick([chroma, ramp_down, builder.constant(0, width),
                builder.constant(0, width), ramp_up, chroma], "red")
    green = pick([ramp_up, chroma, chroma, ramp_down,
                  builder.constant(0, width), builder.constant(0, width)], "green")
    blue = pick([builder.constant(0, width), builder.constant(0, width), ramp_up,
                 chroma, chroma, ramp_down], "blue")

    builder.output(builder.add(red, base, name="r_out"), name="r")
    builder.output(builder.add(green, base, name="g_out"), name="g")
    builder.output(builder.add(blue, base, name="b_out"), name="b")
    return builder.graph


def build_video_core_datapath(taps: int = 5, width: int = 16,
                              channels: int = 3) -> DataflowGraph:
    """Video-processor datapath: colour conversion followed by an FIR filter.

    Per channel: an RGB-to-luma style weighted sum, then a ``taps``-tap FIR
    over neighbouring pixels with coefficient multiplies, rounding shifts and
    a final clamp.  This is the paper's ``video-core datapath`` row: 16-bit
    multiplies keep every operation under the 2.5 ns clock, but the sheer
    number of operations pushes the schedule to ~12 stages.
    """
    builder = GraphBuilder("video_core_datapath")
    pixels = [[builder.param(f"pix_c{channel}_t{tap}", width)
               for tap in range(taps)] for channel in range(channels)]
    coefficients = [builder.param(f"coef{tap}", width) for tap in range(taps)]
    colour_weights = [builder.param(f"cw{channel}", width)
                      for channel in range(channels)]
    offset = builder.param("offset", width)

    filtered_channels: list[Node] = []
    for channel in range(channels):
        taps_scaled: list[Node] = []
        for tap in range(taps):
            product = builder.mul(pixels[channel][tap], coefficients[tap],
                                  name=f"fir_c{channel}_t{tap}")
            taps_scaled.append(builder.shrl_const(product, 4,
                                                  name=f"fir_sh_c{channel}_t{tap}"))
        fir_sum = builder.add_tree(taps_scaled, name=f"fir_sum_c{channel}")
        weighted = builder.mul(fir_sum, colour_weights[channel],
                               name=f"weighted_c{channel}")
        filtered_channels.append(builder.shrl_const(weighted, 6,
                                                    name=f"norm_c{channel}"))

    luma = builder.add_tree(filtered_channels, name="luma")
    biased = builder.add(luma, offset, name="biased")

    limit = builder.constant((1 << (width - 1)) - 1, width, name="limit")
    clipped = builder.select(builder.ugt(biased, limit, name="overflow"),
                             limit, biased, name="clipped")
    builder.output(clipped, name="luma_out")
    for channel in range(channels):
        builder.output(filtered_channels[channel], name=f"chan{channel}_out")
    return builder.graph
