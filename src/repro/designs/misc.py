"""The 'internal datapath' benchmark: a deep mixed-operation ALU chain."""

from __future__ import annotations

from repro.ir.builder import GraphBuilder
from repro.ir.graph import DataflowGraph
from repro.ir.node import Node


def build_internal_datapath(width: int = 32, num_rounds: int = 12,
                            lanes: int = 2) -> DataflowGraph:
    """A long chain of mixed ALU rounds (the paper's ``internal datapath``).

    Each round applies, per lane, a different combination of add/xor/rotate/
    compare/select, and lanes exchange values every other round.  The result
    is a deep, mostly serial dependence chain: the paper schedules this design
    into 26 stages, the deepest of the 2.5 ns-clock benchmarks.
    """
    builder = GraphBuilder("internal_datapath")
    lanes_state: list[Node] = [builder.param(f"in{i}", width) for i in range(lanes)]
    keys = [builder.param(f"key{i}", width) for i in range(lanes)]
    threshold = builder.param("threshold", width)

    for round_index in range(num_rounds):
        next_state: list[Node] = []
        for lane in range(lanes):
            value = lanes_state[lane]
            key = keys[(lane + round_index) % lanes]
            tag = f"r{round_index}_l{lane}"
            mixed = builder.add(value, key, name=f"{tag}_add")
            rotated = builder.rotr_const(mixed, (round_index * 7 + lane * 3) % width or 1,
                                         name=f"{tag}_rot")
            toggled = builder.xor(rotated, value, name=f"{tag}_xor")
            over = builder.ugt(toggled, threshold, name=f"{tag}_cmp")
            reduced = builder.sub(toggled, threshold, name=f"{tag}_sub")
            selected = builder.select(over, reduced, toggled, name=f"{tag}_sel")
            next_state.append(selected)
        if round_index % 2 == 1 and lanes > 1:
            # Swap lanes to create cross-lane dependences.
            next_state = next_state[1:] + next_state[:1]
        lanes_state = next_state

    combined = lanes_state[0]
    for lane, value in enumerate(lanes_state[1:], start=1):
        combined = builder.xor(combined, value, name=f"combine{lane}")
    builder.output(combined, name="out")
    for lane, value in enumerate(lanes_state):
        builder.output(value, name=f"lane{lane}_out")
    return builder.graph
