"""Benchmark design generators.

The paper evaluates on 17 XLS-based HLS designs: common algorithms (crc32,
sha256, binary division, rotation, fast reciprocal square root, exponential)
plus datapaths from industrial SoCs (an ML processor, a video processor, an
internal datapath).  The proprietary designs cannot be redistributed, so this
package provides synthetic but structurally faithful equivalents: the same
operation mixes (MAC arrays, colour pipelines, ALU chains), the same relative
size ordering, and widths chosen so the same clock-period split (2500 ps vs.
5000 ps for multiplier-heavy designs) applies.

All generators are deterministic pure functions of their parameters.  The
seeded parametric generator (:mod:`repro.designs.generator`) extends the
fixed suite with arbitrary random-but-reproducible designs for campaign
sweeps, addressable by ``gen:`` names next to the Table-I rows.
"""

from repro.designs.arith import (
    build_binary_divide,
    build_fpexp32,
    build_float32_fast_rsqrt,
    build_rrot,
)
from repro.designs.crypto import build_crc32, build_sha256
from repro.designs.media import build_hsv2rgb, build_video_core_datapath
from repro.designs.misc import build_internal_datapath
from repro.designs.ml_core import (
    build_ml_core_datapath0_all,
    build_ml_core_datapath0_opcode,
    build_ml_core_datapath1,
    build_ml_core_datapath2,
)
from repro.designs.generator import (
    GeneratorParams,
    build_generated_design,
    case_from_name,
    generated_case,
    generated_suite,
)
from repro.designs.suite import BenchmarkCase, table1_suite, ablation_design

__all__ = [
    "GeneratorParams",
    "build_generated_design",
    "case_from_name",
    "generated_case",
    "generated_suite",
    "build_binary_divide",
    "build_fpexp32",
    "build_float32_fast_rsqrt",
    "build_rrot",
    "build_crc32",
    "build_sha256",
    "build_hsv2rgb",
    "build_video_core_datapath",
    "build_internal_datapath",
    "build_ml_core_datapath0_all",
    "build_ml_core_datapath0_opcode",
    "build_ml_core_datapath1",
    "build_ml_core_datapath2",
    "BenchmarkCase",
    "table1_suite",
    "ablation_design",
]
