"""Cryptographic / checksum benchmark designs: crc32 and sha256."""

from __future__ import annotations

from repro.ir.builder import GraphBuilder
from repro.ir.graph import DataflowGraph
from repro.ir.node import Node

#: SHA-256 round constants (first 16, enough for the reduced-round datapath).
_SHA256_K = [
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
]


def build_crc32(num_steps: int = 8, width: int = 32,
                polynomial: int = 0xEDB88320) -> DataflowGraph:
    """Bitwise CRC-32 update datapath, ``num_steps`` bits processed per call.

    Each step is the classic reflected CRC update: shift the running CRC right
    by one and conditionally XOR the polynomial depending on the low bit mixed
    with the next data bit.  The unrolled steps form a long combinational
    chain of XOR/shift/select operations, which is what makes the design a
    good scheduling benchmark (the paper's crc32 drops from 3 stages / 75
    registers to 1 stage / 38 registers).
    """
    builder = GraphBuilder("crc32")
    crc = builder.param("crc_in", width)
    data = builder.param("data_in", num_steps)
    poly = builder.constant(polynomial, width, name="poly")
    zero = builder.constant(0, width, name="zero")

    state: Node = crc
    for step in range(num_steps):
        data_bit = builder.bit_slice(data, step, 1, name=f"data_bit{step}")
        low_bit = builder.bit_slice(state, 0, 1, name=f"crc_low{step}")
        mix = builder.xor(low_bit, data_bit, name=f"mix{step}")
        shifted = builder.shrl_const(state, 1, name=f"shift{step}")
        toggled = builder.xor(shifted, poly, name=f"toggled{step}")
        state = builder.select(mix, toggled, shifted, name=f"state{step + 1}")
    _ = zero
    builder.output(state, name="crc_out")
    return builder.graph


def _rotr32(builder: GraphBuilder, value: Node, amount: int, name: str = "") -> Node:
    return builder.rotr_const(value, amount, name=name)


def build_sha256(num_rounds: int = 8, width: int = 32,
                 with_message_schedule: bool = True) -> DataflowGraph:
    """Reduced-round SHA-256 compression datapath.

    Implements ``num_rounds`` rounds of the SHA-256 compression function over
    the eight working variables, optionally preceded by the message-schedule
    sigma expansion for the corresponding words.  The paper's sha256 is its
    largest benchmark; the default of 8 rounds keeps the reproduction's
    gate-level evaluation tractable while preserving the structure (long
    carry-chain adder trees interleaved with rotate/XOR logic).
    """
    builder = GraphBuilder("sha256")
    state = [builder.param(name, width)
             for name in ("a", "b", "c", "d", "e", "f", "g", "h")]
    words = [builder.param(f"w{i}", width) for i in range(min(num_rounds, 16))]

    if with_message_schedule and num_rounds > 4:
        # Expand a few extra schedule words: w[i] = sigma1(w[i-2]) + w[i-7]
        # (folded to available indices) + sigma0(w[i-15]) + w[i-16].
        expanded = list(words)
        for i in range(len(words), num_rounds):
            w2 = expanded[i - 2]
            w7 = expanded[i - min(7, i)]
            w15 = expanded[i - min(15, i)]
            w16 = expanded[i - min(16, i)]
            s0 = builder.xor(
                _rotr32(builder, w15, 7), _rotr32(builder, w15, 18),
                builder.shrl_const(w15, 3), name=f"sigma0_{i}")
            s1 = builder.xor(
                _rotr32(builder, w2, 17), _rotr32(builder, w2, 19),
                builder.shrl_const(w2, 10), name=f"sigma1_{i}")
            total = builder.add(builder.add(s1, w7), builder.add(s0, w16),
                                name=f"w{i}")
            expanded.append(total)
        words = expanded

    a, b, c, d, e, f, g, h = state
    for round_index in range(num_rounds):
        word = words[round_index % len(words)]
        k = builder.constant(_SHA256_K[round_index % len(_SHA256_K)], width,
                             name=f"k{round_index}")
        big_sigma1 = builder.xor(_rotr32(builder, e, 6), _rotr32(builder, e, 11),
                                 _rotr32(builder, e, 25), name=f"S1_{round_index}")
        ch = builder.xor(builder.and_(e, f), builder.andn(g, e),
                         name=f"ch_{round_index}")
        temp1 = builder.add(builder.add(h, big_sigma1),
                            builder.add(ch, builder.add(k, word)),
                            name=f"t1_{round_index}")
        big_sigma0 = builder.xor(_rotr32(builder, a, 2), _rotr32(builder, a, 13),
                                 _rotr32(builder, a, 22), name=f"S0_{round_index}")
        maj = builder.xor(builder.and_(a, b), builder.and_(a, c),
                          builder.and_(b, c), name=f"maj_{round_index}")
        temp2 = builder.add(big_sigma0, maj, name=f"t2_{round_index}")

        h = g
        g = f
        f = e
        e = builder.add(d, temp1, name=f"e_{round_index + 1}")
        d = c
        c = b
        b = a
        a = builder.add(temp1, temp2, name=f"a_{round_index + 1}")

    for name, value in zip("abcdefgh", (a, b, c, d, e, f, g, h)):
        builder.output(value, name=f"{name}_out")
    return builder.graph
