"""Fig. 6: path vs. cone vs. window subgraph expansion ablation.

Same protocol as Fig. 5, but the ranking strategy is fixed to fanout-driven
(the winner of Fig. 5) and the expansion strategy is varied.  The paper finds
that cone/window expansions escape the local minima the path-based expansion
gets stuck in, with a slight edge for windows.
"""

from __future__ import annotations

from repro.designs.suite import ablation_design
from repro.experiments.fig5 import AblationCurve, run_single_ablation, format_ablation
from repro.ir.graph import DataflowGraph
from repro.isdc.config import ExpansionStrategy, ExtractionStrategy


def run_expansion_ablation(subgraph_counts: tuple[int, ...] = (4, 8, 16),
                           iterations: int = 30,
                           design: DataflowGraph | None = None,
                           clock_period_ps: float | None = None
                           ) -> dict[tuple[str, int], AblationCurve]:
    """Reproduce Fig. 6: path/cone/window expansion under fanout-driven ranking.

    Returns:
        Mapping from ``(expansion, m)`` to the corresponding trajectory.
    """
    if design is None or clock_period_ps is None:
        design, clock_period_ps = ablation_design()
    curves: dict[tuple[str, int], AblationCurve] = {}
    for count in subgraph_counts:
        for expansion in (ExpansionStrategy.PATH, ExpansionStrategy.CONE,
                          ExpansionStrategy.WINDOW):
            curve = run_single_ablation(design, clock_period_ps,
                                        ExtractionStrategy.FANOUT, expansion,
                                        count, iterations)
            curves[(expansion.value, count)] = curve
    return curves


__all__ = ["run_expansion_ablation", "format_ablation"]
