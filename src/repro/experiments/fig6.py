"""Fig. 6: path vs. cone vs. window subgraph expansion ablation.

Same protocol as Fig. 5, but the ranking strategy is fixed to fanout-driven
(the winner of Fig. 5) and the expansion strategy is varied.  The paper finds
that cone/window expansions escape the local minima the path-based expansion
gets stuck in, with a slight edge for windows.
"""

from __future__ import annotations

from repro.experiments.fig5 import (
    AblationCurve,
    _ablation_grid,
    format_ablation,
)
from repro.ir.graph import DataflowGraph
from repro.isdc.config import ExpansionStrategy, ExtractionStrategy


def run_expansion_ablation(subgraph_counts: tuple[int, ...] = (4, 8, 16),
                           iterations: int = 30,
                           design: DataflowGraph | None = None,
                           clock_period_ps: float | None = None,
                           jobs: int = 1,
                           solver: str = "full"
                           ) -> dict[tuple[str, int], AblationCurve]:
    """Reproduce Fig. 6: path/cone/window expansion under fanout-driven ranking.

    Args:
        jobs: run the ablation configurations concurrently (see Fig. 5).
        solver: ISDC re-solve strategy; trajectories are identical for both.

    Returns:
        Mapping from ``(expansion, m)`` to the corresponding trajectory.
    """
    configurations = [
        (ExtractionStrategy.FANOUT.value, expansion.value, count, iterations,
         solver)
        for count in subgraph_counts
        for expansion in (ExpansionStrategy.PATH, ExpansionStrategy.CONE,
                          ExpansionStrategy.WINDOW)]
    results = _ablation_grid(configurations, design, clock_period_ps, jobs)
    return {(expansion, count): curve
            for (_, expansion, count, _, _), curve
            in zip(configurations, results)}


__all__ = ["run_expansion_ablation", "format_ablation"]
