"""Small table/statistics helpers shared by the experiment harnesses."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (zeros are clamped to 1e-9).

    The paper's Table I summarises every column with a geometric mean; the
    clamp keeps the summary defined even if a metric collapses to zero.
    """
    items = [max(float(v), 1e-9) for v in values]
    if not items:
        return 0.0
    return math.exp(sum(math.log(v) for v in items) / len(items))


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length sequences."""
    if len(xs) != len(ys):
        raise ValueError("sequences must have equal length")
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def format_campaign(result) -> str:
    """ASCII rendition of a campaign sweep's per-job outcomes.

    Args:
        result: a :class:`~repro.campaign.executor.CampaignRunResult`.
    """
    headers = ["Job", "Design", "Clock (ps)", "Extract", "Expand", "Solver",
               "m", "Regs SDC", "Regs ISDC", "Stages", "Iters", "Evals"]
    rows = []
    for job in result.payload["jobs"]:
        config = job["config"]
        outcome = job["result"]
        design = job["design"]
        if len(design) > 40:
            design = design[:37] + "..."
        rows.append([
            job["job_id"][:8], design, f"{config['clock_period_ps']:.0f}",
            config["extraction"], config["expansion"], config["solver"],
            config["subgraphs_per_iteration"],
            outcome["initial"]["registers"], outcome["final"]["registers"],
            outcome["final"]["stages"], outcome["iterations"],
            outcome["evaluations"],
        ])
    summary = (f"campaign {result.payload['name']!r}: "
               f"{result.payload['num_jobs']} jobs "
               f"({result.executed} executed, {result.skipped} resumed) "
               f"in {result.elapsed_s:.2f}s")
    return format_table(headers, rows) + "\n" + summary


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple fixed-width ASCII table."""
    columns = [[str(h)] + [str(row[i]) for row in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
