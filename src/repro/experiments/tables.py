"""Small table/statistics helpers shared by the experiment harnesses.

Rendering goes through one machine: :func:`format_table` renders a
header + rows grid as fixed-width ASCII (the runner's stdout style) or
GitHub-flavoured Markdown, and :func:`format_csv` renders the same grid
as RFC-4180 CSV.  The report engine (:mod:`repro.report`) builds all of
its Markdown/CSV output on these two functions.

The statistics helpers are *strict*: :func:`geometric_mean` and
:func:`pearson_correlation` raise :class:`ValueError` on inputs for
which the quantity is undefined (empty sequences, non-positive values,
constant series) instead of letting ``nan``/silently-wrong figures leak
into reports.  Callers that need the historical forgiving behaviour opt
in explicitly (``floor=`` / ``strict=False``).
"""

from __future__ import annotations

import csv
import io
import math
from typing import Iterable, Sequence


def geometric_mean(values: Iterable[float], *,
                   floor: float | None = None) -> float:
    """Geometric mean of a sequence of positive values.

    The paper's Table I summarises every column with a geometric mean.

    Args:
        values: the sample; must be non-empty and strictly positive.
        floor: when given, values below ``floor`` are clamped up to it
            instead of raising -- the historical Table-I behaviour that
            keeps a summary defined even if a metric collapses to zero.
            Negative values raise regardless (a negative sample is a bug
            upstream, not a degenerate metric).

    Raises:
        ValueError: on an empty sequence, on negative values, or (without
            ``floor``) on zero values.
    """
    items = [float(v) for v in values]
    if not items:
        raise ValueError("geometric mean of an empty sequence is undefined")
    negative = [v for v in items if v < 0]
    if negative:
        raise ValueError(
            f"geometric mean is undefined for negative values "
            f"(got {negative[0]!r})")
    if floor is not None:
        items = [max(v, floor) for v in items]
    elif any(v == 0 for v in items):
        raise ValueError(
            "geometric mean of values containing zero is undefined; "
            "pass floor= to clamp instead")
    return math.exp(sum(math.log(v) for v in items) / len(items))


def pearson_correlation(xs: Sequence[float], ys: Sequence[float], *,
                        strict: bool = True) -> float:
    """Pearson correlation coefficient of two equal-length sequences.

    Args:
        xs: first series.
        ys: second series, same length.
        strict: raise on degenerate inputs (fewer than two points, or a
            constant series, where the coefficient is undefined) instead
            of returning ``0.0``.

    Raises:
        ValueError: on unequal lengths; in strict mode also on fewer than
            two points or a zero-variance series.
    """
    if len(xs) != len(ys):
        raise ValueError("sequences must have equal length")
    n = len(xs)
    if n < 2:
        if strict:
            raise ValueError(
                f"Pearson correlation needs at least two points, got {n}")
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        if strict:
            which = "first" if var_x <= 0 else "second"
            raise ValueError(
                f"Pearson correlation is undefined: the {which} series "
                "is constant (zero variance)")
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def percentile(values: Sequence[float], q: float) -> float:
    """Linearly-interpolated ``q``-th percentile (``0 <= q <= 100``).

    Raises:
        ValueError: on an empty sequence or ``q`` outside ``[0, 100]``.
    """
    if not values:
        raise ValueError("percentile of an empty sequence is undefined")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


def format_campaign(result) -> str:
    """ASCII rendition of a campaign sweep's per-job outcomes.

    Args:
        result: a :class:`~repro.campaign.executor.CampaignRunResult`.
    """
    headers = ["Job", "Design", "Clock (ps)", "Extract", "Expand", "Solver",
               "m", "Regs SDC", "Regs ISDC", "Stages", "Iters", "Evals"]
    rows = []
    for job in result.payload["jobs"]:
        config = job["config"]
        outcome = job["result"]
        design = job["design"]
        if len(design) > 40:
            design = design[:37] + "..."
        rows.append([
            job["job_id"][:8], design, f"{config['clock_period_ps']:.0f}",
            config["extraction"], config["expansion"], config["solver"],
            config["subgraphs_per_iteration"],
            outcome["initial"]["registers"], outcome["final"]["registers"],
            outcome["final"]["stages"], outcome["iterations"],
            outcome["evaluations"],
        ])
    summary = (f"campaign {result.payload['name']!r}: "
               f"{result.payload['num_jobs']} jobs "
               f"({result.executed} executed, {result.skipped} resumed) "
               f"in {result.elapsed_s:.2f}s")
    return format_table(headers, rows) + "\n" + summary


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 style: str = "ascii") -> str:
    """Render a header + rows grid as a text table.

    Args:
        headers: column titles.
        rows: row cells (stringified with ``str``).
        style: ``"ascii"`` for the fixed-width runner style,
            ``"markdown"`` for a GitHub-flavoured Markdown table.

    Raises:
        ValueError: for an unknown style.
    """
    if style not in ("ascii", "markdown"):
        raise ValueError(f"unknown table style {style!r}; "
                         "expected 'ascii' or 'markdown'")
    columns = [[str(h)] + [str(row[i]) for row in rows]
               for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if style == "markdown":
        lines.append("| " + " | ".join(
            h.ljust(w) for h, w in zip(headers, widths)) + " |")
        lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
        for row in rows:
            lines.append("| " + " | ".join(
                str(cell).ljust(w) for cell, w in zip(row, widths)) + " |")
        return "\n".join(lines)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(cell).ljust(w)
                                for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a header + rows grid as CSV (RFC-4180 quoting, ``\\n`` EOL)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow([str(h) for h in headers])
    for row in rows:
        writer.writerow([str(cell) for cell in row])
    return buffer.getvalue()
