"""Machine-readable payloads for the experiment harnesses.

Every experiment result converts to a plain-JSON-serialisable dict so runs
can be archived, diffed and consumed by the benchmark suite (``--json PATH``
on :mod:`repro.experiments.runner`).  The payload envelope is::

    {
      "schema": 8,
      "experiment": "<name>",
      "store_key": "<hex>",  # content key of (experiment, data), see repro.store
      "quick": bool,
      "jobs": int,
      "solver": "full" | "incremental",
      "elapsed_s": float,
      "data": {...}          # experiment-specific, see the builders below
    }

Wall-clock fields (``elapsed_s`` and the per-row ``*_time_s`` columns,
including the ``table1`` per-phase ``isdc_solver_time_s`` /
``isdc_synthesis_time_s`` split) are the only values expected to differ
between runs or ``--jobs``/``--solver`` settings; all schedule-quality
figures are deterministic.  The ``campaign`` experiment's ``data`` section
carries no wall-clock fields at all: it is byte-identical across runs,
resumes and ``PYTHONHASHSEED`` values.

Schema history: 2 added the ``solver`` envelope field and the ``table1``
per-phase timing columns; 3 added the ``campaign`` experiment payload and
the ``table1`` per-row ``isdc_evaluations`` column (true synthesis runs,
disk-cache answers excluded); 4 added the ``report`` payload (the
aggregate-summary and baseline-diff bodies of :mod:`repro.report`, whose
``data.kind`` field -- ``"summary"`` or ``"diff"`` -- discriminates the
two shapes); 5 added the ``dse`` payload (per-design clock-period search
results from :mod:`repro.dse`, whose ``warm`` / ``elapsed_s`` fields are
the only run-dependent values -- see
:func:`repro.dse.search.deterministic_payload`); 6 added the
``store_key`` envelope field -- the payload's content key in the unified
artifact store (:func:`repro.store.payload_key` over the ``experiment``
and ``data`` fields only, so wall-clock envelope fields never perturb
it), letting archived ``payload`` store records and loose ``--json``
files cross-reference; 7 added pipelined-loop (initiation-interval)
scheduling: the ``dse`` payload grows the ``min-ii`` mode (per-design
``min_ii`` and per-probe ``ii`` fields), and design axes accept
``loop:`` generated-loop specs and textual-IR ``.ir`` file paths
alongside Table-I rows and ``gen:`` specs; 8 added the ``service``
payload (the scheduling-service benchmark of :mod:`repro.service.bench`:
throughput, p50/p95 latency, warm hit / coalesce rates and the
warm-vs-cold speedup -- all wall-clock-derived by nature, gated
direction-aware by ``runner report diff``).
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any

from repro.campaign.executor import CampaignRunResult
from repro.experiments.fig1 import DesignPoint, profile_summary
from repro.experiments.fig5 import AblationCurve
from repro.experiments.fig7 import EstimationAccuracyResult
from repro.experiments.fig8 import AigCorrelationResult
from repro.experiments.table1 import TableOneResult
from repro.store import payload_key

SCHEMA_VERSION = 8


def _table1_payload(result: TableOneResult) -> dict[str, Any]:
    return {
        "rows": [asdict(row) for row in result.rows],
        "summary": {
            "register_ratio": result.register_ratio,
            "stage_ratio": result.stage_ratio,
            "slack_ratio": result.slack_ratio,
            "runtime_ratio": result.runtime_ratio,
        },
    }


def _profile_payload(points: list[DesignPoint]) -> dict[str, Any]:
    return {
        "points": [asdict(point) for point in points],
        "summary": profile_summary(points),
    }


def _ablation_payload(curves: dict[tuple[str, int], AblationCurve]
                      ) -> dict[str, Any]:
    return {
        "curves": [asdict(curve) for _, curve in sorted(curves.items())],
    }


def _accuracy_payload(result: EstimationAccuracyResult) -> dict[str, Any]:
    return {
        "isdc_error": result.isdc_error,
        "sdc_error": result.sdc_error,
        "per_design": result.per_design,
    }


def _correlation_payload(result: AigCorrelationResult) -> dict[str, Any]:
    return {
        "num_points": len(result.points),
        "correlation": result.correlation,
        "ps_per_level": result.ps_per_level,
        "intercept_ps": result.intercept_ps,
        "points": [asdict(point) for point in result.points],
    }


def _campaign_payload(result: CampaignRunResult) -> dict[str, Any]:
    # The store's final payload is already canonical and wall-clock-free.
    return result.payload


def _report_payload(result: Any) -> dict[str, Any]:
    # AggregateReport and DiffReport both serialise themselves; their
    # payloads are discriminated by the "kind" field (summary vs diff).
    return result.to_payload()


def _dse_payload(result: Any) -> dict[str, Any]:
    # A repro.dse.search.DseResult serialises itself; min_clock_ps, the
    # probe schedule fields and the Pareto front are deterministic, the
    # per-design "warm"/"elapsed_s" fields are provenance/wall clock.
    return result.to_payload()


def _service_payload(result: Any) -> dict[str, Any]:
    # A repro.service.bench.ServiceBenchResult serialises itself.  Unlike
    # the other experiments this payload is *measurement*, not schedule
    # quality: every figure is wall-clock-derived, and report diff gates
    # it with thresholds rather than byte equality.
    return result.to_payload()


_PAYLOAD_BUILDERS = {
    "campaign": _campaign_payload,
    "dse": _dse_payload,
    "service": _service_payload,
    "report": _report_payload,
    "table1": _table1_payload,
    "fig1": _profile_payload,
    "fig5": _ablation_payload,
    "fig6": _ablation_payload,
    "fig7": _accuracy_payload,
    "fig8": _correlation_payload,
}


def experiment_payload(name: str, result: Any, quick: bool = False,
                       jobs: int = 1, elapsed_s: float = 0.0,
                       solver: str = "full") -> dict[str, Any]:
    """Wrap one experiment's result in the machine-readable envelope.

    Args:
        name: experiment name (``table1``, ``fig1``/``5``/``6``/``7``/``8``,
            ``campaign``, ``report``, ``dse`` or ``service``).
        result: the raw object the experiment's ``run_*`` function returned.
        quick: whether reduced settings were used.
        jobs: worker processes the run was configured with.
        elapsed_s: wall-clock duration of the run.
        solver: ISDC re-solve strategy the run was configured with.

    Raises:
        ValueError: for an unknown experiment name.
    """
    try:
        builder = _PAYLOAD_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(_PAYLOAD_BUILDERS))
        raise ValueError(f"unknown experiment {name!r}; expected one of {known}")
    envelope = {
        "schema": SCHEMA_VERSION,
        "experiment": name,
        "quick": quick,
        "jobs": jobs,
        "solver": solver,
        "elapsed_s": elapsed_s,
        "data": builder(result),
    }
    # The content key covers (experiment, data) only -- adding it to the
    # envelope cannot perturb it, and neither can wall-clock fields.
    envelope["store_key"] = payload_key(envelope)
    return envelope


__all__ = ["SCHEMA_VERSION", "experiment_payload"]
