"""Experiment harnesses regenerating every table and figure of the paper.

Each module reproduces one artefact of the evaluation section:

* :mod:`~repro.experiments.table1` -- Table I (17 benchmarks, SDC vs. ISDC).
* :mod:`~repro.experiments.fig1`  -- Fig. 1 (estimated vs. post-synthesis delay).
* :mod:`~repro.experiments.fig5`  -- Fig. 5 (delay- vs. fanout-driven extraction).
* :mod:`~repro.experiments.fig6`  -- Fig. 6 (path vs. cone vs. window expansion).
* :mod:`~repro.experiments.fig7`  -- Fig. 7 (delay-estimation accuracy over iterations).
* :mod:`~repro.experiments.fig8`  -- Fig. 8 (post-synthesis delay vs. AIG depth).

The harnesses return plain dataclasses / dictionaries so they can be driven
both from the pytest benchmark suite and from the example scripts, and every
module has a ``format_*`` helper producing the ASCII rendition of the paper's
rows/series.
"""

from repro.experiments.tables import geometric_mean, format_table
from repro.experiments.table1 import TableOneRow, TableOneResult, run_table1, format_table1
from repro.experiments.fig1 import DesignPoint, run_delay_profile, profile_summary
from repro.experiments.fig5 import run_extraction_ablation
from repro.experiments.fig6 import run_expansion_ablation
from repro.experiments.fig7 import run_estimation_accuracy
from repro.experiments.fig8 import run_aig_correlation
from repro.experiments.runner import run_experiment, run_experiment_result
from repro.experiments.serialize import experiment_payload

__all__ = [
    "run_experiment",
    "run_experiment_result",
    "experiment_payload",
    "geometric_mean",
    "format_table",
    "TableOneRow",
    "TableOneResult",
    "run_table1",
    "format_table1",
    "DesignPoint",
    "run_delay_profile",
    "profile_summary",
    "run_extraction_ablation",
    "run_expansion_ablation",
    "run_estimation_accuracy",
    "run_aig_correlation",
]
