"""Fig. 8: post-synthesis STA delay vs. AIG depth correlation.

The paper's discussion section shows a compelling linear correlation between
post-synthesis STA delay and the AIG depth of the same logic in ABC, and
suggests AIG depth as a cheap feedback signal.  The same sweep as Fig. 1 is
reused: every profiled pipeline stage contributes one (AIG depth, measured
delay) point, and the harness reports the Pearson correlation between the two
(expected to be strongly positive) together with a least-squares ps-per-level
slope.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.designs.suite import BenchmarkCase
from repro.experiments.fig1 import DesignPoint, run_delay_profile
from repro.experiments.tables import pearson_correlation


@dataclass(frozen=True)
class AigCorrelationResult:
    """Correlation between AIG depth and post-synthesis delay.

    Attributes:
        points: the underlying design points.
        correlation: Pearson correlation between depth and measured delay.
        ps_per_level: least-squares slope (picoseconds per AIG level).
        intercept_ps: least-squares intercept.
    """

    points: tuple[DesignPoint, ...]
    correlation: float
    ps_per_level: float
    intercept_ps: float


def run_aig_correlation(cases: list[BenchmarkCase] | None = None,
                        clock_scales: tuple[float, ...] = (0.7, 0.85, 1.0, 1.25, 1.5),
                        points: list[DesignPoint] | None = None,
                        jobs: int = 1
                        ) -> AigCorrelationResult:
    """Reproduce Fig. 8.

    Args:
        cases: benchmark cases to sweep (defaults to the Fig. 1 subset).
        clock_scales: clock multipliers of the sweep.
        points: reuse an existing Fig. 1 profile instead of re-running it.
        jobs: worker processes for the underlying Fig. 1 sweep.
    """
    if points is None:
        points = run_delay_profile(cases, clock_scales, compute_aig=True,
                                   jobs=jobs)
    usable = [p for p in points if p.aig_depth > 0]
    depths = [float(p.aig_depth) for p in usable]
    delays = [p.measured_delay_ps for p in usable]
    # Tiny --quick sweeps can leave fewer than two usable points.
    correlation = pearson_correlation(depths, delays, strict=False)

    slope, intercept = _least_squares(depths, delays)
    return AigCorrelationResult(points=tuple(usable), correlation=correlation,
                                ps_per_level=slope, intercept_ps=intercept)


def _least_squares(xs: list[float], ys: list[float]) -> tuple[float, float]:
    """Simple 1-D least-squares fit ``y = slope * x + intercept``."""
    n = len(xs)
    if n < 2:
        return 0.0, ys[0] if ys else 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        return 0.0, mean_y
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / denominator
    return slope, mean_y - slope * mean_x


def format_aig_correlation(result: AigCorrelationResult) -> str:
    """One-paragraph summary of the Fig. 8 reproduction."""
    return (f"{len(result.points)} design points; "
            f"Pearson correlation (AIG depth vs. STA delay) = {result.correlation:.3f}; "
            f"fit: delay ~= {result.ps_per_level:.1f} ps/level "
            f"+ {result.intercept_ps:.1f} ps")
