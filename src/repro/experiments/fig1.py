"""Fig. 1: post-synthesis STA delay vs. HLS-estimated critical-path delay.

The paper profiles 6912 design points of one HLS design and shows that the
scheduler's estimated critical-path delays deviate substantially from the
post-synthesis STA ground truth.  Here a design point is one pipeline stage
of one schedule: sweeping several designs over a range of clock periods
produces hundreds of (estimated, measured) pairs with the same qualitative
picture -- estimates consistently above (and poorly correlated with) the
measured delays, i.e. unused slack the feedback loop can reclaim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.designs.suite import BenchmarkCase, table1_suite
from repro.experiments.table1 import registry_case_names
from repro.experiments.tables import pearson_correlation
from repro.parallel import parallel_map
from repro.sdc.scheduler import SdcScheduler
from repro.synth.cache import EvaluationCache
from repro.synth.estimator import CharacterizedOperatorModel
from repro.synth.flow import SynthesisFlow


@dataclass(frozen=True)
class DesignPoint:
    """One profiled design point (a pipeline stage of one schedule).

    Attributes:
        design: design name.
        clock_period_ps: clock period of the schedule the stage belongs to.
        stage: stage index.
        estimated_delay_ps: the scheduler's (pre-characterised, summed)
            estimate of the stage's critical combinational delay.
        measured_delay_ps: post-synthesis STA delay of the stage.
        aig_depth: AND-level depth of the stage's AIG (used by Fig. 8).
    """

    design: str
    clock_period_ps: float
    stage: int
    estimated_delay_ps: float
    measured_delay_ps: float
    aig_depth: int


def _default_cases() -> list[BenchmarkCase]:
    """A small/medium subset of the suite used for the profiling sweep."""
    wanted = {"ML-core datapath1", "rrot", "binary divide", "crc32",
              "ML-core datapath2", "video-core datapath"}
    return [case for case in table1_suite() if case.name in wanted]


def _profile_case(case: BenchmarkCase, clock_scales: tuple[float, ...],
                  model: CharacterizedOperatorModel,
                  cache: EvaluationCache) -> list[DesignPoint]:
    """Profile every pipeline stage of one case across the clock sweep.

    AIG depths appear in the points iff the cache's flow was built with
    ``compute_aig=True`` (the caller owns the flow configuration).
    """
    graph = case.build()
    points: list[DesignPoint] = []
    for scale in clock_scales:
        clock = case.clock_period_ps * scale
        scheduler = SdcScheduler(delay_model=model, clock_period_ps=clock)
        try:
            result = scheduler.schedule(graph)
        except ValueError:
            # Clock too fast for the design's slowest operation.
            continue
        schedule = result.schedule
        matrix = result.delay_matrix
        index_of = result.index_of
        stages: list[tuple[int, list[int], float]] = []
        for stage, node_ids in schedule.stage_node_map().items():
            operations = [nid for nid in node_ids
                          if not graph.node(nid).is_source]
            if not operations:
                continue
            indices = [index_of[nid] for nid in operations]
            block = matrix[indices][:, indices]
            stages.append((stage, operations, float(block.max())))
        reports = cache.evaluate_batch(
            graph, [operations for _, operations, _ in stages],
            [f"{graph.name}_c{clock:.0f}_s{stage}" for stage, _, _ in stages])
        for (stage, _, estimated), report in zip(stages, reports):
            points.append(DesignPoint(
                design=case.name, clock_period_ps=clock, stage=stage,
                estimated_delay_ps=estimated,
                measured_delay_ps=report.delay_ps,
                aig_depth=report.aig_depth or 0))
    return points


def _profile_registry_case(payload: tuple) -> list[DesignPoint]:
    """Worker-side profiling of one case, shipped by name (lambdas don't pickle)."""
    name, clock_scales, compute_aig = payload
    for case in table1_suite():
        if case.name == name:
            model = CharacterizedOperatorModel()
            cache = EvaluationCache(SynthesisFlow(compute_aig=compute_aig))
            return _profile_case(case, clock_scales, model, cache)
    raise KeyError(f"benchmark case {name!r} not in the Table-I suite")


def run_delay_profile(cases: list[BenchmarkCase] | None = None,
                      clock_scales: tuple[float, ...] = (0.7, 0.85, 1.0, 1.25, 1.5),
                      compute_aig: bool = True, jobs: int = 1
                      ) -> list[DesignPoint]:
    """Sweep schedules over clock periods and profile every pipeline stage.

    Args:
        cases: benchmark cases to sweep (defaults to a mid-size subset).
        clock_scales: multipliers applied to each case's nominal clock period;
            every (case, scale) pair produces one schedule and each of its
            stages becomes one design point.
        compute_aig: also record each stage's AIG depth (needed by Fig. 8).
        jobs: profile cases concurrently over a process pool; point values
            and ordering are identical to a serial run.  Cases outside the
            Table-I registry run serially.

    Returns:
        All profiled design points.
    """
    cases = cases if cases is not None else _default_cases()
    per_case: list[list[DesignPoint] | None] = [None] * len(cases)

    if jobs > 1:
        registry = registry_case_names(cases)
        indices = [i for i, case in enumerate(cases) if case.name in registry]
        payloads = [(cases[i].name, clock_scales, compute_aig) for i in indices]
        for i, case_points in zip(indices,
                                  parallel_map(_profile_registry_case,
                                               payloads, jobs)):
            per_case[i] = case_points

    model = None
    cache = None
    points: list[DesignPoint] = []
    for i, case in enumerate(cases):
        if per_case[i] is None:
            if model is None:
                model = CharacterizedOperatorModel()
                cache = EvaluationCache(SynthesisFlow(compute_aig=compute_aig))
            per_case[i] = _profile_case(case, clock_scales, model, cache)
        points.extend(per_case[i])
    return points


def profile_summary(points: list[DesignPoint]) -> dict[str, float]:
    """Summary statistics of a Fig. 1 profile.

    Returns:
        A dict with the number of points, the mean relative over-estimation
        (``(estimate - measured) / measured``), the fraction of points whose
        estimate exceeds the measurement, and the estimate/measurement
        Pearson correlation.
    """
    if not points:
        return {"num_points": 0, "mean_overestimation": 0.0,
                "fraction_overestimated": 0.0, "correlation": 0.0}
    overestimation = [
        (p.estimated_delay_ps - p.measured_delay_ps) / p.measured_delay_ps
        for p in points if p.measured_delay_ps > 0]
    over_count = sum(1 for p in points
                     if p.estimated_delay_ps > p.measured_delay_ps)
    correlation = pearson_correlation(
        [p.estimated_delay_ps for p in points],
        [p.measured_delay_ps for p in points],
        strict=False)  # tiny --quick profiles may be degenerate
    return {
        "num_points": float(len(points)),
        "mean_overestimation": sum(overestimation) / len(overestimation),
        "fraction_overestimated": over_count / len(points),
        "correlation": correlation,
    }


def format_profile(points: list[DesignPoint], max_rows: int = 20) -> str:
    """Human-readable listing of the first ``max_rows`` design points."""
    lines = [f"{'design':30s} {'clock':>8s} {'stage':>5s} {'estimated':>10s} "
             f"{'measured':>10s} {'aig depth':>9s}"]
    for point in points[:max_rows]:
        lines.append(f"{point.design:30s} {point.clock_period_ps:8.0f} "
                     f"{point.stage:5d} {point.estimated_delay_ps:10.1f} "
                     f"{point.measured_delay_ps:10.1f} {point.aig_depth:9d}")
    if len(points) > max_rows:
        lines.append(f"... ({len(points) - max_rows} more points)")
    summary = profile_summary(points)
    lines.append(f"mean over-estimation: {summary['mean_overestimation']:.1%}, "
                 f"overestimated points: {summary['fraction_overestimated']:.1%}, "
                 f"correlation: {summary['correlation']:.3f}")
    return "\n".join(lines)
