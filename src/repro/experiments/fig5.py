"""Fig. 5: delay-driven vs. fanout-driven subgraph extraction ablation.

The paper runs 30 ISDC iterations on one design at 400 MHz, extracting 4, 8
or 16 subgraphs per iteration with the path-based expansion, and compares the
register-usage trajectories of the delay-driven and fanout-driven ranking
strategies.  The fanout-driven strategy converges faster and ends lower.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.designs.suite import ablation_design
from repro.ir.graph import DataflowGraph
from repro.isdc.config import ExpansionStrategy, ExtractionStrategy, IsdcConfig
from repro.isdc.scheduler import IsdcScheduler
from repro.parallel import parallel_map


@dataclass(frozen=True)
class AblationCurve:
    """Register-usage trajectory of one ablation configuration.

    Attributes:
        strategy: extraction-strategy label ("delay" or "fanout").
        expansion: expansion-strategy label ("path", "cone" or "window").
        subgraphs_per_iteration: the ``m`` setting.
        registers: register usage per iteration (index 0 = initial SDC).
    """

    strategy: str
    expansion: str
    subgraphs_per_iteration: int
    registers: tuple[int, ...]

    @property
    def final_registers(self) -> int:
        return self.registers[-1]

    @property
    def iterations_to_best(self) -> int:
        """Index of the first iteration reaching the best register count."""
        best = min(self.registers)
        return self.registers.index(best)


def run_single_ablation(graph: DataflowGraph, clock_period_ps: float,
                        extraction: ExtractionStrategy,
                        expansion: ExpansionStrategy,
                        subgraphs_per_iteration: int,
                        iterations: int,
                        solver: str = "full") -> AblationCurve:
    """Run one ablation configuration and return its trajectory."""
    config = IsdcConfig(
        clock_period_ps=clock_period_ps,
        subgraphs_per_iteration=subgraphs_per_iteration,
        max_iterations=iterations,
        patience=iterations,  # ablations run the full iteration budget
        extraction=extraction,
        expansion=expansion,
        track_estimation_error=False,
        solver=solver,
    )
    result = IsdcScheduler(config).schedule(graph.copy())
    return AblationCurve(
        strategy=extraction.value,
        expansion=expansion.value,
        subgraphs_per_iteration=subgraphs_per_iteration,
        registers=tuple(result.register_trajectory()),
    )


def _run_default_design_ablation(payload: tuple) -> AblationCurve:
    """Worker-side ablation over the default design (module-level: picklable).

    The ablation design is re-built inside the worker from
    :func:`~repro.designs.suite.ablation_design`, because graphs are cheap to
    rebuild deterministically while configuration tuples pickle trivially.
    """
    extraction, expansion, count, iterations, solver = payload
    design, clock_period_ps = ablation_design()
    return run_single_ablation(design, clock_period_ps,
                               ExtractionStrategy(extraction),
                               ExpansionStrategy(expansion), count, iterations,
                               solver=solver)


def _ablation_grid(configurations: list[tuple[str, str, int, int, str]],
                   design: DataflowGraph | None,
                   clock_period_ps: float | None,
                   jobs: int) -> list[AblationCurve]:
    """Run a grid of ablation configurations, fanning out when possible."""
    if design is None and clock_period_ps is None and jobs > 1:
        return parallel_map(_run_default_design_ablation, configurations, jobs)
    if design is None or clock_period_ps is None:
        design, clock_period_ps = ablation_design()
    return [run_single_ablation(design, clock_period_ps,
                                ExtractionStrategy(extraction),
                                ExpansionStrategy(expansion), count, iterations,
                                solver=solver)
            for extraction, expansion, count, iterations, solver
            in configurations]


def run_extraction_ablation(subgraph_counts: tuple[int, ...] = (4, 8, 16),
                            iterations: int = 30,
                            design: DataflowGraph | None = None,
                            clock_period_ps: float | None = None,
                            jobs: int = 1,
                            solver: str = "full"
                            ) -> dict[tuple[str, int], AblationCurve]:
    """Reproduce Fig. 5: delay-driven vs. fanout-driven, path-based expansion.

    Args:
        jobs: run the ablation configurations concurrently (default-design
            runs only; explicit ``design`` graphs may not pickle and run
            serially).  Trajectories are identical to a serial run.
        solver: ISDC re-solve strategy; trajectories are identical for both.

    Returns:
        Mapping from ``(strategy, m)`` to the corresponding trajectory.
    """
    configurations = [
        (strategy.value, ExpansionStrategy.PATH.value, count, iterations, solver)
        for count in subgraph_counts
        for strategy in (ExtractionStrategy.DELAY, ExtractionStrategy.FANOUT)]
    results = _ablation_grid(configurations, design, clock_period_ps, jobs)
    return {(extraction, count): curve
            for (extraction, _, count, _, _), curve
            in zip(configurations, results)}


def format_ablation(curves: dict[tuple[str, int], AblationCurve]) -> str:
    """One line per configuration: final registers and convergence iteration."""
    lines = []
    for (strategy, count), curve in sorted(curves.items()):
        trajectory = ", ".join(str(r) for r in curve.registers[:10])
        lines.append(f"{strategy:>7s} m={count:2d}: final={curve.final_registers:6d} "
                     f"best@iter={curve.iterations_to_best:2d} "
                     f"trajectory=[{trajectory}{', ...' if len(curve.registers) > 10 else ''}]")
    return "\n".join(lines)
