"""Command-line entry point for the experiment harnesses.

Usage::

    python -m repro.experiments.runner table1 [--quick] [--jobs N] \
        [--solver full|incremental] [--json PATH]
    python -m repro.experiments.runner fig1 [--jobs N] [--json PATH]
    python -m repro.experiments.runner fig5 [--quick] [--jobs N] \
        [--solver full|incremental] [--json PATH]
    python -m repro.experiments.runner fig6 [--quick] [--jobs N] \
        [--solver full|incremental] [--json PATH]
    python -m repro.experiments.runner fig7 [--jobs N] \
        [--solver full|incremental] [--json PATH]
    python -m repro.experiments.runner fig8 [--jobs N] [--json PATH]
    python -m repro.experiments.runner campaign \
        (--spec SPEC.json | --quick | --design NAME) \
        [--out STORE.jsonl] [--resume] [--jobs N] [--json PATH]
    python -m repro.experiments.runner report INPUT... \
        [--group-by AXES] [--metric M] [--format F] [--json PATH]
    python -m repro.experiments.runner report diff OLD NEW \
        [--metric M] [--threshold T] [--format F]
    python -m repro.experiments.runner dse (--designs NAMES | --quick) \
        [--mode minclock|pareto] [--jobs N] [--speculate K] \
        [--resolution-ps PS] [--max-stages N] [--json PATH]
    python -m repro.experiments.runner store \
        (ls|verify|compact|gc|migrate) STORE.jsonl [...]
    python -m repro.experiments.runner serve [--stdin] [--port N] \
        [--jobs N] [--store STORE.jsonl] [...]

Each sub-command regenerates one artefact of the paper's evaluation and
prints its ASCII rendition; ``--quick`` reduces iteration counts and design
subsets so a run finishes in well under a minute.  ``--jobs N`` fans the
independent units of work (benchmark cases, ablation configurations,
campaign jobs) out over N worker processes with deterministic result
ordering -- every schedule-quality figure is identical to a serial run.
``--solver`` picks the ISDC re-solve strategy for the experiments that run
the iterative loop (``full`` rebuilds the LP every iteration,
``incremental`` patches the persistent problem in place; schedules and
every quality figure are byte-identical, only the solver-time columns
move).  ``--json PATH`` additionally writes the machine-readable payload
described in :mod:`repro.experiments.serialize`; for ``table1`` the payload
carries the per-row phase split ``isdc_solver_time_s`` /
``isdc_synthesis_time_s``.

``campaign`` runs a (design x configuration) sweep described by a JSON spec
file (:class:`repro.campaign.spec.CampaignSpec` fields; ``--quick`` uses
the built-in generated-design smoke spec instead).  ``--design NAME``
(repeatable) adds designs by name -- Table-I rows, ``gen:``/``loop:``
specs, or textual-IR ``.ir`` file paths -- extending ``--spec`` designs or,
without a spec, running them on the quick configuration axes.  ``--out`` names the
JSONL run store checkpointing every completed job; re-running with
``--resume`` skips checkpointed jobs, so an interrupted sweep continues
where it stopped and still produces the identical final payload.

``report`` is the read side: it aggregates one or more campaign run
stores / ``--json`` payloads along campaign axes (``--group-by``) with
geomean/mean/p50/p95 reducers, and ``report diff`` joins two of them on
content-addressed job ids, exiting non-zero past ``--threshold`` so CI
can gate on regressions.  See :mod:`repro.report.cli` and ``docs/cli.md``.

``dse`` searches clock-period design space per design -- the minimum
feasible clock (``--mode minclock``) or the latency / register-count
Pareto front (``--mode pareto``) -- with warm-started probe evaluation
batched over ``--jobs`` workers.  See :mod:`repro.dse.cli`.

``serve`` runs the scheduling-service daemon: schedule / min-clock /
min-II requests over a JSON line protocol (stdin or TCP/HTTP), answered
from a content-addressed warm cache with request coalescing and batched
cold-miss execution over a persistent worker pool.  See
:mod:`repro.service.cli` and ``docs/service.md``.

``store`` maintains unified artifact-store files (:mod:`repro.store`):
``ls`` summarises, ``verify`` health-checks, ``compact`` drops superseded
duplicate keys, ``gc`` applies size/age retention, and ``migrate`` folds
the legacy formats (pre-unification campaign stores, evaluation-cache
JSONL, ``--json`` payloads) into one store file.  ``--store STORE.jsonl``
on any experiment additionally archives the run's payload as a
``payload`` record in that store.

Example::

    python -m repro.experiments.runner campaign --quick \
        --out runs/quick.jsonl --jobs 4 --json runs/quick.json
    # interrupted?  finish it:
    python -m repro.experiments.runner campaign --quick \
        --out runs/quick.jsonl --resume --json runs/quick.json
    # then analyse it:
    python -m repro.experiments.runner report runs/quick.jsonl \
        --group-by design,extraction --metric registers_final
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Any

from repro.campaign import CampaignSpec, RunStore, quick_spec, run_campaign
from repro.designs.suite import table1_suite
from repro.experiments.fig1 import format_profile, run_delay_profile
from repro.experiments.fig5 import format_ablation, run_extraction_ablation
from repro.experiments.fig6 import run_expansion_ablation
from repro.experiments.fig7 import format_estimation_accuracy, run_estimation_accuracy
from repro.experiments.fig8 import format_aig_correlation, run_aig_correlation
from repro.experiments.serialize import experiment_payload
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.tables import format_campaign

EXPERIMENTS = ("table1", "fig1", "fig5", "fig6", "fig7", "fig8", "campaign")


def _small_cases():
    wanted = {"ML-core datapath1", "rrot", "binary divide", "crc32"}
    return [case for case in table1_suite() if case.name in wanted]


def run_experiment_result(name: str, quick: bool = False, jobs: int = 1,
                          solver: str = "full",
                          spec: CampaignSpec | None = None,
                          store_path: str | None = None,
                          resume: bool = False) -> tuple[Any, str]:
    """Run one experiment and return ``(raw result, printable report)``.

    Args:
        name: ``table1``, ``fig1``/``5``/``6``/``7``/``8`` or ``campaign``.
        quick: use reduced settings.
        jobs: worker processes for the experiment's parallel fan-out.
        solver: ISDC re-solve strategy for the loop-running experiments
            (``table1``, ``fig5``, ``fig6``, ``fig7``); ``fig1``/``fig8``
            do not run the loop and ignore it.
        spec: the ``campaign`` sweep description; defaults to the built-in
            quick spec when ``quick`` is set.
        store_path: the ``campaign`` JSONL run store (in-memory when omitted).
        resume: resume the ``campaign`` store instead of refusing to reuse it.

    Raises:
        ValueError: for an unknown experiment name, or ``campaign`` without
            a spec and without ``quick``.
    """
    if name == "campaign":
        if spec is None:
            if not quick:
                raise ValueError(
                    "campaign needs a spec (--spec PATH) or --quick")
            spec = quick_spec()
        result = run_campaign(spec, RunStore(store_path), jobs=jobs,
                              resume=resume)
        return result, format_campaign(result)
    if name == "table1":
        result = run_table1(subgraphs_per_iteration=8 if quick else 16,
                            max_iterations=5 if quick else 15,
                            cases=_small_cases() if quick else None,
                            jobs=jobs, solver=solver)
        return result, format_table1(result)
    if name == "fig1":
        points = run_delay_profile(_small_cases() if quick else None,
                                   compute_aig=False, jobs=jobs)
        return points, format_profile(points)
    if name == "fig5":
        curves = run_extraction_ablation(
            subgraph_counts=(4, 16) if quick else (4, 8, 16),
            iterations=8 if quick else 30, jobs=jobs, solver=solver)
        return curves, format_ablation(curves)
    if name == "fig6":
        curves = run_expansion_ablation(
            subgraph_counts=(8,) if quick else (4, 8, 16),
            iterations=8 if quick else 30, jobs=jobs, solver=solver)
        return curves, format_ablation(curves)
    if name == "fig7":
        result = run_estimation_accuracy(
            _small_cases() if quick else None,
            max_iterations=5 if quick else 10, jobs=jobs, solver=solver)
        return result, format_estimation_accuracy(result)
    if name == "fig8":
        result = run_aig_correlation(_small_cases() if quick else None,
                                     jobs=jobs)
        return result, format_aig_correlation(result)
    raise ValueError(f"unknown experiment {name!r}; expected table1 or fig1/5/6/7/8")


def run_experiment(name: str, quick: bool = False, jobs: int = 1,
                   solver: str = "full") -> str:
    """Run one experiment by name and return its printable report.

    Args:
        name: one of ``table1``, ``fig1``, ``fig5``, ``fig6``, ``fig7``, ``fig8``.
        quick: use reduced settings.
        jobs: worker processes for the experiment's parallel fan-out.
        solver: ISDC re-solve strategy (see :func:`run_experiment_result`).

    Raises:
        ValueError: for an unknown experiment name.
    """
    _, report = run_experiment_result(name, quick=quick, jobs=jobs,
                                      solver=solver)
    return report


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        import sys

        argv = sys.argv[1:]
    if argv and argv[0] == "report":
        # The report subcommand has its own positional grammar (inputs,
        # diff mode); it owns its argv entirely.
        from repro.report.cli import report_main

        return report_main(argv[1:])
    if argv and argv[0] == "dse":
        # Likewise the DSE subcommand: its flag set (mode, speculation,
        # convergence thresholds) is disjoint from the experiment flags.
        from repro.dse.cli import dse_main

        return dse_main(argv[1:])
    if argv and argv[0] == "store":
        # Artifact-store maintenance (ls/verify/compact/gc/migrate) owns
        # its own subcommand grammar too.
        from repro.store.cli import store_main

        return store_main(argv[1:])
    if argv and argv[0] == "serve":
        # The scheduling-service daemon (stdin/TCP front ends, warm
        # cache, coalescing, batched cold misses) owns its grammar too.
        from repro.service.cli import serve_main

        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate one table/figure of the ISDC paper, "
                    "analyse sweep results (see: runner report --help), or "
                    "search clock-period design space (runner dse --help).")
    parser.add_argument("experiment", choices=list(EXPERIMENTS))
    parser.add_argument("--quick", action="store_true",
                        help="reduced settings (seconds instead of minutes)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the experiment's parallel "
                             "fan-out (results are identical to --jobs 1)")
    parser.add_argument("--solver", choices=("full", "incremental"),
                        default="full",
                        help="ISDC re-solve strategy: rebuild the LP every "
                             "iteration (full) or patch the persistent "
                             "problem in place (incremental); schedules are "
                             "byte-identical either way")
    parser.add_argument("--json", dest="json_path", metavar="PATH",
                        help="also write the machine-readable result payload "
                             "to PATH")
    parser.add_argument("--store", dest="archive_store", metavar="STORE.jsonl",
                        help="also archive the result payload as a 'payload' "
                             "record in this artifact store (see: runner "
                             "store --help)")
    parser.add_argument("--spec", dest="spec_path", metavar="SPEC.json",
                        help="campaign only: JSON sweep description "
                             "(CampaignSpec fields); --quick uses the "
                             "built-in generated-design smoke spec")
    parser.add_argument("--design", dest="extra_designs", action="append",
                        metavar="NAME",
                        help="campaign only: add a design to the sweep "
                             "(Table-I name, gen:/loop: spec, or .ir file "
                             "path); repeatable.  Extends --spec designs; "
                             "without --spec the quick configuration axes "
                             "are used")
    parser.add_argument("--out", dest="store_path", metavar="STORE.jsonl",
                        help="campaign only: JSONL run store checkpointing "
                             "every completed job (in-memory when omitted)")
    parser.add_argument("--resume", action="store_true",
                        help="campaign only: skip jobs already checkpointed "
                             "in --out instead of refusing to reuse it")
    arguments = parser.parse_args(argv)
    if arguments.jobs < 1:
        parser.error("--jobs must be at least 1")
    if arguments.json_path and Path(arguments.json_path).is_dir():
        parser.error(f"--json {arguments.json_path!r} is a directory, "
                     "expected a file path")
    spec = None
    if arguments.experiment == "campaign":
        if arguments.spec_path:
            spec = CampaignSpec.from_file(arguments.spec_path)
            for name in arguments.extra_designs or ():
                if name not in spec.designs:
                    spec.designs.append(name)
        elif arguments.extra_designs:
            generated = quick_spec().designs if arguments.quick else []
            spec = quick_spec(designs=[*generated,
                                       *arguments.extra_designs])
        elif not arguments.quick:
            parser.error("campaign needs --spec PATH, --quick, or "
                         "--design NAME")
        if arguments.resume and not arguments.store_path:
            parser.error("--resume needs --out STORE.jsonl to resume from")
    elif (arguments.spec_path or arguments.store_path or arguments.resume
          or arguments.extra_designs):
        parser.error("--spec/--out/--resume/--design apply to the campaign "
                     "experiment only")

    start = time.perf_counter()
    result, report = run_experiment_result(arguments.experiment,
                                           quick=arguments.quick,
                                           jobs=arguments.jobs,
                                           solver=arguments.solver,
                                           spec=spec,
                                           store_path=arguments.store_path,
                                           resume=arguments.resume)
    elapsed = time.perf_counter() - start
    print(report)

    if arguments.json_path or arguments.archive_store:
        payload = experiment_payload(arguments.experiment, result,
                                     quick=arguments.quick,
                                     jobs=arguments.jobs, elapsed_s=elapsed,
                                     solver=arguments.solver)
        if arguments.json_path:
            path = Path(arguments.json_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(payload, indent=2) + "\n")
        if arguments.archive_store:
            from repro.store import ArtifactStore, payload_record

            archive = ArtifactStore(arguments.archive_store).open_for_append()
            archive.put(payload_record(payload))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
