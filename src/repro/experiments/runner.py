"""Command-line entry point for the experiment harnesses.

Usage::

    python -m repro.experiments.runner table1 [--quick]
    python -m repro.experiments.runner fig1
    python -m repro.experiments.runner fig5 [--quick]
    python -m repro.experiments.runner fig6 [--quick]
    python -m repro.experiments.runner fig7
    python -m repro.experiments.runner fig8

Each sub-command regenerates one artefact of the paper's evaluation and
prints its ASCII rendition; ``--quick`` reduces iteration counts and design
subsets so a run finishes in well under a minute.
"""

from __future__ import annotations

import argparse

from repro.designs.suite import table1_suite
from repro.experiments.fig1 import format_profile, run_delay_profile
from repro.experiments.fig5 import format_ablation, run_extraction_ablation
from repro.experiments.fig6 import run_expansion_ablation
from repro.experiments.fig7 import format_estimation_accuracy, run_estimation_accuracy
from repro.experiments.fig8 import format_aig_correlation, run_aig_correlation
from repro.experiments.table1 import format_table1, run_table1


def _small_cases():
    wanted = {"ML-core datapath1", "rrot", "binary divide", "crc32"}
    return [case for case in table1_suite() if case.name in wanted]


def run_experiment(name: str, quick: bool = False) -> str:
    """Run one experiment by name and return its printable report.

    Args:
        name: one of ``table1``, ``fig1``, ``fig5``, ``fig6``, ``fig7``, ``fig8``.
        quick: use reduced settings.

    Raises:
        ValueError: for an unknown experiment name.
    """
    if name == "table1":
        result = run_table1(subgraphs_per_iteration=8 if quick else 16,
                            max_iterations=5 if quick else 15,
                            cases=_small_cases() if quick else None)
        return format_table1(result)
    if name == "fig1":
        points = run_delay_profile(_small_cases() if quick else None,
                                   compute_aig=False)
        return format_profile(points)
    if name == "fig5":
        curves = run_extraction_ablation(
            subgraph_counts=(4, 16) if quick else (4, 8, 16),
            iterations=8 if quick else 30)
        return format_ablation(curves)
    if name == "fig6":
        curves = run_expansion_ablation(
            subgraph_counts=(8,) if quick else (4, 8, 16),
            iterations=8 if quick else 30)
        return format_ablation(curves)
    if name == "fig7":
        result = run_estimation_accuracy(
            _small_cases() if quick else None,
            max_iterations=5 if quick else 10)
        return format_estimation_accuracy(result)
    if name == "fig8":
        result = run_aig_correlation(_small_cases() if quick else None)
        return format_aig_correlation(result)
    raise ValueError(f"unknown experiment {name!r}; expected table1 or fig1/5/6/7/8")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate one table/figure of the ISDC paper.")
    parser.add_argument("experiment",
                        choices=["table1", "fig1", "fig5", "fig6", "fig7", "fig8"])
    parser.add_argument("--quick", action="store_true",
                        help="reduced settings (seconds instead of minutes)")
    arguments = parser.parse_args(argv)
    print(run_experiment(arguments.experiment, quick=arguments.quick))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
