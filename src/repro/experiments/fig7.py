"""Fig. 7: delay-estimation accuracy of ISDC vs. the original SDC.

For every iteration, the paper compares the scheduler's estimated critical
path delays against post-synthesis STA, averaged over the 17 benchmarks.
ISDC's error shrinks towards a few percent as feedback accumulates, while the
original (feedback-free) estimate gets *worse* on the refined schedules --
the more aggressively operations are chained, the more low-level optimisation
the naive estimate misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.designs.suite import BenchmarkCase, table1_suite
from repro.experiments.table1 import registry_case_names
from repro.isdc.config import IsdcConfig
from repro.isdc.scheduler import IsdcScheduler
from repro.parallel import parallel_map


@dataclass
class EstimationAccuracyResult:
    """Per-iteration estimation error, averaged over benchmarks.

    Attributes:
        isdc_error: mean relative error of ISDC's (feedback-updated) stage
            delay estimates, indexed by iteration.
        sdc_error: mean relative error of the original SDC estimates evaluated
            on the same (ISDC-refined) schedules, indexed by iteration.
        per_design: raw per-design error trajectories (ISDC estimates).
    """

    isdc_error: list[float] = field(default_factory=list)
    sdc_error: list[float] = field(default_factory=list)
    per_design: dict[str, list[float]] = field(default_factory=dict)

    @property
    def final_isdc_error(self) -> float:
        return self.isdc_error[-1] if self.isdc_error else 0.0

    @property
    def final_sdc_error(self) -> float:
        return self.sdc_error[-1] if self.sdc_error else 0.0


def _accuracy_curves(case: BenchmarkCase, max_iterations: int,
                     subgraphs_per_iteration: int, solver: str = "full"
                     ) -> tuple[list[float], list[float]]:
    """ISDC and naive-SDC estimation-error curves of one benchmark case."""
    graph = case.build()
    config = IsdcConfig(clock_period_ps=case.clock_period_ps,
                        subgraphs_per_iteration=subgraphs_per_iteration,
                        max_iterations=max_iterations,
                        patience=max_iterations,
                        track_estimation_error=True,
                        solver=solver)
    result = IsdcScheduler(config).schedule(graph)
    isdc_curve = [record.estimation_error for record in result.history]
    sdc_curve = [record.naive_estimation_error
                 if record.naive_estimation_error is not None
                 else record.estimation_error
                 for record in result.history]
    return ([e for e in isdc_curve if e is not None],
            [e for e in sdc_curve if e is not None])


def _accuracy_registry_case(payload: tuple) -> tuple[list[float], list[float]]:
    """Worker-side accuracy run, shipped by case name (lambdas don't pickle)."""
    name, max_iterations, subgraphs_per_iteration, solver = payload
    for case in table1_suite():
        if case.name == name:
            return _accuracy_curves(case, max_iterations,
                                    subgraphs_per_iteration, solver)
    raise KeyError(f"benchmark case {name!r} not in the Table-I suite")


def run_estimation_accuracy(cases: list[BenchmarkCase] | None = None,
                            max_iterations: int = 8,
                            subgraphs_per_iteration: int = 16,
                            jobs: int = 1,
                            solver: str = "full"
                            ) -> EstimationAccuracyResult:
    """Reproduce Fig. 7 on the given benchmark cases.

    Args:
        cases: benchmark cases (defaults to the small/medium half of the
            Table-I suite, which keeps the per-iteration stage synthesis
            affordable).
        max_iterations: how many ISDC iterations to profile.
        subgraphs_per_iteration: ISDC's ``m``.
        jobs: run cases concurrently over a process pool; curves are
            identical to a serial run.
        solver: ISDC re-solve strategy; curves are identical for both.
    """
    if cases is None:
        cases = [case for case in table1_suite() if case.scale != "large"]

    curves: list[tuple[list[float], list[float]] | None] = [None] * len(cases)
    if jobs > 1:
        registry = registry_case_names(cases)
        indices = [i for i, case in enumerate(cases) if case.name in registry]
        payloads = [(cases[i].name, max_iterations, subgraphs_per_iteration,
                     solver)
                    for i in indices]
        for i, pair in zip(indices, parallel_map(_accuracy_registry_case,
                                                 payloads, jobs)):
            curves[i] = pair

    per_design_isdc: dict[str, list[float]] = {}
    per_design_sdc: dict[str, list[float]] = {}
    for i, case in enumerate(cases):
        isdc_curve, sdc_curve = curves[i] or _accuracy_curves(
            case, max_iterations, subgraphs_per_iteration, solver)
        per_design_isdc[case.name] = isdc_curve
        per_design_sdc[case.name] = sdc_curve

    result = EstimationAccuracyResult(per_design=per_design_isdc)
    num_iterations = max((len(curve) for curve in per_design_isdc.values()),
                         default=0)
    for iteration in range(num_iterations):
        isdc_values = [curve[min(iteration, len(curve) - 1)]
                       for curve in per_design_isdc.values() if curve]
        sdc_values = [curve[min(iteration, len(curve) - 1)]
                      for curve in per_design_sdc.values() if curve]
        if isdc_values:
            result.isdc_error.append(sum(isdc_values) / len(isdc_values))
        if sdc_values:
            result.sdc_error.append(sum(sdc_values) / len(sdc_values))
    return result


def format_estimation_accuracy(result: EstimationAccuracyResult) -> str:
    """ASCII rendition of the two Fig. 7 curves."""
    lines = [f"{'iteration':>9s} {'ISDC error':>11s} {'SDC error':>10s}"]
    for iteration, (isdc, sdc) in enumerate(zip(result.isdc_error, result.sdc_error)):
        lines.append(f"{iteration:9d} {isdc:11.1%} {sdc:10.1%}")
    return "\n".join(lines)
