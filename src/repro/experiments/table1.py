"""Table I: benchmarking SDC vs. ISDC on the 17-design suite."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.designs.suite import BenchmarkCase, table1_suite
from repro.experiments.tables import format_table, geometric_mean
from repro.isdc.config import IsdcConfig
from repro.isdc.scheduler import IsdcScheduler


@dataclass(frozen=True)
class TableOneRow:
    """One benchmark row of Table I.

    Columns mirror the paper: target clock period, then (slack, stage count,
    register count, schedule time) for the SDC baseline and for ISDC, plus
    the number of ISDC iterations actually run.
    """

    benchmark: str
    clock_period_ps: float
    sdc_slack_ps: float
    sdc_stages: int
    sdc_registers: int
    sdc_time_s: float
    isdc_slack_ps: float
    isdc_stages: int
    isdc_registers: int
    isdc_time_s: float
    isdc_iterations: int

    @property
    def register_reduction(self) -> float:
        """Fractional register reduction of ISDC over SDC on this row."""
        if self.sdc_registers == 0:
            return 0.0
        return 1.0 - self.isdc_registers / self.sdc_registers


@dataclass
class TableOneResult:
    """All rows plus the geometric-mean summary of Table I."""

    rows: list[TableOneRow] = field(default_factory=list)

    def geomean(self, attribute: str) -> float:
        """Geometric mean of one column across all rows."""
        return geometric_mean(getattr(row, attribute) for row in self.rows)

    @property
    def register_ratio(self) -> float:
        """ISDC/SDC register geometric-mean ratio (paper: 71.5 %)."""
        baseline = self.geomean("sdc_registers")
        if baseline == 0:
            return 1.0
        return self.geomean("isdc_registers") / baseline

    @property
    def stage_ratio(self) -> float:
        """ISDC/SDC pipeline-stage geometric-mean ratio (paper: 70.0 %)."""
        baseline = self.geomean("sdc_stages")
        if baseline == 0:
            return 1.0
        return self.geomean("isdc_stages") / baseline

    @property
    def slack_ratio(self) -> float:
        """ISDC/SDC slack geometric-mean ratio (paper: 60.9 %)."""
        baseline = self.geomean("sdc_slack_ps")
        if baseline == 0:
            return 1.0
        return self.geomean("isdc_slack_ps") / baseline

    @property
    def runtime_ratio(self) -> float:
        """ISDC/SDC scheduling-runtime geometric-mean ratio (paper: ~40x)."""
        baseline = self.geomean("sdc_time_s")
        if baseline == 0:
            return float("inf")
        return self.geomean("isdc_time_s") / baseline


def run_table1_case(case: BenchmarkCase, subgraphs_per_iteration: int = 16,
                    max_iterations: int = 15, verbose: bool = False) -> TableOneRow:
    """Run SDC + ISDC on one benchmark case and produce its Table-I row."""
    graph = case.build()
    config = IsdcConfig(clock_period_ps=case.clock_period_ps,
                        subgraphs_per_iteration=subgraphs_per_iteration,
                        max_iterations=max_iterations,
                        track_estimation_error=False,
                        verbose=verbose)
    result = IsdcScheduler(config).schedule(graph)
    return TableOneRow(
        benchmark=case.name,
        clock_period_ps=case.clock_period_ps,
        sdc_slack_ps=result.initial_report.slack_ps,
        sdc_stages=result.initial_report.num_stages,
        sdc_registers=result.initial_report.num_registers,
        sdc_time_s=result.baseline_runtime_s,
        isdc_slack_ps=result.final_report.slack_ps,
        isdc_stages=result.final_report.num_stages,
        isdc_registers=result.final_report.num_registers,
        isdc_time_s=result.total_runtime_s,
        isdc_iterations=result.iterations,
    )


def run_table1(cases: list[BenchmarkCase] | None = None,
               subgraphs_per_iteration: int = 16, max_iterations: int = 15,
               verbose: bool = False) -> TableOneResult:
    """Run the full Table-I benchmark (or a subset of its cases).

    Args:
        cases: benchmark cases to run; defaults to the full 17-design suite.
        subgraphs_per_iteration: ISDC's ``m`` (the paper uses 16).
        max_iterations: ISDC iteration cap (the paper uses 15).
        verbose: print one line per row as it completes.
    """
    result = TableOneResult()
    for case in cases if cases is not None else table1_suite():
        row = run_table1_case(case, subgraphs_per_iteration, max_iterations)
        result.rows.append(row)
        if verbose:
            print(f"  {row.benchmark:35s} registers {row.sdc_registers:6d} -> "
                  f"{row.isdc_registers:6d} ({row.register_reduction:+.1%})")
    return result


def format_table1(result: TableOneResult) -> str:
    """ASCII rendition of Table I, including the geometric-mean summary rows."""
    headers = ["Benchmark", "Clock (ps)", "SDC slack", "SDC stages", "SDC regs",
               "SDC time (s)", "ISDC slack", "ISDC stages", "ISDC regs",
               "ISDC time (s)", "Iters"]
    rows = []
    for row in result.rows:
        rows.append([
            row.benchmark, f"{row.clock_period_ps:.0f}", f"{row.sdc_slack_ps:.1f}",
            row.sdc_stages, row.sdc_registers, f"{row.sdc_time_s:.2f}",
            f"{row.isdc_slack_ps:.1f}", row.isdc_stages, row.isdc_registers,
            f"{row.isdc_time_s:.2f}", row.isdc_iterations,
        ])
    rows.append([
        "Geo. Mean", "", f"{result.geomean('sdc_slack_ps'):.1f}",
        f"{result.geomean('sdc_stages'):.2f}", f"{result.geomean('sdc_registers'):.1f}",
        f"{result.geomean('sdc_time_s'):.2f}", f"{result.geomean('isdc_slack_ps'):.1f}",
        f"{result.geomean('isdc_stages'):.2f}", f"{result.geomean('isdc_registers'):.1f}",
        f"{result.geomean('isdc_time_s'):.2f}", "",
    ])
    rows.append([
        "Ratio", "", f"{result.slack_ratio:.1%}", f"{result.stage_ratio:.1%}",
        f"{result.register_ratio:.1%}", "100.0%", "", "", "",
        f"{result.runtime_ratio * 100:.1f}%", "",
    ])
    return format_table(headers, rows)
