"""Table I: benchmarking SDC vs. ISDC on the 17-design suite."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.designs.suite import BenchmarkCase, table1_suite
from repro.experiments.tables import format_table, geometric_mean
from repro.isdc.config import IsdcConfig
from repro.isdc.scheduler import IsdcScheduler
from repro.parallel import parallel_map


def registry_case_names(cases: list[BenchmarkCase]) -> set[str]:
    """Names of the given cases that can be re-built from :func:`table1_suite`.

    Worker processes receive cases by *name* (factories are lambdas and do
    not pickle), so a case only qualifies when the registry entry of the same
    name also matches its clock period and scale -- a caller-supplied custom
    case that merely reuses a suite name must not be silently replaced by the
    registry design.
    """
    registry = {case.name: case for case in table1_suite()}
    matched = set()
    for case in cases:
        reference = registry.get(case.name)
        if (reference is not None
                and reference.clock_period_ps == case.clock_period_ps
                and reference.scale == case.scale):
            matched.add(case.name)
    return matched


@dataclass(frozen=True)
class TableOneRow:
    """One benchmark row of Table I.

    Columns mirror the paper: target clock period, then (slack, stage count,
    register count, schedule time) for the SDC baseline and for ISDC, plus
    the number of ISDC iterations actually run, the number of distinct
    subgraphs the run truly synthesised (cache and disk-layer answers
    excluded) and the per-phase split of the ISDC runtime (cumulative LP
    re-solve time vs. cumulative subgraph synthesis time).
    """

    benchmark: str
    clock_period_ps: float
    sdc_slack_ps: float
    sdc_stages: int
    sdc_registers: int
    sdc_time_s: float
    isdc_slack_ps: float
    isdc_stages: int
    isdc_registers: int
    isdc_time_s: float
    isdc_iterations: int
    isdc_evaluations: int = 0
    isdc_solver_time_s: float = 0.0
    isdc_synthesis_time_s: float = 0.0

    @property
    def register_reduction(self) -> float:
        """Fractional register reduction of ISDC over SDC on this row."""
        if self.sdc_registers == 0:
            return 0.0
        return 1.0 - self.isdc_registers / self.sdc_registers


@dataclass
class TableOneResult:
    """All rows plus the geometric-mean summary of Table I."""

    rows: list[TableOneRow] = field(default_factory=list)

    def geomean(self, attribute: str) -> float:
        """Geometric mean of one column across all rows.

        Zeros are clamped to ``1e-9`` (a metric may legitimately collapse
        to zero on a degenerate row; the summary must stay defined) and an
        empty table summarises to ``0.0``.
        """
        if not self.rows:
            return 0.0
        return geometric_mean((getattr(row, attribute) for row in self.rows),
                              floor=1e-9)

    @property
    def register_ratio(self) -> float:
        """ISDC/SDC register geometric-mean ratio (paper: 71.5 %)."""
        baseline = self.geomean("sdc_registers")
        if baseline == 0:
            return 1.0
        return self.geomean("isdc_registers") / baseline

    @property
    def stage_ratio(self) -> float:
        """ISDC/SDC pipeline-stage geometric-mean ratio (paper: 70.0 %)."""
        baseline = self.geomean("sdc_stages")
        if baseline == 0:
            return 1.0
        return self.geomean("isdc_stages") / baseline

    @property
    def slack_ratio(self) -> float:
        """ISDC/SDC slack geometric-mean ratio (paper: 60.9 %)."""
        baseline = self.geomean("sdc_slack_ps")
        if baseline == 0:
            return 1.0
        return self.geomean("isdc_slack_ps") / baseline

    @property
    def runtime_ratio(self) -> float:
        """ISDC/SDC scheduling-runtime geometric-mean ratio (paper: ~40x)."""
        baseline = self.geomean("sdc_time_s")
        if baseline == 0:
            return float("inf")
        return self.geomean("isdc_time_s") / baseline


def run_table1_case(case: BenchmarkCase, subgraphs_per_iteration: int = 16,
                    max_iterations: int = 15, verbose: bool = False,
                    solver: str = "full") -> TableOneRow:
    """Run SDC + ISDC on one benchmark case and produce its Table-I row."""
    graph = case.build()
    config = IsdcConfig(clock_period_ps=case.clock_period_ps,
                        subgraphs_per_iteration=subgraphs_per_iteration,
                        max_iterations=max_iterations,
                        track_estimation_error=False,
                        verbose=verbose,
                        solver=solver)
    result = IsdcScheduler(config).schedule(graph)
    return TableOneRow(
        benchmark=case.name,
        clock_period_ps=case.clock_period_ps,
        sdc_slack_ps=result.initial_report.slack_ps,
        sdc_stages=result.initial_report.num_stages,
        sdc_registers=result.initial_report.num_registers,
        sdc_time_s=result.baseline_runtime_s,
        isdc_slack_ps=result.final_report.slack_ps,
        isdc_stages=result.final_report.num_stages,
        isdc_registers=result.final_report.num_registers,
        isdc_time_s=result.total_runtime_s,
        isdc_iterations=result.iterations,
        isdc_evaluations=result.subgraphs_evaluated,
        isdc_solver_time_s=result.solver_runtime_s,
        isdc_synthesis_time_s=result.synthesis_runtime_s,
    )


def _run_registry_case(payload: tuple) -> TableOneRow:
    """Worker-side case runner (module-level so it pickles into the pool).

    Cases are shipped by *name* and re-built from :func:`table1_suite` in the
    worker, because :class:`BenchmarkCase` factories are lambdas and do not
    pickle.
    """
    name, subgraphs_per_iteration, max_iterations, solver = payload
    for case in table1_suite():
        if case.name == name:
            return run_table1_case(case, subgraphs_per_iteration, max_iterations,
                                   solver=solver)
    raise KeyError(f"benchmark case {name!r} not in the Table-I suite")


def run_table1(cases: list[BenchmarkCase] | None = None,
               subgraphs_per_iteration: int = 16, max_iterations: int = 15,
               verbose: bool = False, jobs: int = 1,
               solver: str = "full") -> TableOneResult:
    """Run the full Table-I benchmark (or a subset of its cases).

    Args:
        cases: benchmark cases to run; defaults to the full 17-design suite.
        subgraphs_per_iteration: ISDC's ``m`` (the paper uses 16).
        max_iterations: ISDC iteration cap (the paper uses 15).
        verbose: print one line per row as it completes.
        jobs: run cases concurrently over a process pool.  Row order and all
            schedule-quality figures are identical to a serial run (only the
            wall-clock timing columns differ).  Cases whose names are not in
            the Table-I registry cannot be shipped to workers and run
            serially.
        solver: re-solve strategy for the ISDC loop ("full" or
            "incremental"); schedule-quality figures are identical for both,
            only the solver-time columns differ.
    """
    case_list = list(cases) if cases is not None else table1_suite()
    rows: list[TableOneRow | None] = [None] * len(case_list)

    if jobs > 1:
        registry = registry_case_names(case_list)
        indices = [i for i, case in enumerate(case_list)
                   if case.name in registry]
        payloads = [(case_list[i].name, subgraphs_per_iteration, max_iterations,
                     solver)
                    for i in indices]
        for i, row in zip(indices, parallel_map(_run_registry_case, payloads,
                                                jobs)):
            rows[i] = row

    result = TableOneResult()
    for i, case in enumerate(case_list):
        row = rows[i] or run_table1_case(case, subgraphs_per_iteration,
                                         max_iterations, solver=solver)
        result.rows.append(row)
        if verbose:
            print(f"  {row.benchmark:35s} registers {row.sdc_registers:6d} -> "
                  f"{row.isdc_registers:6d} ({row.register_reduction:+.1%})")
    return result


def format_table1(result: TableOneResult) -> str:
    """ASCII rendition of Table I, including the geometric-mean summary rows."""
    headers = ["Benchmark", "Clock (ps)", "SDC slack", "SDC stages", "SDC regs",
               "SDC time (s)", "ISDC slack", "ISDC stages", "ISDC regs",
               "ISDC time (s)", "Iters", "Evals"]
    rows = []
    for row in result.rows:
        rows.append([
            row.benchmark, f"{row.clock_period_ps:.0f}", f"{row.sdc_slack_ps:.1f}",
            row.sdc_stages, row.sdc_registers, f"{row.sdc_time_s:.2f}",
            f"{row.isdc_slack_ps:.1f}", row.isdc_stages, row.isdc_registers,
            f"{row.isdc_time_s:.2f}", row.isdc_iterations, row.isdc_evaluations,
        ])
    rows.append([
        "Geo. Mean", "", f"{result.geomean('sdc_slack_ps'):.1f}",
        f"{result.geomean('sdc_stages'):.2f}", f"{result.geomean('sdc_registers'):.1f}",
        f"{result.geomean('sdc_time_s'):.2f}", f"{result.geomean('isdc_slack_ps'):.1f}",
        f"{result.geomean('isdc_stages'):.2f}", f"{result.geomean('isdc_registers'):.1f}",
        f"{result.geomean('isdc_time_s'):.2f}", "", "",
    ])
    rows.append([
        "Ratio", "", f"{result.slack_ratio:.1%}", f"{result.stage_ratio:.1%}",
        f"{result.register_ratio:.1%}", "100.0%", "", "", "",
        f"{result.runtime_ratio * 100:.1f}%", "", "",
    ])
    return format_table(headers, rows)
