"""Technology characterisation.

This package is the stand-in for the SKY130 PDK + Yosys characterisation the
paper relies on.  It provides two levels of delay/area information:

* a gate-level cell library (:class:`~repro.tech.library.TechLibrary`) used by
  the netlist STA, with per-cell propagation delays and areas; and
* a word-level operator model (:class:`~repro.tech.delay_model.OperatorModel`)
  that pre-characterises each IR opcode *in isolation* as a function of bit
  width -- this is exactly the "operations characterised in isolation" delay
  estimate that the original SDC scheduler uses and that ISDC's feedback loop
  improves upon.
"""

from repro.tech.library import Cell, TechLibrary
from repro.tech.sky130 import sky130_library
from repro.tech.delay_model import OperatorModel, OperatorTiming

__all__ = [
    "Cell",
    "TechLibrary",
    "sky130_library",
    "OperatorModel",
    "OperatorTiming",
]
