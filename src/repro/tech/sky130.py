"""A synthetic SKY130-flavoured cell library.

The delays below are representative of the SKY130 high-density standard-cell
library at typical corner (tens of picoseconds per gate, ~150 ps of register
overhead).  They are *not* extracted from liberty files -- the reproduction
only needs relative magnitudes that put 32-bit ripple adders around 1.3 ns and
32-bit array multipliers around 2.5 ns, which these numbers do.
"""

from __future__ import annotations

from repro.tech.library import Cell, TechLibrary

#: Gate name -> (delay in ps, area in um^2, number of inputs).
_SKY130_CELLS: dict[str, tuple[float, float, int]] = {
    "buf": (18.0, 3.8, 1),
    "inv": (15.0, 2.5, 1),
    "and2": (25.0, 5.0, 2),
    "or2": (27.0, 5.0, 2),
    "nand2": (20.0, 3.8, 2),
    "nor2": (22.0, 3.8, 2),
    "xor2": (45.0, 8.8, 2),
    "xnor2": (45.0, 8.8, 2),
    "andn2": (26.0, 5.0, 2),
    "mux2": (35.0, 11.3, 3),
    "maj3": (40.0, 10.0, 3),
    "aoi21": (28.0, 6.3, 3),
    "oai21": (28.0, 6.3, 3),
    "tie0": (0.0, 1.3, 0),
    "tie1": (0.0, 1.3, 0),
}

#: Flip-flop clock-to-Q plus setup, charged once per pipeline stage.
_REGISTER_DELAY_PS = 150.0
#: Area of a single D flip-flop.
_REGISTER_AREA_UM2 = 20.0


def sky130_library() -> TechLibrary:
    """Build the synthetic SKY130-flavoured :class:`TechLibrary`."""
    library = TechLibrary(
        name="sky130_synthetic",
        register_delay_ps=_REGISTER_DELAY_PS,
        register_area_um2=_REGISTER_AREA_UM2,
    )
    for name, (delay, area, inputs) in _SKY130_CELLS.items():
        library.add_cell(Cell(name=name, delay_ps=delay, area_um2=area,
                              num_inputs=inputs))
    return library
