"""Gate-level cell library."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Cell:
    """A standard cell in the technology library.

    Attributes:
        name: cell name (e.g. ``"nand2"``).
        delay_ps: pin-to-pin propagation delay in picoseconds.  A single
            number is used (no rise/fall or slew dependence); this is the
            same simplification the paper's per-operation characterisation
            makes and is sufficient for relative comparisons.
        area_um2: cell area in square micrometres.
        num_inputs: number of input pins.
    """

    name: str
    delay_ps: float
    area_um2: float
    num_inputs: int


@dataclass
class TechLibrary:
    """A collection of standard cells plus sequential/flip-flop figures.

    Attributes:
        name: library name (e.g. ``"sky130_synthetic"``).
        cells: mapping from cell name to :class:`Cell`.
        register_delay_ps: clock-to-Q plus setup overhead charged per pipeline
            stage when computing post-synthesis slack.
        register_area_um2: area of a single flip-flop (used by area reports).
    """

    name: str
    cells: dict[str, Cell] = field(default_factory=dict)
    register_delay_ps: float = 0.0
    register_area_um2: float = 0.0

    def add_cell(self, cell: Cell) -> None:
        """Register a cell, replacing any previous cell of the same name."""
        self.cells[cell.name] = cell

    def cell(self, name: str) -> Cell:
        """Return the cell called ``name``.

        Raises:
            KeyError: if the library has no such cell.
        """
        if name not in self.cells:
            raise KeyError(f"library {self.name!r} has no cell {name!r}")
        return self.cells[name]

    def delay(self, name: str) -> float:
        """Propagation delay of cell ``name`` in picoseconds."""
        return self.cell(name).delay_ps

    def area(self, name: str) -> float:
        """Area of cell ``name`` in square micrometres."""
        return self.cell(name).area_um2

    def signature(self) -> str:
        """Content identity of the library's characterisation data.

        Two libraries that merely share a *name* but differ in any delay,
        area or register figure get distinct signatures, so persisted
        synthesis results characterised under one can never be served
        under the other.  The digest covers every cell's timing/area/pin
        figures plus the sequential overheads -- the full delay-model
        identity, not just the label.
        """
        characterisation = {
            "cells": {name: [cell.delay_ps, cell.area_um2, cell.num_inputs]
                      for name, cell in self.cells.items()},
            "register_delay_ps": self.register_delay_ps,
            "register_area_um2": self.register_area_um2,
        }
        canonical = json.dumps(characterisation, sort_keys=True,
                               separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode()).hexdigest()[:12]
        return f"{self.name}@{digest}"
