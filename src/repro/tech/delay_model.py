"""Word-level operator delay/area model.

This is the "operations pre-characterised in isolation" model that classical
SDC scheduling (and XLS) uses: each opcode gets a delay that depends only on
its own bit width, derived from the architecture the gate-level lowering
uses (ripple-carry adders, array multipliers, barrel shifters, balanced gate
trees).  A configurable pessimism margin models the characterisation guard
band that real flows apply.

The gap between this model and the post-synthesis STA of *chained* operations
(where carry chains overlap and the logic optimiser restructures trees) is the
unused slack ISDC recovers (paper Fig. 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ir.node import Node
from repro.ir.ops import OpKind
from repro.tech.library import TechLibrary
from repro.tech.sky130 import sky130_library


def _clog2(value: int) -> int:
    if value <= 1:
        return 0
    return math.ceil(math.log2(value))


@dataclass(frozen=True)
class OperatorTiming:
    """Delay and register cost of one word-level operation instance.

    Attributes:
        delay_ps: isolated combinational delay estimate in picoseconds.
        register_bits: number of flip-flops needed to register the result.
    """

    delay_ps: float
    register_bits: int


class OperatorModel:
    """Closed-form per-operation delay model.

    Args:
        library: cell library supplying the underlying gate delays.
        pessimism: multiplicative guard band applied to every estimate
            (1.0 = none).  Real characterisation flows add margin for wire
            load and process variation; 1.1 is a realistic default.
    """

    def __init__(self, library: TechLibrary | None = None,
                 pessimism: float = 1.1) -> None:
        self.library = library or sky130_library()
        if pessimism < 1.0:
            raise ValueError(f"pessimism must be >= 1.0, got {pessimism}")
        self.pessimism = pessimism

    #: Bumped whenever the closed-form delay formulas change, so persisted
    #: estimates characterised under an older model are not served as if
    #: they were current.
    MODEL_VERSION = 1

    def signature(self) -> str:
        """Content identity of this delay model (formulas + guard band +
        library characterisation)."""
        return (f"OperatorModel(v{self.MODEL_VERSION},"
                f"pessimism={self.pessimism},"
                f"library={self.library.signature()})")

    # ------------------------------------------------------------------ delay

    def delay(self, kind: OpKind, width: int, num_operands: int = 2) -> float:
        """Isolated delay estimate (ps) of ``kind`` at ``width`` bits."""
        return self._raw_delay(kind, width, num_operands) * self.pessimism

    def node_delay(self, node: Node) -> float:
        """Isolated delay estimate of a concrete IR node."""
        return self.delay(node.kind, node.width, max(2, len(node.operands)))

    def _raw_delay(self, kind: OpKind, width: int, num_operands: int) -> float:
        lib = self.library
        xor2 = lib.delay("xor2")
        and2 = lib.delay("and2")
        or2 = lib.delay("or2")
        inv = lib.delay("inv")
        mux2 = lib.delay("mux2")
        maj3 = lib.delay("maj3")

        if kind.is_free:
            return 0.0

        if kind in (OpKind.ADD,):
            # Ripple-carry: sum-XOR + (width-1) carry stages + final sum-XOR.
            return 2 * xor2 + max(0, width - 1) * maj3
        if kind in (OpKind.SUB, OpKind.NEG):
            return inv + 2 * xor2 + max(0, width - 1) * maj3
        if kind is OpKind.MUL:
            # Array multiplier: partial-product AND, then ~2*width carry-save
            # and ripple stages.
            return and2 + (2 * width - 2) * maj3 + xor2
        if kind is OpKind.MULADD:
            return and2 + (2 * width - 1) * maj3 + xor2
        if kind in (OpKind.UDIV, OpKind.UMOD):
            # Restoring array divider: width rows of width-bit subtract/select.
            row = 2 * xor2 + max(0, width - 1) * maj3 + mux2
            return width * row

        if kind in (OpKind.AND, OpKind.OR, OpKind.XOR):
            per_level = {OpKind.AND: and2, OpKind.OR: or2, OpKind.XOR: xor2}[kind]
            levels = max(1, _clog2(max(2, num_operands)))
            return per_level * levels
        if kind is OpKind.NOT:
            return inv
        if kind is OpKind.ANDN:
            return lib.delay("andn2")

        if kind in (OpKind.AND_REDUCE, OpKind.OR_REDUCE, OpKind.XOR_REDUCE):
            per_level = {OpKind.AND_REDUCE: and2, OpKind.OR_REDUCE: or2,
                         OpKind.XOR_REDUCE: xor2}[kind]
            return per_level * max(1, _clog2(width))

        if kind in (OpKind.SHL, OpKind.SHRL, OpKind.SHRA, OpKind.ROTL, OpKind.ROTR):
            # Barrel shifter: one mux level per shift-amount bit.
            return mux2 * max(1, _clog2(width))

        if kind in (OpKind.EQ, OpKind.NE):
            return xor2 + or2 * max(1, _clog2(width)) + (inv if kind is OpKind.EQ else 0.0)
        if kind.is_comparison:
            # Magnitude compare: borrow chain comparable to a subtractor.
            return xor2 + max(0, width - 1) * maj3

        if kind is OpKind.SEL:
            return mux2
        if kind is OpKind.CLZ:
            return (or2 + mux2) * max(1, _clog2(width))
        if kind is OpKind.POPCOUNT:
            return (2 * xor2 + maj3) * max(1, _clog2(width))
        if kind is OpKind.OUTPUT:
            return 0.0
        raise ValueError(f"no delay model for opcode {kind.value}")

    # --------------------------------------------------------------- register

    def register_bits(self, node: Node) -> int:
        """Flip-flops needed to register the result of ``node``."""
        return node.width

    def timing(self, node: Node) -> OperatorTiming:
        """Bundle delay and register cost of ``node``."""
        return OperatorTiming(delay_ps=self.node_delay(node),
                              register_bits=self.register_bits(node))
