"""SDC (system-of-difference-constraints) scheduling.

This package implements the classic Cong & Zhang SDC scheduling formulation
that both XLS and the paper's baseline use:

* :mod:`~repro.sdc.constraints` -- difference-constraint objects and the
  constraint system container;
* :mod:`~repro.sdc.delays` -- per-node delays and the all-pairs critical-path
  (combinational) delay matrix used for timing constraints;
* :mod:`~repro.sdc.solver` -- LP solution (scipy HiGHS) of the constraint
  system with a register-lifetime objective, plus ASAP/ALAP solvers based on
  longest-path propagation;
* :mod:`~repro.sdc.scheduler` -- the end-to-end baseline scheduler;
* :mod:`~repro.sdc.pipeline` -- schedule → pipeline stages, register usage,
  post-synthesis slack.
"""

from repro.sdc.constraints import DifferenceConstraint, ConstraintSystem
from repro.sdc.delays import node_delays, critical_path_matrix
from repro.sdc.solver import solve_asap, solve_alap, solve_lp, SdcInfeasibleError
from repro.sdc.scheduler import SdcScheduler, Schedule
from repro.sdc.pipeline import PipelineAnalyzer, PipelineReport

__all__ = [
    "DifferenceConstraint",
    "ConstraintSystem",
    "node_delays",
    "critical_path_matrix",
    "solve_asap",
    "solve_alap",
    "solve_lp",
    "SdcInfeasibleError",
    "SdcScheduler",
    "Schedule",
    "PipelineAnalyzer",
    "PipelineReport",
]
