"""SDC (system-of-difference-constraints) scheduling.

This package implements the classic Cong & Zhang SDC scheduling formulation
that both XLS and the paper's baseline use:

* :mod:`~repro.sdc.constraints` -- difference-constraint objects and the
  constraint system container;
* :mod:`~repro.sdc.delays` -- per-node delays and the all-pairs critical-path
  (combinational) delay matrix used for timing constraints;
* :mod:`~repro.sdc.problem` -- the persistent :class:`ScheduleProblem`
  (cached objective data, constraint system with stable row identities,
  assembled LP structure) and its delta timing updates;
* :mod:`~repro.sdc.solver` -- LP solution (scipy HiGHS) of the constraint
  system with a register-lifetime objective, ASAP/ALAP solvers based on
  longest-path propagation, and the full/incremental re-solve strategies
  over a persistent problem;
* :mod:`~repro.sdc.scheduler` -- the end-to-end baseline scheduler;
* :mod:`~repro.sdc.pipeline` -- schedule → pipeline stages, register usage,
  post-synthesis slack.
"""

from repro.sdc.constraints import DifferenceConstraint, ConstraintSystem
from repro.sdc.delays import node_delays, critical_path_matrix
from repro.sdc.problem import ScheduleProblem, assemble_lp
from repro.sdc.solver import (
    FullSolver,
    IncrementalSolver,
    SdcInfeasibleError,
    create_solver,
    solve_alap,
    solve_asap,
    solve_lp,
)
from repro.sdc.scheduler import SdcScheduler, Schedule
from repro.sdc.pipeline import PipelineAnalyzer, PipelineReport

__all__ = [
    "DifferenceConstraint",
    "ConstraintSystem",
    "node_delays",
    "critical_path_matrix",
    "ScheduleProblem",
    "assemble_lp",
    "solve_asap",
    "solve_alap",
    "solve_lp",
    "SdcInfeasibleError",
    "FullSolver",
    "IncrementalSolver",
    "create_solver",
    "SdcScheduler",
    "Schedule",
    "PipelineAnalyzer",
    "PipelineReport",
]
