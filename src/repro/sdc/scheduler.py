"""The baseline SDC scheduler (Cong & Zhang formulation, XLS-style objective)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.ir.graph import DataflowGraph
from repro.sdc.constraints import ConstraintSystem
from repro.sdc.delays import critical_path_matrix, node_delays
from repro.sdc.problem import (
    ScheduleProblem,
    add_dependency_constraints,
    add_timing_constraints,
    build_system,
    register_weights,
    users_map,
)
from repro.sdc.solver import solve_lp
from repro.tech.delay_model import OperatorModel

__all__ = [
    "Schedule",
    "SchedulingResult",
    "SdcScheduler",
    "add_dependency_constraints",
    "add_timing_constraints",
    "register_weights",
    "users_map",
]


@dataclass(frozen=True)
class Schedule:
    """A pipeline schedule: every node mapped to a time step (clock cycle).

    Attributes:
        graph: the scheduled dataflow graph.
        clock_period_ps: target clock period used to derive the schedule.
        stages: node id -> stage index (0-based).
        ii: initiation interval -- a new loop iteration issues every ``ii``
            cycles.  Always 1 for feed-forward (DAG) designs; for pipelined
            loops it is the minimum II the recurrence constraints allow.
    """

    graph: DataflowGraph
    clock_period_ps: float
    stages: dict[int, int]
    ii: int = 1

    @property
    def num_stages(self) -> int:
        """Number of pipeline stages (max stage index + 1)."""
        if not self.stages:
            return 0
        return max(self.stages.values()) + 1

    def stage_of(self, node_id: int) -> int:
        """Stage index of a node."""
        return self.stages[node_id]

    def nodes_in_stage(self, stage: int) -> list[int]:
        """Node ids scheduled into ``stage`` (ascending id order)."""
        return sorted(nid for nid, s in self.stages.items() if s == stage)

    def stage_node_map(self) -> dict[int, list[int]]:
        """Mapping from stage index to the node ids in that stage."""
        mapping: dict[int, list[int]] = {}
        for node_id, stage in self.stages.items():
            mapping.setdefault(stage, []).append(node_id)
        return {stage: sorted(nodes) for stage, nodes in sorted(mapping.items())}

    def lifetime(self, node_id: int) -> int:
        """Stage boundaries the node's result must cross to reach its users."""
        users = self.graph.users_of(node_id)
        if not users:
            return 0
        return max(0, max(self.stages[u] for u in set(users)) - self.stages[node_id])


@dataclass
class SchedulingResult:
    """Everything produced by one scheduler invocation.

    Attributes:
        schedule: the resulting schedule.
        delays: isolated per-node delays used for timing constraints.
        delay_matrix: all-pairs critical-path delay matrix (naive estimates).
        index_of: node id -> matrix row/column.
        num_constraints: total difference constraints in the LP.
        runtime_s: wall-clock scheduling time in seconds.
        constraints: the constraint system that was solved.
        problem: the persistent :class:`~repro.sdc.problem.ScheduleProblem`
            built for the graph; the ISDC loop adopts it for all re-solves.
        solve_runtime_s: wall-clock time of constraint build + LP solve alone
            (excludes delay characterisation).
    """

    schedule: Schedule
    delays: dict[int, float]
    delay_matrix: np.ndarray
    index_of: dict[int, int]
    num_constraints: int
    runtime_s: float
    constraints: ConstraintSystem = field(repr=False, default_factory=ConstraintSystem)
    problem: ScheduleProblem | None = field(repr=False, default=None)
    solve_runtime_s: float = 0.0


class SdcScheduler:
    """The original SDC scheduling algorithm used as the paper's baseline.

    Args:
        delay_model: object exposing ``node_delay(node)``; defaults to the
            closed-form :class:`~repro.tech.delay_model.OperatorModel`.
        clock_period_ps: target clock period.
        register_overhead_ps: sequential overhead (clock-to-Q plus setup)
            subtracted from the clock period to obtain the combinational
            timing budget of a stage.  Defaults to the synthetic SKY130
            register figure so reported post-synthesis slack stays
            non-negative by construction.
        pin_sources: pin parameters and constants to cycle 0 (models operands
            arriving with the pipeline's first stage).
        latency_weight: tie-breaking weight pulling operations earlier.
    """

    def __init__(self, delay_model=None, clock_period_ps: float = 2500.0,
                 register_overhead_ps: float | None = None,
                 pin_sources: bool = True, latency_weight: float = 1e-3) -> None:
        self.delay_model = delay_model or OperatorModel()
        self.clock_period_ps = float(clock_period_ps)
        if register_overhead_ps is None:
            register_overhead_ps = _default_register_overhead()
        self.register_overhead_ps = float(register_overhead_ps)
        self.timing_budget_ps = self.clock_period_ps - self.register_overhead_ps
        if self.timing_budget_ps <= 0:
            raise ValueError("clock period does not cover the register overhead")
        self.pin_sources = pin_sources
        self.latency_weight = latency_weight

    def build_constraints(self, graph: DataflowGraph, matrix: np.ndarray,
                          index_of: Mapping[int, int]) -> ConstraintSystem:
        """Build the full constraint system for ``graph``."""
        return build_system(graph, matrix, index_of, self.timing_budget_ps,
                            self.pin_sources)

    def schedule(self, graph: DataflowGraph) -> SchedulingResult:
        """Schedule ``graph`` and return the full :class:`SchedulingResult`."""
        start_time = time.perf_counter()
        delays = node_delays(graph, self.delay_model)
        self._check_clock(graph, delays)
        matrix, index_of = critical_path_matrix(graph, delays)
        solve_start = time.perf_counter()
        problem = ScheduleProblem(graph, matrix, index_of,
                                  self.timing_budget_ps,
                                  latency_weight=self.latency_weight,
                                  pin_sources=self.pin_sources)
        if graph.has_back_edges:
            # Pipelined loop: resolve the minimum feasible II by probing the
            # persistent problem (in-place rebase_ii + warm re-solves).
            from repro.sdc.loops import min_feasible_ii

            ii, solution = min_feasible_ii(problem)
        else:
            ii = 1
            solution = solve_lp(problem.system, problem.register_weights,
                                problem.users_map,
                                latency_weight=self.latency_weight)
        end_time = time.perf_counter()
        schedule = Schedule(graph=graph, clock_period_ps=self.clock_period_ps,
                            stages=solution, ii=ii)
        return SchedulingResult(schedule=schedule, delays=delays,
                                delay_matrix=matrix, index_of=index_of,
                                num_constraints=len(problem.system),
                                runtime_s=end_time - start_time,
                                constraints=problem.system, problem=problem,
                                solve_runtime_s=end_time - solve_start)

    def _check_clock(self, graph: DataflowGraph, delays: dict[int, float]) -> None:
        """Reject clock periods smaller than the largest single-operation delay."""
        worst = max(delays.values(), default=0.0)
        if worst > self.timing_budget_ps:
            slowest = max(delays, key=delays.get)
            raise ValueError(
                f"operation {graph.node(slowest).name} needs {worst:.0f} ps, which "
                f"exceeds the {self.timing_budget_ps:.0f} ps combinational budget of "
                f"the {self.clock_period_ps:.0f} ps clock period; raise the clock "
                f"period (the paper uses 5000 ps for such designs)")


def _default_register_overhead() -> float:
    """Register overhead of the default technology library."""
    from repro.tech.sky130 import sky130_library

    return sky130_library().register_delay_ps
