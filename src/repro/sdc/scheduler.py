"""The baseline SDC scheduler (Cong & Zhang formulation, XLS-style objective)."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.ir.graph import DataflowGraph
from repro.ir.ops import OpKind
from repro.sdc.constraints import ConstraintSystem
from repro.sdc.delays import NOT_CONNECTED, critical_path_matrix, node_delays
from repro.sdc.solver import solve_lp
from repro.tech.delay_model import OperatorModel


@dataclass(frozen=True)
class Schedule:
    """A pipeline schedule: every node mapped to a time step (clock cycle).

    Attributes:
        graph: the scheduled dataflow graph.
        clock_period_ps: target clock period used to derive the schedule.
        stages: node id -> stage index (0-based).
    """

    graph: DataflowGraph
    clock_period_ps: float
    stages: dict[int, int]

    @property
    def num_stages(self) -> int:
        """Number of pipeline stages (max stage index + 1)."""
        if not self.stages:
            return 0
        return max(self.stages.values()) + 1

    def stage_of(self, node_id: int) -> int:
        """Stage index of a node."""
        return self.stages[node_id]

    def nodes_in_stage(self, stage: int) -> list[int]:
        """Node ids scheduled into ``stage`` (ascending id order)."""
        return sorted(nid for nid, s in self.stages.items() if s == stage)

    def stage_node_map(self) -> dict[int, list[int]]:
        """Mapping from stage index to the node ids in that stage."""
        mapping: dict[int, list[int]] = {}
        for node_id, stage in self.stages.items():
            mapping.setdefault(stage, []).append(node_id)
        return {stage: sorted(nodes) for stage, nodes in sorted(mapping.items())}

    def lifetime(self, node_id: int) -> int:
        """Stage boundaries the node's result must cross to reach its users."""
        users = self.graph.users_of(node_id)
        if not users:
            return 0
        return max(0, max(self.stages[u] for u in set(users)) - self.stages[node_id])


@dataclass
class SchedulingResult:
    """Everything produced by one scheduler invocation.

    Attributes:
        schedule: the resulting schedule.
        delays: isolated per-node delays used for timing constraints.
        delay_matrix: all-pairs critical-path delay matrix (naive estimates).
        index_of: node id -> matrix row/column.
        num_constraints: total difference constraints in the LP.
        runtime_s: wall-clock scheduling time in seconds.
    """

    schedule: Schedule
    delays: dict[int, float]
    delay_matrix: np.ndarray
    index_of: dict[int, int]
    num_constraints: int
    runtime_s: float
    constraints: ConstraintSystem = field(repr=False, default_factory=ConstraintSystem)


def register_weights(graph: DataflowGraph) -> dict[int, float]:
    """Objective weight (bit width) of each value that may need registering.

    Constants are excluded: they synthesise to tie cells, never to pipeline
    registers.
    """
    weights: dict[int, float] = {}
    for node in graph.nodes():
        if node.kind is OpKind.CONSTANT:
            continue
        if graph.users_of(node.node_id):
            weights[node.node_id] = float(node.width)
    return weights


def users_map(graph: DataflowGraph) -> dict[int, list[int]]:
    """Users of every node (convenience for the LP objective)."""
    return {node.node_id: graph.users_of(node.node_id) for node in graph.nodes()}


def add_dependency_constraints(system: ConstraintSystem, graph: DataflowGraph) -> None:
    """Add producer-before-consumer constraints for every dataflow edge."""
    for node in graph.nodes():
        system.add_variable(node.node_id)
        for operand in set(node.operands):
            system.add_dependency(operand, node.node_id)


def add_timing_constraints(system: ConstraintSystem, matrix: np.ndarray,
                           index_of: Mapping[int, int],
                           clock_period_ps: float) -> int:
    """Add Eq. 2 timing constraints for every pair whose delay exceeds the clock.

    Returns:
        The number of constraints added.
    """
    order = sorted(index_of, key=index_of.get)
    added = 0
    rows, cols = np.nonzero(matrix > clock_period_ps)
    for row, col in zip(rows.tolist(), cols.tolist()):
        if row == col:
            # A single operation cannot be split across cycles; an
            # over-long operation is a clock-period selection problem,
            # not a schedulable constraint.
            continue
        delay = matrix[row, col]
        if delay == NOT_CONNECTED:
            continue
        min_distance = math.ceil(delay / clock_period_ps) - 1
        if min_distance <= 0:
            continue
        if system.add_timing(order[row], order[col], min_distance):
            added += 1
    return added


class SdcScheduler:
    """The original SDC scheduling algorithm used as the paper's baseline.

    Args:
        delay_model: object exposing ``node_delay(node)``; defaults to the
            closed-form :class:`~repro.tech.delay_model.OperatorModel`.
        clock_period_ps: target clock period.
        register_overhead_ps: sequential overhead (clock-to-Q plus setup)
            subtracted from the clock period to obtain the combinational
            timing budget of a stage.  Defaults to the synthetic SKY130
            register figure so reported post-synthesis slack stays
            non-negative by construction.
        pin_sources: pin parameters and constants to cycle 0 (models operands
            arriving with the pipeline's first stage).
        latency_weight: tie-breaking weight pulling operations earlier.
    """

    def __init__(self, delay_model=None, clock_period_ps: float = 2500.0,
                 register_overhead_ps: float | None = None,
                 pin_sources: bool = True, latency_weight: float = 1e-3) -> None:
        self.delay_model = delay_model or OperatorModel()
        self.clock_period_ps = float(clock_period_ps)
        if register_overhead_ps is None:
            register_overhead_ps = _default_register_overhead()
        self.register_overhead_ps = float(register_overhead_ps)
        self.timing_budget_ps = self.clock_period_ps - self.register_overhead_ps
        if self.timing_budget_ps <= 0:
            raise ValueError("clock period does not cover the register overhead")
        self.pin_sources = pin_sources
        self.latency_weight = latency_weight

    def build_constraints(self, graph: DataflowGraph, matrix: np.ndarray,
                          index_of: Mapping[int, int]) -> ConstraintSystem:
        """Build the full constraint system for ``graph``."""
        system = ConstraintSystem()
        add_dependency_constraints(system, graph)
        if self.pin_sources:
            for node in graph.nodes():
                if node.is_source:
                    system.pin(node.node_id, 0)
        add_timing_constraints(system, matrix, index_of, self.timing_budget_ps)
        return system

    def schedule(self, graph: DataflowGraph) -> SchedulingResult:
        """Schedule ``graph`` and return the full :class:`SchedulingResult`."""
        start_time = time.perf_counter()
        delays = node_delays(graph, self.delay_model)
        self._check_clock(graph, delays)
        matrix, index_of = critical_path_matrix(graph, delays)
        system = self.build_constraints(graph, matrix, index_of)
        solution = solve_lp(system, register_weights(graph), users_map(graph),
                            latency_weight=self.latency_weight)
        runtime = time.perf_counter() - start_time
        schedule = Schedule(graph=graph, clock_period_ps=self.clock_period_ps,
                            stages=solution)
        return SchedulingResult(schedule=schedule, delays=delays,
                                delay_matrix=matrix, index_of=index_of,
                                num_constraints=len(system), runtime_s=runtime,
                                constraints=system)

    def _check_clock(self, graph: DataflowGraph, delays: dict[int, float]) -> None:
        """Reject clock periods smaller than the largest single-operation delay."""
        worst = max(delays.values(), default=0.0)
        if worst > self.timing_budget_ps:
            slowest = max(delays, key=delays.get)
            raise ValueError(
                f"operation {graph.node(slowest).name} needs {worst:.0f} ps, which "
                f"exceeds the {self.timing_budget_ps:.0f} ps combinational budget of "
                f"the {self.clock_period_ps:.0f} ps clock period; raise the clock "
                f"period (the paper uses 5000 ps for such designs)")


def _default_register_overhead() -> float:
    """Register overhead of the default technology library."""
    from repro.tech.sky130 import sky130_library

    return sky130_library().register_delay_ps
