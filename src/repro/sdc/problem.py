"""Persistent, incrementally-updatable SDC scheduling problems.

A :class:`ScheduleProblem` owns everything the LP re-solve of one graph
needs -- the difference-constraint system, the register weights and users
map of the objective, and the assembled sparse LP structure -- and keeps it
alive across ISDC iterations.  Feedback rounds only touch a handful of
delay-matrix entries, so instead of rebuilding the whole problem each
iteration the caller reports the dirty ``(u, v)`` pairs and
:meth:`ScheduleProblem.update_timing` swaps just the affected timing-
constraint bounds in place.  Constraints keep stable row identities
(:meth:`~repro.sdc.constraints.ConstraintSystem.set_timing_bound`), so the
cached LP matrix and repair adjacency stay valid and only the right-hand
side is patched.

Delta updates preserve byte-level parity with a from-scratch rebuild:

* the set of timing pairs is canonical -- a full rebuild enumerates
  ``np.nonzero(matrix > budget)`` in row-major order, so as long as the
  *set* of constrained pairs is unchanged the constraint order (and hence
  the LP row order) is identical;
* patched bounds are computed with the same formula a rebuild would use;
* whenever the pair set would change (a constraint appears or vanishes),
  :meth:`update_timing` refuses and the caller falls back to
  :meth:`rebuild`, which reproduces the from-scratch construction exactly.

The functions :func:`register_weights`, :func:`users_map`,
:func:`add_dependency_constraints` and :func:`add_timing_constraints` live
here (rather than in :mod:`repro.sdc.scheduler`, which re-exports them) so
the solver layer can depend on them without an import cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np
from scipy import sparse

from repro.ir.graph import DataflowGraph
from repro.ir.ops import OpKind
from repro.sdc.constraints import ConstraintSystem
from repro.sdc.delays import NOT_CONNECTED


def register_weights(graph: DataflowGraph) -> dict[int, float]:
    """Objective weight (bit width) of each value that may need registering.

    Constants are excluded: they synthesise to tie cells, never to pipeline
    registers.
    """
    weights: dict[int, float] = {}
    for node in graph.nodes():
        if node.kind is OpKind.CONSTANT:
            continue
        if graph.users_of(node.node_id):
            weights[node.node_id] = float(node.width)
    return weights


def users_map(graph: DataflowGraph) -> dict[int, list[int]]:
    """Users of every node (convenience for the LP objective)."""
    return {node.node_id: graph.users_of(node.node_id) for node in graph.nodes()}


def add_dependency_constraints(system: ConstraintSystem, graph: DataflowGraph) -> None:
    """Add producer-before-consumer constraints for every dataflow edge."""
    for node in graph.nodes():
        system.add_variable(node.node_id)
        for operand in set(node.operands):
            system.add_dependency(operand, node.node_id)


def timing_bound_for(delay: float, clock_period_ps: float) -> int:
    """The difference-constraint bound Eq. 2 derives from a pairwise delay."""
    return -(math.ceil(delay / clock_period_ps) - 1)


def add_timing_constraints(system: ConstraintSystem, matrix: np.ndarray,
                           index_of: Mapping[int, int],
                           clock_period_ps: float) -> int:
    """Add Eq. 2 timing constraints for every pair whose delay exceeds the clock.

    Returns:
        The number of constraints added.
    """
    order = sorted(index_of, key=index_of.get)
    added = 0
    rows, cols = np.nonzero(matrix > clock_period_ps)
    for row, col in zip(rows.tolist(), cols.tolist()):
        if row == col:
            # A single operation cannot be split across cycles; an
            # over-long operation is a clock-period selection problem,
            # not a schedulable constraint.
            continue
        delay = matrix[row, col]
        if delay == NOT_CONNECTED:
            continue
        min_distance = -timing_bound_for(delay, clock_period_ps)
        if min_distance <= 0:
            continue
        if system.add_timing(order[row], order[col], min_distance):
            added += 1
    return added


def add_loop_constraints(system: ConstraintSystem, graph: DataflowGraph,
                         ii: int) -> int:
    """Add the II-scaled recurrence constraint of every loop back-edge.

    For each back-edge ``src -> phi`` at distance ``d`` this is
    ``s_src - s_phi <= II * d - 1``: the value produced in iteration ``i``
    must sit in the phi's loop register before iteration ``i + d`` (which
    starts ``II * d`` cycles later) reads it.

    Returns:
        The number of constraints added.
    """
    added = 0
    for edge in graph.back_edges():
        if system.add_loop(edge.src, edge.phi, edge.distance, ii):
            added += 1
    return added


def build_system(graph: DataflowGraph, matrix: np.ndarray,
                 index_of: Mapping[int, int], timing_budget_ps: float,
                 pin_sources: bool = True, ii: int = 1) -> ConstraintSystem:
    """Build the full constraint system of one graph from a delay matrix.

    The single construction routine shared by the baseline scheduler and
    every :class:`ScheduleProblem` rebuild -- the byte-parity guarantee of
    the incremental solver relies on there being exactly one way to
    enumerate the constraints.  Constraint order is canonical:
    dependencies, source pins, timing pairs (row-major), then loop
    back-edges (by phi id).
    """
    system = ConstraintSystem()
    add_dependency_constraints(system, graph)
    if pin_sources:
        for node in graph.nodes():
            if node.is_source:
                system.pin(node.node_id, 0)
    add_timing_constraints(system, matrix, index_of, timing_budget_ps)
    add_loop_constraints(system, graph, ii)
    return system


@dataclass(frozen=True)
class TimingPack:
    """The timing pairs of one constraint system, packed into arrays.

    Everything here is immutable once built (the *set* of timing pairs only
    changes on a full rebuild), so clones share one pack; the current bound
    of each pair lives in the LP's right-hand side, not in the pack.

    Attributes:
        rows: matrix row index of every pair, in constraint (row-major) order.
        cols: matrix column index of every pair, aligned with ``rows``.
        node_u: node id of every pair's source, aligned with ``rows``.
        node_v: node id of every pair's sink, aligned with ``rows``.
        lp_rows: stable constraint-row index of every pair's bound.
    """

    rows: np.ndarray
    cols: np.ndarray
    node_u: np.ndarray
    node_v: np.ndarray
    lp_rows: np.ndarray


@dataclass
class AssembledLp:
    """The register-minimisation LP of one constraint system, fully assembled.

    Rows ``0 .. num_constraint_rows - 1`` of ``a_ub``/``b_ub`` correspond
    one-to-one (and in order) to the system's difference constraints, so a
    constraint's stable row identity doubles as its right-hand-side index;
    the lifetime-linking rows follow.

    Attributes:
        var_index: schedule variable (node id) -> LP column.
        lifetime_index: lifetime variable (node id) -> LP column.
        num_vars: total LP columns.
        a_ub: sparse ``A_ub`` matrix (``None`` when there are no rows).
        b_ub: dense right-hand side; patched in place by delta updates.
        objective: dense objective vector.
        bounds: per-column ``(lower, upper)`` bounds.
        num_constraint_rows: rows occupied by difference constraints.
    """

    var_index: dict[int, int]
    lifetime_index: dict[int, int]
    num_vars: int
    a_ub: sparse.csr_matrix | None
    b_ub: np.ndarray
    objective: np.ndarray
    bounds: list[tuple[float, float | None]]
    num_constraint_rows: int


def assemble_lp(system: ConstraintSystem,
                register_weights: Mapping[int, float] | None = None,
                users: Mapping[int, list[int]] | None = None,
                latency_weight: float = 1e-3) -> AssembledLp:
    """Assemble the register-lifetime-minimising LP for a constraint system.

    This is the single assembly routine shared by every solve path (one-shot
    :func:`~repro.sdc.solver.solve_lp`, the full re-solve strategy and the
    incremental one), which is what makes cached-and-patched structures
    byte-identical to rebuilt ones.
    """
    register_weights = register_weights or {}
    users = users or {}

    variables = sorted(system.variables)
    var_index = {node_id: i for i, node_id in enumerate(variables)}
    lifetime_nodes = sorted(
        node_id for node_id, weight in register_weights.items()
        if weight > 0 and users.get(node_id) and node_id in var_index)
    lifetime_index = {node_id: len(variables) + i
                      for i, node_id in enumerate(lifetime_nodes)}
    num_vars = len(variables) + len(lifetime_nodes)

    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    bounds_rhs: list[float] = []

    def add_row(entries: list[tuple[int, float]], rhs: float) -> None:
        row = len(bounds_rhs)
        for col, coeff in entries:
            rows.append(row)
            cols.append(col)
            data.append(coeff)
        bounds_rhs.append(rhs)

    for constraint in system:
        add_row([(var_index[constraint.u], 1.0), (var_index[constraint.v], -1.0)],
                float(constraint.bound))
    num_constraint_rows = len(bounds_rhs)

    for node_id in lifetime_nodes:
        for user in set(users[node_id]):
            if user not in var_index:
                continue
            add_row([(var_index[user], 1.0), (var_index[node_id], -1.0),
                     (lifetime_index[node_id], -1.0)], 0.0)

    objective = np.zeros(num_vars)
    for node_id in lifetime_nodes:
        objective[lifetime_index[node_id]] = float(register_weights[node_id])
    for node_id in variables:
        objective[var_index[node_id]] += latency_weight

    variable_bounds: list[tuple[float, float | None]] = []
    for node_id in variables:
        if node_id in system.pinned:
            pin = float(system.pinned[node_id])
            variable_bounds.append((pin, pin))
        else:
            variable_bounds.append((0.0, None))
    variable_bounds.extend([(0.0, None)] * len(lifetime_nodes))

    a_ub = None
    if bounds_rhs:
        a_ub = sparse.coo_matrix((data, (rows, cols)),
                                 shape=(len(bounds_rhs), num_vars)).tocsr()
    return AssembledLp(var_index=var_index, lifetime_index=lifetime_index,
                       num_vars=num_vars, a_ub=a_ub,
                       b_ub=np.array(bounds_rhs), objective=objective,
                       bounds=variable_bounds,
                       num_constraint_rows=num_constraint_rows)


class ScheduleProblem:
    """The persistent scheduling problem of one dataflow graph.

    Built once per graph (typically by the baseline SDC schedule) and then
    kept alive for the whole ISDC loop: the register weights and users map
    are computed exactly once, the constraint system persists with stable
    row identities, and the assembled LP is cached and patched in place by
    :meth:`update_timing`.

    Attributes:
        graph: the scheduled dataflow graph.
        timing_budget_ps: combinational budget of one stage (clock period
            minus register overhead).
        ii: initiation interval the loop (back-edge) constraints are scaled
            by; 1 and irrelevant for feed-forward graphs.
        latency_weight: tie-breaking objective weight.
        pin_sources: whether parameters/constants are pinned to cycle 0.
        register_weights: cached objective weights (computed once).
        users_map: cached consumer map (computed once).
        system: the live constraint system.
        rebuilds: number of from-scratch system rebuilds performed.
        bound_patches: number of timing bounds swapped in place.
    """

    def __init__(self, graph: DataflowGraph, matrix: np.ndarray,
                 index_of: Mapping[int, int], timing_budget_ps: float,
                 latency_weight: float = 1e-3, pin_sources: bool = True,
                 ii: int = 1) -> None:
        self.graph = graph
        self.timing_budget_ps = float(timing_budget_ps)
        self.latency_weight = float(latency_weight)
        self.pin_sources = pin_sources
        self.ii = int(ii)
        self.register_weights = register_weights(graph)
        self.users_map = users_map(graph)
        self.rebuilds = 0
        self.bound_patches = 0
        self.system = ConstraintSystem()
        self._lp: AssembledLp | None = None
        self._repair_adjacency: dict[int, list[int]] | None = None
        self._timing_pack: TimingPack | None = None
        self._build_system(matrix, index_of)

    # ------------------------------------------------------------ construction

    def _build_system(self, matrix: np.ndarray, index_of: Mapping[int, int]
                      ) -> None:
        """(Re)build the constraint system from scratch, invalidating caches."""
        self.system = build_system(self.graph, matrix, index_of,
                                   self.timing_budget_ps, self.pin_sources,
                                   ii=self.ii)
        self._lp = None
        self._repair_adjacency = None
        self._timing_pack = None

    def rebuild(self, matrix: np.ndarray, index_of: Mapping[int, int]) -> None:
        """Rebuild everything from the current delay matrix (full fallback)."""
        self.rebuilds += 1
        self._build_system(matrix, index_of)

    def clone(self) -> "ScheduleProblem":
        """An independent copy sharing only the immutable per-graph state.

        The constraint system and the cached LP are deep-copied (the LP's
        right-hand side is the one array delta updates patch in place;
        everything else in :class:`AssembledLp` is never mutated and is
        shared), so rebasing or patching the clone can never alias state
        back into the donor -- the donor's solved schedule stays
        byte-identical.  ``register_weights``, ``users_map`` and the cached
        repair adjacency are immutable once computed and therefore shared.
        Counters start at the donor's values (they describe cumulative work,
        not identity).
        """
        duplicate = ScheduleProblem.__new__(ScheduleProblem)
        duplicate.graph = self.graph
        duplicate.timing_budget_ps = self.timing_budget_ps
        duplicate.latency_weight = self.latency_weight
        duplicate.pin_sources = self.pin_sources
        duplicate.ii = self.ii
        duplicate.register_weights = self.register_weights
        duplicate.users_map = self.users_map
        duplicate.rebuilds = self.rebuilds
        duplicate.bound_patches = self.bound_patches
        duplicate.system = self.system.clone()
        duplicate._lp = None
        if self._lp is not None:
            lp = self._lp
            duplicate._lp = AssembledLp(
                var_index=lp.var_index, lifetime_index=lp.lifetime_index,
                num_vars=lp.num_vars, a_ub=lp.a_ub, b_ub=lp.b_ub.copy(),
                objective=lp.objective, bounds=lp.bounds,
                num_constraint_rows=lp.num_constraint_rows)
        duplicate._repair_adjacency = self._repair_adjacency
        duplicate._timing_pack = self._timing_pack
        return duplicate

    # ----------------------------------------------------------- delta updates

    def update_timing(self, dirty_pairs: Iterable[tuple[int, int]],
                      matrix: np.ndarray, index_of: Mapping[int, int]) -> bool:
        """Swap the timing bounds of the dirty pairs in place.

        Args:
            dirty_pairs: ``(u, v)`` node-id pairs whose delay-matrix entries
                changed since the last solve.
            matrix: the current delay matrix.
            index_of: node id -> matrix row/column.

        Returns:
            True when the update was applied incrementally.  False when the
            structure changed -- a timing constraint would have to appear or
            vanish, or a dirty node is unknown -- in which case *nothing* is
            modified and the caller must :meth:`rebuild`.
        """
        budget = self.timing_budget_ps
        patches: list[tuple[int, int, int]] = []
        for u, v in sorted(set(dirty_pairs)):
            if u == v:
                continue  # diagonal entries never carry timing constraints
            row_u = index_of.get(u)
            col_v = index_of.get(v)
            if row_u is None or col_v is None:
                return False
            delay = matrix[row_u, col_v]
            needed = delay != NOT_CONNECTED and delay > budget
            existing = self.system.timing_bound(u, v)
            if needed and existing is not None:
                bound = timing_bound_for(delay, budget)
                if bound != existing:
                    patches.append((u, v, bound))
            elif needed != (existing is not None):
                return False
        # Cheap global safety net: the number of constrained pairs a rebuild
        # would produce must match what we are keeping.  Catches delay-matrix
        # mutations that bypassed dirty-pair tracking.
        mask = matrix > budget
        np.fill_diagonal(mask, False)
        if int(np.count_nonzero(mask)) != self.system.num_timing_pairs():
            return False
        for u, v, bound in patches:
            self.system.set_timing_bound(u, v, bound)
            if self._lp is not None:
                row = self.system.timing_row(u, v)
                self._lp.b_ub[row] = float(bound)
            self.bound_patches += 1
        return True

    def rebase_timing(self, matrix: np.ndarray, index_of: Mapping[int, int],
                      new_budget_ps: float) -> bool:
        """Re-target the problem to a new combinational budget in place.

        The clock-period DSE layer probes the *same* design (same graph,
        same delay matrix) at many clock periods; between two periods only
        the timing constraints move -- the set of constrained pairs
        (``matrix > budget``) and each pair's ``ceil(delay / budget) - 1``
        bound.  When the pair set is unchanged the whole re-target is a
        bound patch: only pairs whose ceil bucket actually changed are
        touched, through the same :meth:`~repro.sdc.constraints.ConstraintSystem.set_timing_bound`
        row-identity machinery the ISDC delta updates use, so the cached LP
        survives with its right-hand side patched in place.

        Byte parity with a cold build at ``new_budget_ps`` holds because a
        rebuild enumerates timing pairs as ``np.nonzero(matrix > budget)``
        in row-major order: an unchanged pair set means an unchanged
        constraint order, and patched bounds use the same
        :func:`timing_bound_for` formula a rebuild would.

        Args:
            matrix: the design's delay matrix (unchanged across periods).
            index_of: node id -> matrix row/column.
            new_budget_ps: the new combinational budget (clock period minus
                register overhead).

        Returns:
            True when the re-target was applied as an in-place bound patch
            (including the no-op case of an identical budget).  False when
            the pair set differs -- a timing constraint would appear or
            vanish -- or the system's pairs do not match this matrix; the
            problem is then left *unmodified* and the caller must
            :meth:`rebuild` after updating :attr:`timing_budget_ps`.
        """
        new_budget = float(new_budget_ps)
        if new_budget == self.timing_budget_ps:
            return True
        mask = matrix > new_budget
        np.fill_diagonal(mask, False)
        pack = self.timing_pack(index_of)
        nz_rows, nz_cols = np.nonzero(mask)
        # The pair set (and its row-major order) must be exactly the one the
        # system carries; np.nonzero enumerates row-major and the pack was
        # built in the same order, so plain array equality checks both.
        if len(nz_rows) != len(pack.rows) \
                or not np.array_equal(nz_rows, pack.rows) \
                or not np.array_equal(nz_cols, pack.cols):
            return False
        delays = matrix[pack.rows, pack.cols]
        new_bounds = -(np.ceil(delays / new_budget).astype(np.int64) - 1)
        current = np.array(
            [self.system.constraint_at(row).bound
             for row in pack.lp_rows.tolist()], dtype=np.int64) \
            if self._lp is None \
            else self._lp.b_ub[pack.lp_rows].astype(np.int64)
        changed = np.nonzero(new_bounds != current)[0]
        for position in changed.tolist():
            self.system.set_timing_bound(int(pack.node_u[position]),
                                         int(pack.node_v[position]),
                                         int(new_bounds[position]))
        if self._lp is not None and len(changed):
            self._lp.b_ub[pack.lp_rows[changed]] = \
                new_bounds[changed].astype(float)
        self.bound_patches += int(len(changed))
        self.timing_budget_ps = new_budget
        return True

    def retarget(self, matrix: np.ndarray, index_of: Mapping[int, int],
                 new_budget_ps: float) -> bool:
        """Move the problem to a new budget: bound patch, or full rebuild.

        Returns:
            True when :meth:`rebase_timing` patched in place, False when the
            pair set changed and a full rebuild was performed instead (the
            problem is valid for ``new_budget_ps`` either way).
        """
        if self.rebase_timing(matrix, index_of, new_budget_ps):
            return True
        self.timing_budget_ps = float(new_budget_ps)
        self.rebuild(matrix, index_of)
        return False

    def rebase_ii(self, new_ii: int) -> bool:
        """Re-target every loop constraint to a new initiation interval.

        The minimum-II search probes the *same* problem at many candidate
        IIs; between two IIs only the loop-constraint bounds move
        (``II * distance - 1``) -- the constrained pair set is exactly the
        graph's back-edges at every II, so unlike :meth:`rebase_timing`
        this rebase can never fail and never forces a rebuild.  Bounds are
        swapped through the stable-row machinery
        (:meth:`~repro.sdc.constraints.ConstraintSystem.set_loop_bound`)
        and the cached LP's right-hand side is patched in place, making an
        II probe as cheap as a warm clock-period probe.

        Returns:
            True when any bound actually changed (False for a no-op II).

        Raises:
            ValueError: if ``new_ii`` is not positive.
        """
        new_ii = int(new_ii)
        if new_ii < 1:
            raise ValueError(f"initiation interval must be >= 1, got {new_ii}")
        if new_ii == self.ii:
            return False
        changed = 0
        for src, phi, distance, row in self.system.loop_entries():
            if self.system.set_loop_bound(src, phi, new_ii):
                if self._lp is not None:
                    self._lp.b_ub[row] = float(new_ii * distance - 1)
                changed += 1
        self.ii = new_ii
        self.bound_patches += changed
        return changed > 0

    # ----------------------------------------------------------------- caches

    def timing_pack(self, index_of: Mapping[int, int]) -> TimingPack:
        """The packed timing-pair arrays (cached; shared by clones).

        The set of timing pairs only changes on a rebuild, so the pack is
        immutable for the problem's lifetime and cheap to share; only each
        pair's *bound* moves between rebases, and that lives in the LP's
        right-hand side.
        """
        if self._timing_pack is None:
            entries = self.system.timing_entries()
            self._timing_pack = TimingPack(
                rows=np.array([index_of[u] for u, _, _ in entries],
                              dtype=np.intp),
                cols=np.array([index_of[v] for _, v, _ in entries],
                              dtype=np.intp),
                node_u=np.array([u for u, _, _ in entries], dtype=np.int64),
                node_v=np.array([v for _, v, _ in entries], dtype=np.int64),
                lp_rows=np.array([row for _, _, row in entries],
                                 dtype=np.intp))
        return self._timing_pack

    def lp(self) -> AssembledLp:
        """The assembled LP (cached; bounds are patched in place by deltas)."""
        if self._lp is None:
            self._lp = assemble_lp(self.system, self.register_weights,
                                   self.users_map, self.latency_weight)
        return self._lp

    def repair_adjacency(self) -> dict[int, list[int]]:
        """Constraint row indices grouped by source variable (cached).

        Rows are stable across delta updates, so the adjacency survives bound
        patches; it is invalidated only by a rebuild.
        """
        if self._repair_adjacency is None:
            adjacency: dict[int, list[int]] = {}
            for row, constraint in enumerate(self.system):
                adjacency.setdefault(constraint.u, []).append(row)
            self._repair_adjacency = adjacency
        return self._repair_adjacency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ScheduleProblem({self.graph.name!r}, "
                f"{len(self.system)} constraints, "
                f"{self.system.num_timing_pairs()} timing pairs)")
