"""Pipeline construction and quality metrics from a schedule.

Given a schedule, this module derives the metrics the paper's Table I
reports: number of pipeline stages, pipeline register count, and the
post-synthesis slack of the worst stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.ops import OpKind
from repro.sdc.scheduler import Schedule
from repro.synth.flow import SynthesisFlow
from repro.tech.library import TechLibrary
from repro.tech.sky130 import sky130_library


@dataclass(frozen=True)
class PipelineReport:
    """Quality metrics of one pipelined schedule.

    Attributes:
        design: design name.
        clock_period_ps: target clock period.
        num_stages: pipeline depth.
        num_registers: total pipeline register bits (each value contributes
            its bit width for every stage boundary it crosses).
        stage_delays_ps: combinational delay of every stage.
        slack_ps: clock period minus the worst stage delay minus register
            overhead (negative when timing is violated).
        register_by_stage: register bits crossing each stage boundary
            (boundary ``i`` separates stage ``i`` from stage ``i + 1``).
    """

    design: str
    clock_period_ps: float
    num_stages: int
    num_registers: int
    stage_delays_ps: tuple[float, ...]
    slack_ps: float
    register_by_stage: tuple[int, ...] = field(default=())

    @property
    def worst_stage_delay_ps(self) -> float:
        """Largest combinational stage delay."""
        return max(self.stage_delays_ps) if self.stage_delays_ps else 0.0


def count_pipeline_registers(schedule: Schedule) -> tuple[int, list[int]]:
    """Count pipeline register bits implied by ``schedule``.

    A value produced in stage ``p`` and consumed as late as stage ``q`` needs
    a register of its bit width at every boundary between ``p`` and ``q``.
    Primary outputs are additionally registered once at the pipeline exit
    (XLS-style output flops), so even a single-stage pipeline reports a
    non-zero register count.  Constants never occupy registers.

    Returns:
        ``(total_bits, bits_per_boundary)`` where the per-boundary list has
        one entry per internal boundary (it excludes the output flops).
    """
    graph = schedule.graph
    num_boundaries = max(0, schedule.num_stages - 1)
    per_boundary = [0] * num_boundaries
    total = 0
    for node in graph.nodes():
        if node.kind is OpKind.CONSTANT:
            continue
        users = graph.users_of(node.node_id)
        if not users:
            if not node.is_source:
                total += node.width  # output flop at the pipeline exit
            continue
        produced = schedule.stage_of(node.node_id)
        last_use = max(schedule.stage_of(u) for u in set(users))
        for boundary in range(produced, last_use):
            per_boundary[boundary] += node.width
            total += node.width
    return total, per_boundary


class PipelineAnalyzer:
    """Derives :class:`PipelineReport` objects from schedules.

    Args:
        flow: downstream flow backend used for per-stage STA -- any
            :class:`~repro.synth.backend.FlowBackend` (or an
            :class:`~repro.synth.cache.EvaluationCache` wrapping one); a
            default flow over the synthetic SKY130 library is created when
            omitted.  All stages of a schedule are submitted as one batch, so
            a parallel backend fans them out.
        library: technology library (for register overhead); defaults to the
            flow's library.
    """

    def __init__(self, flow: SynthesisFlow | None = None,
                 library: TechLibrary | None = None) -> None:
        # `flow if ... is not None`: an empty EvaluationCache is falsy (__len__).
        self.flow = flow if flow is not None else SynthesisFlow()
        self.library = (library or getattr(self.flow, "library", None)
                        or sky130_library())

    def stage_delays(self, schedule: Schedule) -> list[float]:
        """Post-synthesis combinational delay of every stage."""
        graph = schedule.graph
        stage_sets: list[list[int]] = []
        occupied: list[int] = []
        for stage in range(schedule.num_stages):
            nodes = [nid for nid in schedule.nodes_in_stage(stage)
                     if not graph.node(nid).is_source]
            if nodes:
                occupied.append(stage)
                stage_sets.append(nodes)
        reports = self.flow.evaluate_batch(
            graph, stage_sets,
            [f"{graph.name}_stage{stage}" for stage in occupied])
        delays = [0.0] * schedule.num_stages
        for stage, report in zip(occupied, reports):
            delays[stage] = report.delay_ps
        return delays

    def report(self, schedule: Schedule) -> PipelineReport:
        """Full pipeline report (stages, registers, post-synthesis slack)."""
        total_registers, per_boundary = count_pipeline_registers(schedule)
        delays = self.stage_delays(schedule)
        worst = max(delays) if delays else 0.0
        slack = schedule.clock_period_ps - worst - self.library.register_delay_ps
        return PipelineReport(
            design=schedule.graph.name,
            clock_period_ps=schedule.clock_period_ps,
            num_stages=schedule.num_stages,
            num_registers=total_registers,
            stage_delays_ps=tuple(delays),
            slack_ps=slack,
            register_by_stage=tuple(per_boundary),
        )
