"""Difference constraints and the SDC constraint system.

All HLS scheduling constraints used here are integer-difference constraints
of the form ``s_u - s_v <= bound`` (paper Eq. 1), which keeps the LP's
constraint matrix totally unimodular and therefore guarantees an integral
optimum (Cong & Zhang, DAC'06).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True)
class DifferenceConstraint:
    """One integer-difference constraint ``s_u - s_v <= bound``.

    Attributes:
        u: node id of the left variable.
        v: node id of the right variable.
        bound: the integer bound.
        kind: constraint category, used for reporting and for selective
            rebuilds ("dependency", "timing", "pin", "user").
    """

    u: int
    v: int
    bound: int
    kind: str = "user"

    def is_satisfied(self, schedule: dict[int, int]) -> bool:
        """True if ``schedule`` satisfies this constraint."""
        return schedule[self.u] - schedule[self.v] <= self.bound


@dataclass
class ConstraintSystem:
    """A collection of difference constraints over node variables.

    Attributes:
        variables: the node ids that appear as variables.
        pinned: variables fixed to a specific time step (e.g. parameters
            pinned to cycle 0).
    """

    variables: set[int] = field(default_factory=set)
    pinned: dict[int, int] = field(default_factory=dict)
    _constraints: list[DifferenceConstraint] = field(default_factory=list)
    _seen: set[tuple[int, int, int]] = field(default_factory=set, repr=False)
    _timing_rows: dict[tuple[int, int], int] = field(default_factory=dict,
                                                     repr=False)
    _loop_rows: dict[tuple[int, int], int] = field(default_factory=dict,
                                                   repr=False)
    _loop_distances: dict[tuple[int, int], int] = field(default_factory=dict,
                                                        repr=False)

    def add_variable(self, node_id: int) -> None:
        """Register a schedule variable."""
        self.variables.add(node_id)

    def pin(self, node_id: int, time_step: int) -> None:
        """Fix a variable to a specific time step."""
        self.add_variable(node_id)
        self.pinned[node_id] = time_step

    def add(self, u: int, v: int, bound: int, kind: str = "user") -> bool:
        """Add ``s_u - s_v <= bound``.

        Duplicate (u, v, bound) triples are ignored; when several bounds exist
        for the same (u, v) pair all are kept (the tightest governs anyway).

        Returns:
            True if the constraint was newly added.
        """
        self.add_variable(u)
        self.add_variable(v)
        key = (u, v, bound)
        if key in self._seen:
            return False
        self._seen.add(key)
        if kind == "timing":
            self._timing_rows[(u, v)] = len(self._constraints)
        self._constraints.append(DifferenceConstraint(u, v, bound, kind))
        return True

    def add_dependency(self, producer: int, consumer: int) -> bool:
        """Require ``consumer`` to be scheduled no earlier than ``producer``."""
        return self.add(producer, consumer, 0, kind="dependency")

    def add_timing(self, source: int, sink: int, min_distance: int) -> bool:
        """Require at least ``min_distance`` cycles between source and sink.

        This is Eq. 2 of the paper: ``s_source - s_sink <= -min_distance``.
        """
        return self.add(source, sink, -min_distance, kind="timing")

    def add_loop(self, src: int, phi: int, distance: int, ii: int) -> bool:
        """Add the loop-carried (recurrence) constraint of one back-edge.

        For a back-edge ``src -> phi`` at iteration distance ``d`` and
        initiation interval ``II``, the carried value must reach the phi's
        loop register before iteration ``i + d`` reads it:
        ``s_src - s_phi <= II * d - 1`` (the ``-1`` is the register
        boundary the value crosses).

        Like timing constraints, loop constraints have stable row
        identities so :meth:`set_loop_bound` can rebase every bound in
        place when the II changes during the minimum-II search.

        Returns:
            True if the constraint was newly added.
        """
        added = self.add(src, phi, ii * distance - 1, kind="loop")
        if added:
            self._loop_rows[(src, phi)] = len(self._constraints) - 1
            self._loop_distances[(src, phi)] = distance
        return added

    def set_loop_bound(self, src: int, phi: int, ii: int) -> bool:
        """Rebase the loop constraint on ``(src, phi)`` to a new II.

        The constraint keeps its row identity; only the bound changes.

        Returns:
            True if the bound actually changed.

        Raises:
            KeyError: if no loop constraint exists for the pair.
        """
        row = self._loop_rows[(src, phi)]
        distance = self._loop_distances[(src, phi)]
        bound = ii * distance - 1
        old = self._constraints[row]
        if old.bound == bound:
            return False
        self._seen.discard((src, phi, old.bound))
        self._seen.add((src, phi, bound))
        self._constraints[row] = DifferenceConstraint(src, phi, bound, "loop")
        return True

    def loop_entries(self) -> list[tuple[int, int, int, int]]:
        """All ``(src, phi, distance, row)`` loop entries in insertion order."""
        return [(src, phi, self._loop_distances[(src, phi)], row)
                for (src, phi), row in self._loop_rows.items()]

    def num_loop_pairs(self) -> int:
        """Number of back-edges currently carrying a loop constraint."""
        return len(self._loop_rows)

    def timing_row(self, u: int, v: int) -> int | None:
        """Stable row index of the timing constraint on ``(u, v)``, if any.

        Row indices are positions in the constraint list and never move once
        assigned: :meth:`set_timing_bound` replaces the constraint in place,
        so cached LP rows and adjacency lists built over row indices stay
        valid across delta updates.
        """
        return self._timing_rows.get((u, v))

    def timing_bound(self, u: int, v: int) -> int | None:
        """Current bound of the timing constraint on ``(u, v)``, if any."""
        row = self._timing_rows.get((u, v))
        if row is None:
            return None
        return self._constraints[row].bound

    def num_timing_pairs(self) -> int:
        """Number of node pairs currently carrying a timing constraint."""
        return len(self._timing_rows)

    def timing_entries(self) -> list[tuple[int, int, int]]:
        """All ``(u, v, row)`` timing entries in insertion (row-major) order.

        Insertion order is the enumeration order of the builder
        (:func:`~repro.sdc.problem.add_timing_constraints` walks
        ``np.nonzero(matrix > budget)`` row-major), which is what lets the
        clock-period rebase pack the pairs into arrays aligned with a fresh
        row-major enumeration.
        """
        return [(u, v, row) for (u, v), row in self._timing_rows.items()]

    def set_timing_bound(self, u: int, v: int, bound: int) -> bool:
        """Replace the bound of the existing timing constraint on ``(u, v)``.

        The constraint keeps its row identity (list position); only the bound
        changes.

        Returns:
            True if the bound actually changed.

        Raises:
            KeyError: if no timing constraint exists for the pair.
        """
        row = self._timing_rows[(u, v)]
        old = self._constraints[row]
        if old.bound == bound:
            return False
        self._seen.discard((u, v, old.bound))
        self._seen.add((u, v, bound))
        self._constraints[row] = DifferenceConstraint(u, v, bound, "timing")
        return True

    def constraint_at(self, row: int) -> DifferenceConstraint:
        """The constraint stored at a given row index."""
        return self._constraints[row]

    def constraints(self, kind: str | None = None) -> list[DifferenceConstraint]:
        """All constraints, optionally filtered by ``kind``."""
        if kind is None:
            return list(self._constraints)
        return [c for c in self._constraints if c.kind == kind]

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[DifferenceConstraint]:
        return iter(self._constraints)

    def violations(self, schedule: dict[int, int]) -> list[DifferenceConstraint]:
        """Constraints violated by ``schedule`` (pins included)."""
        violated = [c for c in self._constraints if not c.is_satisfied(schedule)]
        for node_id, time_step in self.pinned.items():
            if schedule.get(node_id) != time_step:
                violated.append(DifferenceConstraint(node_id, node_id, -1, kind="pin"))
        return violated

    def is_feasible_schedule(self, schedule: dict[int, int]) -> bool:
        """True if ``schedule`` satisfies every constraint and pin."""
        return not self.violations(schedule)

    def clone(self) -> "ConstraintSystem":
        """An independent deep copy of this system.

        The constraint list, seen-set, timing-row map, variables and pins are
        all duplicated, so mutating the clone (``add``, ``set_timing_bound``)
        never touches the original.  The :class:`DifferenceConstraint`
        entries themselves are frozen and therefore shared.
        """
        duplicate = ConstraintSystem(
            variables=set(self.variables),
            pinned=dict(self.pinned),
            _constraints=list(self._constraints),
            _seen=set(self._seen),
            _timing_rows=dict(self._timing_rows),
            _loop_rows=dict(self._loop_rows),
            _loop_distances=dict(self._loop_distances),
        )
        return duplicate

    def merge(self, other: "ConstraintSystem") -> None:
        """Merge another system's variables, pins and constraints into this one."""
        for node_id in other.variables:
            self.add_variable(node_id)
        for node_id, time_step in other.pinned.items():
            self.pin(node_id, time_step)
        for constraint in other:
            self.add(constraint.u, constraint.v, constraint.bound, constraint.kind)


def count_by_kind(constraints: Iterable[DifferenceConstraint]) -> dict[str, int]:
    """Histogram of constraint kinds (reporting helper)."""
    counts: dict[str, int] = {}
    for constraint in constraints:
        counts[constraint.kind] = counts.get(constraint.kind, 0) + 1
    return counts
