"""Minimum-feasible-II search over a persistent scheduling problem.

Modulo scheduling adds one difference constraint per loop back-edge,
``s_src - s_phi <= II * distance - 1``, so for a fixed graph and clock the
feasible region only *grows* with the initiation interval: II feasibility
is monotone.  That makes the minimum II a bracket-and-bisect search over a
single :class:`~repro.sdc.problem.ScheduleProblem` -- each probe is a
:meth:`~repro.sdc.problem.ScheduleProblem.rebase_ii` (an in-place patch of
the loop bounds in the cached LP's right-hand side, never a rebuild)
followed by one warm :func:`~repro.sdc.solver.solve_problem` call.  This is
the same rhs-patch warm-start discipline the clock-period DSE uses for
``rebase_timing``, applied to the II axis.
"""

from __future__ import annotations

from typing import Callable

from repro.sdc.problem import ScheduleProblem
from repro.sdc.solver import SdcInfeasibleError, solve_problem

ProbeCallback = Callable[[int, bool, dict[int, int] | None], None]


def _probe(problem: ScheduleProblem, ii: int,
           on_probe: ProbeCallback | None) -> dict[int, int] | None:
    """Solve the problem rebased at ``ii``; None when infeasible."""
    problem.rebase_ii(ii)
    try:
        stages = solve_problem(problem)
    except SdcInfeasibleError:
        stages = None
    if on_probe is not None:
        on_probe(ii, stages is not None, stages)
    return stages


def min_feasible_ii(problem: ScheduleProblem, max_ii: int | None = None,
                    on_probe: ProbeCallback | None = None
                    ) -> tuple[int, dict[int, int]]:
    """Find the smallest feasible initiation interval of ``problem``.

    Probes II = 1 first (feed-forward graphs and loops whose recurrences
    fit one cycle stop after a single solve), then doubles the candidate
    until feasible and bisects the bracket.  Every probe reuses the same
    problem via :meth:`~repro.sdc.problem.ScheduleProblem.rebase_ii`, so
    the cost per probe is one warm LP solve.

    The search cap defaults to ``len(graph) + 1``: with unit distances the
    recurrence constraint ``s_src - s_phi <= II * d - 1`` is implied by the
    dependency chain once II exceeds the longest path, so any graph that is
    schedulable at all (for the given clock) is schedulable by then -- a
    larger II can only relax the loop constraints further.

    Args:
        problem: the persistent scheduling problem (its graph may or may
            not carry back-edges).
        max_ii: optional explicit search cap (>= 1).
        on_probe: optional callback ``(ii, feasible, stages)`` invoked after
            every probe, in probe order -- the DSE layer records probe
            traces through this.

    Returns:
        ``(ii, stages)`` for the minimum feasible II.  The problem is left
        rebased at that II.

    Raises:
        SdcInfeasibleError: if no II up to the cap is feasible (the clock
            period itself is unschedulable for this graph).
        ValueError: if ``max_ii`` is not positive.
    """
    cap = len(problem.graph) + 1 if max_ii is None else int(max_ii)
    if cap < 1:
        raise ValueError(f"max_ii must be >= 1, got {max_ii}")

    stages = _probe(problem, 1, on_probe)
    if stages is not None:
        return 1, stages

    # Bracket: double until feasible (or the cap says give up).
    low = 1  # known infeasible
    high = 2
    best: dict[int, int] | None = None
    while high <= cap:
        stages = _probe(problem, high, on_probe)
        if stages is not None:
            best = stages
            break
        low = high
        high *= 2
    if best is None:
        if high // 2 < cap:  # cap not yet probed by the doubling sequence
            stages = _probe(problem, cap, on_probe)
            if stages is not None:
                low, high, best = high // 2, cap, stages
        if best is None:
            raise SdcInfeasibleError(
                f"no feasible initiation interval up to {cap} for graph "
                f"{problem.graph.name!r}")

    # Bisect (low infeasible, high feasible with schedule `best`).
    while high - low > 1:
        mid = (low + high) // 2
        stages = _probe(problem, mid, on_probe)
        if stages is not None:
            high, best = mid, stages
        else:
            low = mid
    if problem.ii != high:
        # Leave the problem rebased at the answer (the last probe may have
        # been an infeasible midpoint).
        problem.rebase_ii(high)
    return high, best
