"""Per-node delays and all-pairs combinational critical-path delays.

The SDC timing constraints (paper Eq. 2) need, for every connected node pair
``(u, v)``, the delay of the critical combinational path from ``u`` to ``v``
computed as the sum of individual operation delays along the worst path.
That is exactly the initialisation of the paper's delay matrix ``D[n][n]``
(Alg. 1, lines 1--9); ISDC later lowers entries of this matrix with measured
subgraph delays.

Both the matrix initialisation and the explicit path search delegate to the
shared vectorized kernel (:mod:`repro.kernel`): the matrix is filled level by
level with one gathered ``max``-reduction per level instead of a per-node
Python loop, and path reconstruction uses the kernel's deterministic
smallest-topological-position tie-break (equal-delay paths no longer depend
on set iteration order, i.e. on ``PYTHONHASHSEED``).
"""

from __future__ import annotations

from typing import Mapping, Protocol

import numpy as np

from repro.ir.graph import DataflowGraph
from repro.ir.node import Node
from repro.kernel import (
    NOT_CONNECTED,
    GraphView,
    UNREACHED,
    longest_path_from,
    path_delay as _kernel_path_delay,
    reconstruct_path,
)
from repro.kernel import (
    auto_critical_path_matrix as _auto_critical_path_matrix,
)

__all__ = [
    "NOT_CONNECTED",
    "DelayModelProtocol",
    "node_delays",
    "critical_path_matrix",
    "path_delay",
    "critical_path_between",
]


class DelayModelProtocol(Protocol):
    """Anything that can report the isolated delay of an IR node."""

    def node_delay(self, node: Node) -> float:  # pragma: no cover - protocol
        ...


def node_delays(graph: DataflowGraph, model: DelayModelProtocol) -> dict[int, float]:
    """Isolated delay of every node in ``graph`` according to ``model``."""
    return {node.node_id: float(model.node_delay(node)) for node in graph.nodes()}


def critical_path_matrix(graph: DataflowGraph, delays: Mapping[int, float]
                         ) -> tuple[np.ndarray, dict[int, int]]:
    """All-pairs critical combinational path delays.

    Entry ``[i][j]`` holds the largest sum of node delays over any directed
    path from node ``i`` to node ``j`` (both endpoint delays included);
    the diagonal holds individual node delays; unconnected pairs hold
    :data:`NOT_CONNECTED`.

    Routed through the kernel's dense/sparse dispatcher: large, sparsely
    connected graphs are swept over connected pairs only (see
    :class:`~repro.kernel.KernelConfig` and the ``REPRO_KERNEL_*``
    environment switches).  Both paths produce bit-identical matrices.

    Args:
        graph: the dataflow graph.
        delays: isolated delay of every node id.

    Returns:
        ``(matrix, index_of)`` where ``index_of`` maps node id to row/column
        (the kernel's topological position).
    """
    view = GraphView.from_dataflow(graph)
    matrix, _sparse = _auto_critical_path_matrix(view,
                                                 view.delay_vector(delays))
    return matrix, dict(view.index_of)


def path_delay(graph: DataflowGraph, delays: Mapping[int, float],
               path: list[int]) -> float:
    """Sum of node delays along an explicit path (validation helper).

    Thin wrapper over :func:`repro.kernel.path_delay`, the single shared
    implementation also backing the netlist-level helper
    (:meth:`repro.netlist.sta.StaticTimingAnalysis.path_delay`).
    """
    return _kernel_path_delay(delays, path)


def critical_path_between(graph: DataflowGraph, delays: Mapping[int, float],
                          source: int, sink: int) -> tuple[float, list[int]]:
    """Critical path delay and one realising path from ``source`` to ``sink``.

    Ties between equal-delay paths are broken deterministically toward the
    predecessor with the smallest topological position (the result of
    relaxing users in sorted order), so the reconstructed path is independent
    of ``PYTHONHASHSEED``.

    Returns ``(NOT_CONNECTED, [])`` if ``sink`` is unreachable.
    """
    view = GraphView.from_dataflow(graph)
    values, parents = longest_path_from(view, view.delay_vector(delays),
                                        view.index_of[source])
    sink_index = view.index_of[sink]
    if values[sink_index] == UNREACHED:
        return NOT_CONNECTED, []
    dense = reconstruct_path(parents, view.index_of[source], sink_index)
    return float(values[sink_index]), view.ids_of(dense)
