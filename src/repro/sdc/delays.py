"""Per-node delays and all-pairs combinational critical-path delays.

The SDC timing constraints (paper Eq. 2) need, for every connected node pair
``(u, v)``, the delay of the critical combinational path from ``u`` to ``v``
computed as the sum of individual operation delays along the worst path.
That is exactly the initialisation of the paper's delay matrix ``D[n][n]``
(Alg. 1, lines 1--9); ISDC later lowers entries of this matrix with measured
subgraph delays.
"""

from __future__ import annotations

from typing import Mapping, Protocol

import numpy as np

from repro.ir.analysis import topological_order
from repro.ir.graph import DataflowGraph
from repro.ir.node import Node

#: Sentinel stored in the delay matrix for unconnected node pairs.
NOT_CONNECTED = -1.0


class DelayModelProtocol(Protocol):
    """Anything that can report the isolated delay of an IR node."""

    def node_delay(self, node: Node) -> float:  # pragma: no cover - protocol
        ...


def node_delays(graph: DataflowGraph, model: DelayModelProtocol) -> dict[int, float]:
    """Isolated delay of every node in ``graph`` according to ``model``."""
    return {node.node_id: float(model.node_delay(node)) for node in graph.nodes()}


def critical_path_matrix(graph: DataflowGraph, delays: Mapping[int, float]
                         ) -> tuple[np.ndarray, dict[int, int]]:
    """All-pairs critical combinational path delays.

    Entry ``[i][j]`` holds the largest sum of node delays over any directed
    path from node ``i`` to node ``j`` (both endpoint delays included);
    the diagonal holds individual node delays; unconnected pairs hold
    :data:`NOT_CONNECTED`.

    Args:
        graph: the dataflow graph.
        delays: isolated delay of every node id.

    Returns:
        ``(matrix, index_of)`` where ``index_of`` maps node id to row/column.
    """
    order = topological_order(graph)
    index_of = {node_id: index for index, node_id in enumerate(order)}
    size = len(order)
    matrix = np.full((size, size), NOT_CONNECTED, dtype=float)

    for node_id in order:
        column = index_of[node_id]
        delay = float(delays[node_id])
        operand_columns = sorted({index_of[o] for o in graph.operands_of(node_id)})
        if operand_columns:
            incoming = matrix[:, operand_columns]
            connected = incoming != NOT_CONNECTED
            candidates = np.where(connected, incoming + delay, NOT_CONNECTED)
            matrix[:, column] = np.maximum(matrix[:, column], candidates.max(axis=1))
        matrix[column, column] = delay
    return matrix, index_of


def path_delay(graph: DataflowGraph, delays: Mapping[int, float],
               path: list[int]) -> float:
    """Sum of node delays along an explicit path (validation helper)."""
    return sum(float(delays[node_id]) for node_id in path)


def critical_path_between(graph: DataflowGraph, delays: Mapping[int, float],
                          source: int, sink: int) -> tuple[float, list[int]]:
    """Critical path delay and one realising path from ``source`` to ``sink``.

    Returns ``(NOT_CONNECTED, [])`` if ``sink`` is unreachable.
    """
    best: dict[int, float] = {source: float(delays[source])}
    parent: dict[int, int] = {}
    for node_id in topological_order(graph):
        if node_id not in best:
            continue
        for user in set(graph.users_of(node_id)):
            candidate = best[node_id] + float(delays[user])
            if candidate > best.get(user, float("-inf")):
                best[user] = candidate
                parent[user] = node_id
    if sink not in best:
        return NOT_CONNECTED, []
    path = [sink]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return best[sink], path
