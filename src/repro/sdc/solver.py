"""Solvers for SDC constraint systems.

Three solution paths are provided:

* :func:`solve_asap` / :func:`solve_alap` -- pure-Python least/greatest
  fixpoint propagation over the difference constraints (Bellman-Ford style).
  These need no LP solver and are used for feasibility checks, bounds and as
  a repair step after LP rounding.
* :func:`solve_lp` -- the register-lifetime-minimising linear program (the
  objective XLS's SDC scheduler uses), solved with scipy's HiGHS backend.
  The constraint matrix is totally unimodular, so the LP optimum is integral;
  rounding plus a fixpoint repair guards against floating-point noise.
* the **re-solve strategies** :class:`FullSolver` and
  :class:`IncrementalSolver` -- one interface
  (:meth:`ScheduleSolver.solve`) over a persistent
  :class:`~repro.sdc.problem.ScheduleProblem`, used by the ISDC loop.  The
  full strategy reproduces the historical behaviour (rebuild the constraint
  system and LP from the delay matrix on every call); the incremental one
  patches only the dirty timing bounds of the cached LP, warm-starts the
  rounding repair, and falls back to a full rebuild when the constraint
  structure changes.  Both yield byte-identical schedules: the LP input
  arrays are identical either way (see :mod:`repro.sdc.problem`), and the
  repair fixpoint is unique regardless of relaxation order.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Mapping, Protocol

import numpy as np
from scipy.optimize import linprog

from repro.sdc.constraints import ConstraintSystem
from repro.sdc.problem import AssembledLp, ScheduleProblem, assemble_lp


class SdcInfeasibleError(Exception):
    """Raised when the SDC constraint system has no solution."""


def _propagate_lower_bounds(system: ConstraintSystem,
                            start: dict[int, int]) -> dict[int, int]:
    """Least fixpoint of the constraints above the given starting values.

    Every constraint ``s_u - s_v <= b`` is read as ``s_v >= s_u - b``; values
    are raised until all constraints hold.  Pinned variables may not move.

    Divergence is detected per variable: each relaxation records the length
    of the chain of constraints that produced the new value, and a chain
    longer than ``|V|`` must revisit some variable at a strictly larger
    value -- i.e. traverse a positive cycle -- because in a cycle-free system
    every improving chain is simple.  This keeps legitimately large systems
    (many variables, large bounds) out of the failure path that a global
    update budget would conflate with real divergence.

    Raises:
        SdcInfeasibleError: if a pinned variable would have to be raised or
            a positive cycle is detected (the error names the variable).
    """
    by_source: dict[int, list] = defaultdict(list)
    for constraint in system:
        by_source[constraint.u].append(constraint)
    return _relax_to_fixpoint(system, dict(start), by_source.__getitem__,
                              deque(start))


def _relax_to_fixpoint(system: ConstraintSystem, values: dict[int, int],
                       outgoing, queue: deque[int]) -> dict[int, int]:
    """Shared relaxation core of the cold and warm-started propagation.

    Args:
        system: the constraint system (pins and variable count).
        values: starting values, raised in place.
        outgoing: callable mapping a variable to its outgoing constraints.
        queue: initial worklist of variables to relax from.

    The least fixpoint above the starting values is unique (the feasible
    region of difference constraints is closed under pointwise minimum), so
    any seeding that covers every violated constraint yields the same result.
    """
    max_chain = len(system.variables)
    chain: dict[int, int] = defaultdict(int)
    while queue:
        u = queue.popleft()
        for constraint in outgoing(u):
            required = values[u] - constraint.bound
            if values[constraint.v] < required:
                if constraint.v in system.pinned:
                    raise SdcInfeasibleError(
                        f"pinned variable {constraint.v} violates "
                        f"s_{constraint.u} - s_{constraint.v} <= {constraint.bound}")
                values[constraint.v] = required
                chain[constraint.v] = chain[u] + 1
                if chain[constraint.v] > max_chain:
                    raise SdcInfeasibleError(
                        f"constraint propagation diverged at variable "
                        f"s_{constraint.v}: its value was derived through a "
                        f"chain of more than {max_chain} constraints, which "
                        f"implies a positive cycle through "
                        f"s_{constraint.u} - s_{constraint.v} <= "
                        f"{constraint.bound}")
                queue.append(constraint.v)
    return values


def _repair_with_adjacency(system: ConstraintSystem, start: dict[int, int],
                           adjacency: dict[int, list[int]]) -> dict[int, int]:
    """Warm-started fixpoint repair over cached row adjacency.

    Instead of seeding the worklist with every variable, one sweep finds the
    constraints the starting values violate and seeds only their sources --
    when the LP rounding is already feasible (the common case once the ISDC
    loop converges towards a schedule), the repair is a single O(m) check
    with zero relaxations.  The fixpoint reached is identical to the cold
    propagation's (see :func:`_relax_to_fixpoint`).
    """
    violated_sources: list[int] = []
    seen: set[int] = set()
    for constraint in system:
        if start[constraint.u] - constraint.bound > start[constraint.v]:
            if constraint.u not in seen:
                seen.add(constraint.u)
                violated_sources.append(constraint.u)
    if not violated_sources:
        return start

    def outgoing(u: int):
        return [system.constraint_at(row) for row in adjacency.get(u, ())]

    return _relax_to_fixpoint(system, dict(start), outgoing,
                              deque(violated_sources))


def solve_asap(system: ConstraintSystem) -> dict[int, int]:
    """Earliest feasible schedule (every variable as small as possible)."""
    start = {v: 0 for v in system.variables}
    start.update(system.pinned)
    return _propagate_lower_bounds(system, start)


def solve_alap(system: ConstraintSystem, latency: int) -> dict[int, int]:
    """Latest feasible schedule not exceeding ``latency``.

    Args:
        system: the constraint system.
        latency: maximum allowed time step.

    Raises:
        SdcInfeasibleError: if no schedule fits within ``latency``.
    """
    # Greatest fixpoint by negating the problem: t = latency - s turns every
    # constraint s_u - s_v <= b into t_v - t_u <= b, and maximising s into
    # minimising t.
    mirrored = ConstraintSystem()
    for variable in system.variables:
        mirrored.add_variable(variable)
    for node_id, pin in system.pinned.items():
        mirrored.pin(node_id, latency - pin)
    for constraint in system:
        mirrored.add(constraint.v, constraint.u, constraint.bound, constraint.kind)
    mirrored_solution = solve_asap(mirrored)
    solution = {v: latency - t for v, t in mirrored_solution.items()}
    if any(value < 0 for value in solution.values()):
        raise SdcInfeasibleError(f"latency {latency} is too small for the system")
    return solution


def _solve_assembled(lp: AssembledLp) -> np.ndarray:
    """Run HiGHS on an assembled LP and return the raw solution vector."""
    if lp.a_ub is not None:
        result = linprog(lp.objective, A_ub=lp.a_ub, b_ub=lp.b_ub,
                         bounds=lp.bounds, method="highs")
    else:
        result = linprog(lp.objective, bounds=lp.bounds, method="highs")
    if not result.success:
        raise SdcInfeasibleError(f"LP solve failed: {result.message}")
    return result.x


def _round_solution(system: ConstraintSystem, lp: AssembledLp,
                    x: np.ndarray) -> dict[int, int]:
    """Round the LP solution to integers and re-impose the pins."""
    rounded = {node_id: int(round(x[index]))
               for node_id, index in lp.var_index.items()}
    for node_id, pin in system.pinned.items():
        rounded[node_id] = pin
    return rounded


def solve_lp(system: ConstraintSystem,
             register_weights: Mapping[int, float] | None = None,
             users: Mapping[int, list[int]] | None = None,
             latency_weight: float = 1e-3) -> dict[int, int]:
    """Solve the SDC LP minimising weighted register lifetimes.

    The objective is ``sum_v w_v * L_v + latency_weight * sum_i s_i`` where
    ``L_v >= s_u - s_v`` for every user ``u`` of value ``v`` -- i.e. the
    number of stage boundaries the value must cross, weighted by its bit
    width.  This is the standard register-minimisation objective of SDC
    pipeline scheduling.

    Args:
        system: difference constraints plus pins.
        register_weights: weight (bit width) per producing node id; nodes
            absent or with zero weight get no lifetime variable.
        users: consumer node ids per producing node id.
        latency_weight: small tie-breaking weight pulling operations earlier.

    Returns:
        Integral schedule mapping node id to time step.

    Raises:
        SdcInfeasibleError: if the LP (or the rounding repair) is infeasible.
    """
    lp = assemble_lp(system, register_weights, users, latency_weight)
    rounded = _round_solution(system, lp, _solve_assembled(lp))
    repaired = _propagate_lower_bounds(system, rounded)
    if not system.is_feasible_schedule(repaired):
        raise SdcInfeasibleError("rounded LP solution could not be repaired")
    return repaired


def solve_problem(problem: ScheduleProblem) -> dict[int, int]:
    """Solve a persistent problem on its cached (or freshly assembled) LP.

    This is the one solve path shared by the incremental ISDC strategy and
    the DSE warm-start engine: the problem's cached LP (bounds possibly
    patched in place by delta updates or a clock-period rebase) is solved
    with HiGHS, the integral rounding is repaired over the cached row
    adjacency, and the result is checked feasible.  Because
    :func:`~repro.sdc.problem.assemble_lp` is deterministic in the system,
    a problem whose patched arrays equal a freshly built problem's arrays
    produces a byte-identical schedule.

    Raises:
        SdcInfeasibleError: if the LP (or the rounding repair) is infeasible.
    """
    lp = problem.lp()
    rounded = _round_solution(problem.system, lp, _solve_assembled(lp))
    repaired = _repair_with_adjacency(problem.system, rounded,
                                      problem.repair_adjacency())
    if not problem.system.is_feasible_schedule(repaired):
        raise SdcInfeasibleError("rounded LP solution could not be repaired")
    return repaired


# --------------------------------------------------------------------------
# Re-solve strategies over a persistent ScheduleProblem
# --------------------------------------------------------------------------


class ScheduleSolver(Protocol):
    """One re-solve of a persistent scheduling problem.

    ``solve`` receives the problem, the current delay matrix (with its node
    index) and the set of matrix entries dirtied since the previous solve,
    and returns the integral schedule.  Implementations are free to ignore
    the dirty set (the full strategy does).
    """

    name: str

    def solve(self, problem: ScheduleProblem, matrix: np.ndarray,
              index_of: Mapping[int, int],
              dirty_pairs: set[tuple[int, int]] | None = None
              ) -> dict[int, int]:  # pragma: no cover - protocol
        ...


class FullSolver:
    """Rebuild the constraint system and LP from scratch on every call.

    This is the historical behaviour of the ISDC loop's re-schedule step and
    the reference the incremental strategy is held byte-identical to.
    """

    name = "full"

    def solve(self, problem: ScheduleProblem, matrix: np.ndarray,
              index_of: Mapping[int, int],
              dirty_pairs: set[tuple[int, int]] | None = None
              ) -> dict[int, int]:
        problem.rebuild(matrix, index_of)
        return solve_lp(problem.system, problem.register_weights,
                        problem.users_map, problem.latency_weight)


class IncrementalSolver:
    """Patch the cached LP in place and warm-start the rounding repair.

    Per call, the strategy asks the problem to swap the dirty timing bounds
    into the cached LP's right-hand side
    (:meth:`~repro.sdc.problem.ScheduleProblem.update_timing`); if the
    constraint structure changed instead, it falls back to a full rebuild.
    The LP is then solved on the cached (or freshly rebuilt) arrays, and the
    integer rounding is repaired with a worklist seeded only from violated
    constraints over the problem's cached row adjacency
    (:func:`_repair_with_adjacency`), keeping the previous schedule's
    fixpoint machinery warm across iterations.

    Attributes:
        incremental_solves: calls served by in-place bound patching.
        fallback_solves: calls that required a structural rebuild.
    """

    name = "incremental"

    def __init__(self) -> None:
        self.incremental_solves = 0
        self.fallback_solves = 0

    def solve(self, problem: ScheduleProblem, matrix: np.ndarray,
              index_of: Mapping[int, int],
              dirty_pairs: set[tuple[int, int]] | None = None
              ) -> dict[int, int]:
        if dirty_pairs is None or not problem.update_timing(dirty_pairs,
                                                            matrix, index_of):
            problem.rebuild(matrix, index_of)
            self.fallback_solves += 1
        else:
            self.incremental_solves += 1
        return solve_problem(problem)


SOLVERS = {
    "full": FullSolver,
    "incremental": IncrementalSolver,
}


def create_solver(name: str) -> ScheduleSolver:
    """Construct a re-solve strategy by registry name.

    Raises:
        ValueError: for an unknown strategy name.
    """
    try:
        factory = SOLVERS[name]
    except KeyError:
        known = ", ".join(sorted(SOLVERS))
        raise ValueError(f"unknown solver {name!r}; expected one of {known}")
    return factory()
