"""Solvers for SDC constraint systems.

Two solution paths are provided:

* :func:`solve_asap` / :func:`solve_alap` -- pure-Python least/greatest
  fixpoint propagation over the difference constraints (Bellman-Ford style).
  These need no LP solver and are used for feasibility checks, bounds and as
  a repair step after LP rounding.
* :func:`solve_lp` -- the register-lifetime-minimising linear program (the
  objective XLS's SDC scheduler uses), solved with scipy's HiGHS backend.
  The constraint matrix is totally unimodular, so the LP optimum is integral;
  rounding plus a fixpoint repair guards against floating-point noise.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Mapping

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.sdc.constraints import ConstraintSystem


class SdcInfeasibleError(Exception):
    """Raised when the SDC constraint system has no solution."""


def _propagate_lower_bounds(system: ConstraintSystem,
                            start: dict[int, int]) -> dict[int, int]:
    """Least fixpoint of the constraints above the given starting values.

    Every constraint ``s_u - s_v <= b`` is read as ``s_v >= s_u - b``; values
    are raised until all constraints hold.  Pinned variables may not move.

    Raises:
        SdcInfeasibleError: if a pinned variable would have to be raised or
            the system diverges (positive cycle).
    """
    values = dict(start)
    by_source: dict[int, list] = defaultdict(list)
    for constraint in system:
        by_source[constraint.u].append(constraint)

    queue: deque[int] = deque(values)
    passes: dict[int, int] = defaultdict(int)
    limit = max(4, len(system.variables)) * max(4, len(system) + 1)
    total_updates = 0
    while queue:
        u = queue.popleft()
        for constraint in by_source[u]:
            required = values[u] - constraint.bound
            if values[constraint.v] < required:
                if constraint.v in system.pinned:
                    raise SdcInfeasibleError(
                        f"pinned variable {constraint.v} violates "
                        f"s_{constraint.u} - s_{constraint.v} <= {constraint.bound}")
                values[constraint.v] = required
                passes[constraint.v] += 1
                total_updates += 1
                if total_updates > limit:
                    raise SdcInfeasibleError("constraint propagation diverged "
                                             "(positive cycle in SDC system)")
                queue.append(constraint.v)
    return values


def solve_asap(system: ConstraintSystem) -> dict[int, int]:
    """Earliest feasible schedule (every variable as small as possible)."""
    start = {v: 0 for v in system.variables}
    start.update(system.pinned)
    return _propagate_lower_bounds(system, start)


def solve_alap(system: ConstraintSystem, latency: int) -> dict[int, int]:
    """Latest feasible schedule not exceeding ``latency``.

    Args:
        system: the constraint system.
        latency: maximum allowed time step.

    Raises:
        SdcInfeasibleError: if no schedule fits within ``latency``.
    """
    # Greatest fixpoint by negating the problem: t = latency - s turns every
    # constraint s_u - s_v <= b into t_v - t_u <= b, and maximising s into
    # minimising t.
    mirrored = ConstraintSystem()
    for variable in system.variables:
        mirrored.add_variable(variable)
    for node_id, pin in system.pinned.items():
        mirrored.pin(node_id, latency - pin)
    for constraint in system:
        mirrored.add(constraint.v, constraint.u, constraint.bound, constraint.kind)
    mirrored_solution = solve_asap(mirrored)
    solution = {v: latency - t for v, t in mirrored_solution.items()}
    if any(value < 0 for value in solution.values()):
        raise SdcInfeasibleError(f"latency {latency} is too small for the system")
    return solution


def solve_lp(system: ConstraintSystem,
             register_weights: Mapping[int, float] | None = None,
             users: Mapping[int, list[int]] | None = None,
             latency_weight: float = 1e-3) -> dict[int, int]:
    """Solve the SDC LP minimising weighted register lifetimes.

    The objective is ``sum_v w_v * L_v + latency_weight * sum_i s_i`` where
    ``L_v >= s_u - s_v`` for every user ``u`` of value ``v`` -- i.e. the
    number of stage boundaries the value must cross, weighted by its bit
    width.  This is the standard register-minimisation objective of SDC
    pipeline scheduling.

    Args:
        system: difference constraints plus pins.
        register_weights: weight (bit width) per producing node id; nodes
            absent or with zero weight get no lifetime variable.
        users: consumer node ids per producing node id.
        latency_weight: small tie-breaking weight pulling operations earlier.

    Returns:
        Integral schedule mapping node id to time step.

    Raises:
        SdcInfeasibleError: if the LP (or the rounding repair) is infeasible.
    """
    register_weights = register_weights or {}
    users = users or {}

    variables = sorted(system.variables)
    var_index = {node_id: i for i, node_id in enumerate(variables)}
    lifetime_nodes = sorted(
        node_id for node_id, weight in register_weights.items()
        if weight > 0 and users.get(node_id) and node_id in var_index)
    lifetime_index = {node_id: len(variables) + i
                      for i, node_id in enumerate(lifetime_nodes)}
    num_vars = len(variables) + len(lifetime_nodes)

    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    bounds_rhs: list[float] = []

    def add_row(entries: list[tuple[int, float]], rhs: float) -> None:
        row = len(bounds_rhs)
        for col, coeff in entries:
            rows.append(row)
            cols.append(col)
            data.append(coeff)
        bounds_rhs.append(rhs)

    for constraint in system:
        add_row([(var_index[constraint.u], 1.0), (var_index[constraint.v], -1.0)],
                float(constraint.bound))

    for node_id in lifetime_nodes:
        for user in set(users[node_id]):
            if user not in var_index:
                continue
            add_row([(var_index[user], 1.0), (var_index[node_id], -1.0),
                     (lifetime_index[node_id], -1.0)], 0.0)

    objective = np.zeros(num_vars)
    for node_id in lifetime_nodes:
        objective[lifetime_index[node_id]] = float(register_weights[node_id])
    for node_id in variables:
        objective[var_index[node_id]] += latency_weight

    variable_bounds: list[tuple[float, float | None]] = []
    for node_id in variables:
        if node_id in system.pinned:
            pin = float(system.pinned[node_id])
            variable_bounds.append((pin, pin))
        else:
            variable_bounds.append((0.0, None))
    variable_bounds.extend([(0.0, None)] * len(lifetime_nodes))

    if bounds_rhs:
        a_ub = sparse.coo_matrix((data, (rows, cols)),
                                 shape=(len(bounds_rhs), num_vars))
        result = linprog(objective, A_ub=a_ub.tocsr(), b_ub=np.array(bounds_rhs),
                         bounds=variable_bounds, method="highs")
    else:
        result = linprog(objective, bounds=variable_bounds, method="highs")

    if not result.success:
        raise SdcInfeasibleError(f"LP solve failed: {result.message}")

    rounded = {node_id: int(round(result.x[var_index[node_id]]))
               for node_id in variables}
    for node_id, pin in system.pinned.items():
        rounded[node_id] = pin
    repaired = _propagate_lower_bounds(system, rounded)
    if not system.is_feasible_schedule(repaired):
        raise SdcInfeasibleError("rounded LP solution could not be repaired")
    return repaired
