"""The unified content-addressed artifact store.

One store module owns every byte the reproduction persists.  The three
formerly separate layers -- the campaign run store, the evaluation cache's
disk JSONL and the runner ``--json`` payload archive -- are all views over
one append-only JSONL file of ``(kind, key, schema, body)`` record
envelopes keyed by content hash (campaign job id, subgraph structural
fingerprint x backend signature, payload digest, DSE probe key).

* :mod:`repro.store.record` -- the envelope and the content-key scheme;
* :mod:`repro.store.jsonl` -- crash-safe O_APPEND writes and the
  torn-trailing-line-tolerant parser (shared durability semantics);
* :mod:`repro.store.store` -- :class:`ArtifactStore`: last-wins key
  lookup, offline compaction (atomic rewrite-and-rename), size/age GC,
  and per-worker shard :meth:`~ArtifactStore.merge` for distributed
  executors;
* :mod:`repro.store.migrate` -- legacy-format detection and migration;
* :mod:`repro.store.cli` -- the ``runner store`` subcommand
  (``ls`` / ``verify`` / ``compact`` / ``gc`` / ``migrate``).

See ``docs/file-formats.md`` for the on-disk format and the migration
table.
"""

from repro.store.jsonl import (append_line, append_lines, parse_jsonl_tail,
                               truncate_torn_tail)
from repro.store.lock import FileLock, LockTimeoutError
from repro.store.migrate import (CAMPAIGN_BODY_SCHEMA, SYNTH_EVAL_BODY_SCHEMA,
                                 campaign_header_record, campaign_job_record,
                                 migrate_file, migrate_records, payload_key,
                                 payload_record, sniff_format, synth_eval_key)
from repro.store.record import (KEY_BYTES, STORE_KINDS, StoreRecord,
                                canonical_json, content_key, is_store_record)
from repro.store.store import ArtifactStore, GcPolicy, StoreReport

__all__ = [
    "ArtifactStore",
    "CAMPAIGN_BODY_SCHEMA",
    "FileLock",
    "GcPolicy",
    "LockTimeoutError",
    "KEY_BYTES",
    "STORE_KINDS",
    "SYNTH_EVAL_BODY_SCHEMA",
    "StoreRecord",
    "StoreReport",
    "append_line",
    "append_lines",
    "campaign_header_record",
    "campaign_job_record",
    "canonical_json",
    "content_key",
    "is_store_record",
    "migrate_file",
    "migrate_records",
    "parse_jsonl_tail",
    "payload_key",
    "payload_record",
    "sniff_format",
    "synth_eval_key",
    "truncate_torn_tail",
]
