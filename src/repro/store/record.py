"""The unified store record envelope and its content-addressed key space.

Every artefact the reproduction persists -- campaign checkpoints, synthesis
evaluations, experiment payloads, DSE probes -- is one JSON record with the
same four-field envelope::

    {"kind": "<kind>", "key": "<content hash>", "schema": N, "body": {...}}

``kind`` names the record family (:data:`STORE_KINDS`), ``key`` is the
content hash the record is addressed by (a campaign job id, a subgraph
structural fingerprint paired with the backend signature, a payload digest,
or a DSE probe key), ``schema`` versions the *body* of that kind, and
``body`` carries the artefact itself.  An optional fifth field ``t`` (epoch
seconds) may ride on the envelope for age-based garbage collection; it is
never part of the record's identity and deterministic consumers ignore it.

Keys are produced by :func:`content_key`: the first 32 hex characters of the
SHA-256 of the canonical JSON of the identifying payload -- the same scheme
campaign job ids have always used, so every key space is stable across
processes, machines and ``PYTHONHASHSEED`` values.

    >>> content_key({"design": "rrot", "config": {}})  # doctest: +ELLIPSIS
    '...'
    >>> len(content_key({"a": 1})) == KEY_BYTES * 2
    True
    >>> record = StoreRecord(kind="payload", key=content_key({"x": 1}),
    ...                      schema=1, body={"x": 1})
    >>> StoreRecord.from_dict(record.to_dict()) == record
    True
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

#: Record families the store knows about.  The store itself is
#: kind-agnostic (any string is accepted); this tuple documents the kinds
#: the rest of the system reads and writes.
STORE_KINDS = (
    "campaign-header",  # one per campaign: spec + fingerprint (key = fingerprint)
    "campaign-job",     # one per completed job (key = content-addressed job id)
    "synth-eval",       # one per synthesised subgraph (key = fingerprint x backend)
    "payload",          # one per runner --json payload (key = payload digest)
    "dse-probe",        # one per DSE probe outcome (key = probe key)
    "service-result",   # one per served scheduling request (key = request key)
)

#: Bytes of SHA-256 kept in a content key (hex length is twice this).
KEY_BYTES = 16


def canonical_json(payload: Any) -> str:
    """The canonical JSON form content keys are computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_key(payload: Any) -> str:
    """Content-addressed key of a JSON-serialisable payload.

    The first ``KEY_BYTES`` bytes (hex) of the SHA-256 of the canonical
    JSON -- independent of dict insertion order, hash seeds and platform.
    """
    digest = hashlib.sha256(canonical_json(payload).encode()).hexdigest()
    return digest[:KEY_BYTES * 2]


@dataclass(frozen=True)
class StoreRecord:
    """One artefact in the unified store.

    Attributes:
        kind: record family (see :data:`STORE_KINDS`).
        key: content-addressed identity within the kind's key space.
        schema: body schema version of this kind.
        body: the artefact payload (plain JSON-serialisable data).
        t: optional epoch-seconds timestamp for age-based GC; never part
            of the record's identity.
    """

    kind: str
    key: str
    schema: int
    body: dict = field(default_factory=dict)
    t: float | None = None

    @property
    def identity(self) -> tuple[str, str]:
        """The ``(kind, key)`` pair records are addressed by."""
        return (self.kind, self.key)

    def to_dict(self) -> dict:
        """Plain-dict form (the envelope exactly as it appears on disk)."""
        envelope: dict = {"kind": self.kind, "key": self.key,
                          "schema": self.schema, "body": self.body}
        if self.t is not None:
            envelope["t"] = self.t
        return envelope

    def to_line(self) -> str:
        """One JSONL line (newline included), ready to append."""
        return json.dumps(self.to_dict()) + "\n"

    @classmethod
    def from_dict(cls, envelope: dict) -> "StoreRecord":
        """Parse an envelope dict back into a record.

        Raises:
            ValueError: the dict is not a well-formed store envelope.
        """
        if not is_store_record(envelope):
            raise ValueError(
                f"not a store record envelope: {envelope!r:.120}")
        return cls(kind=envelope["kind"], key=envelope["key"],
                   schema=int(envelope["schema"]),
                   body=envelope["body"], t=envelope.get("t"))


def is_store_record(obj: Any) -> bool:
    """Whether ``obj`` is a well-formed store record envelope."""
    return (isinstance(obj, dict)
            and isinstance(obj.get("kind"), str) and bool(obj.get("kind"))
            and isinstance(obj.get("key"), str) and bool(obj.get("key"))
            and isinstance(obj.get("schema"), int)
            and isinstance(obj.get("body"), dict))


__all__ = ["KEY_BYTES", "STORE_KINDS", "StoreRecord", "canonical_json",
           "content_key", "is_store_record"]
