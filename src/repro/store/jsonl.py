"""Crash-safe JSONL primitives shared by every persistence consumer.

Two halves:

* :func:`parse_jsonl_tail` -- the torn-trailing-line-tolerant parser.  A
  process killed mid-append leaves at most one torn final line (no trailing
  newline, or half-written JSON); the parser tolerates exactly that and
  surfaces the tail separately, while corruption anywhere *earlier* raises,
  because records behind it may then be unreachable garbage.  This logic
  used to live privately in ``repro/campaign/store.py``; it is now the one
  parser behind the campaign run store, the evaluation cache and the
  unified artifact store.

* :func:`append_line` / :func:`append_lines` -- atomic crash-safe append:
  the file is opened ``O_APPEND`` and each record is written as one
  ``os.write`` call and flushed, so concurrent appenders (per-worker
  shards aside) never interleave bytes mid-record and a kill can tear at
  most the final line.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable


def parse_jsonl_tail(path: Path, tolerant: bool = False
                     ) -> tuple[list[dict], list[bytes], bytes, int]:
    """Parse a JSONL file into ``(records, complete lines, torn tail, skipped)``.

    A corrupt *trailing* line (the signature of a kill mid-append) is
    tolerated and returned as the tail; by default corruption anywhere
    earlier raises.  With ``tolerant=True`` earlier unparseable lines are
    skipped and counted instead -- the mode the evaluation cache uses,
    where a stale or foreign file must degrade to a cold cache rather than
    fail the run.

    Args:
        path: the JSONL file to parse.
        tolerant: skip (and count) mid-file corrupt lines instead of
            raising.

    Returns:
        ``records`` (parsed dicts in file order), ``complete`` (the raw
        byte lines behind them, without newlines), ``tail`` (torn trailing
        bytes, possibly empty) and ``skipped`` (mid-file lines dropped in
        tolerant mode; always 0 otherwise).

    Raises:
        FileNotFoundError: no file at ``path``.
        ValueError: the file is corrupt before its final line (strict
            mode only).
    """
    raw = path.read_bytes()
    lines = raw.split(b"\n")
    # Everything after the final newline is a torn tail (possibly empty).
    complete, tail = lines[:-1], lines[-1]
    records: list[dict] = []
    kept: list[bytes] = []
    skipped = 0
    for position, line in enumerate(complete):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
            kept.append(line)
        except json.JSONDecodeError:
            if position == len(complete) - 1 and not tail:
                tail = line  # corrupt final line, newline and all
                complete = complete[:position]
                break
            if tolerant:
                skipped += 1
                continue
            raise ValueError(
                f"store file {path} is corrupt at line {position + 1}; "
                "only the trailing line of an interrupted run may be torn")
    return records, kept, tail, skipped


def truncate_torn_tail(path: Path, complete: list[bytes], tail: bytes) -> bool:
    """Drop a torn trailing line so future appends start on a clean boundary.

    Returns whether the file was rewritten (no-op when there is no tail).
    """
    if not tail:
        return False
    kept = b"\n".join(complete) + b"\n" if complete else b""
    path.write_bytes(kept)
    return True


def append_line(path: Path, line: str, fsync: bool = False) -> None:
    """Append one line crash-safely (O_APPEND, single write, flushed)."""
    append_lines(path, [line], fsync=fsync)


def append_lines(path: Path, lines: Iterable[str], fsync: bool = False) -> None:
    """Append several lines crash-safely in one O_APPEND write each.

    Args:
        path: target file (parent directories are created).
        lines: complete lines, each already ending in ``"\\n"``.
        fsync: also fsync the descriptor before closing (durability past
            the OS page cache, at a measurable per-append cost).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        for line in lines:
            os.write(fd, line.encode())
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)


__all__ = ["append_line", "append_lines", "parse_jsonl_tail",
           "truncate_torn_tail"]
