"""Advisory file locking for multi-writer artifact stores.

Several processes may share one :class:`~repro.store.store.ArtifactStore`
file -- service daemon workers appending results, a campaign appending
checkpoints, an operator running ``runner store compact`` on the side.
Individual O_APPEND appends are a single ``os.write`` and never interleave
bytes mid-record, but two windows are *not* append-only and would corrupt
a shared file without coordination:

* :meth:`~repro.store.store.ArtifactStore.open_for_append` truncating a
  torn tail (a whole-file rewrite) while another process appends;
* :meth:`~repro.store.store.ArtifactStore.compact` / ``gc`` replacing the
  file while another process holds an O_APPEND descriptor (its appends
  would land in the unlinked inode and vanish).

:class:`FileLock` is a classic advisory ``flock`` on a ``<store>.lock``
sidecar: cheap, crash-safe (the OS releases it when the holder dies, so a
killed daemon never wedges the store) and reentrant within a process
object.  On platforms without :mod:`fcntl` it degrades to a no-op, which
matches the pre-lock behaviour.

    >>> import tempfile, pathlib
    >>> path = pathlib.Path(tempfile.mkdtemp()) / "store.jsonl"
    >>> with FileLock(path) as lock:
    ...     pass  # exclusive across processes while held
"""

from __future__ import annotations

import os
import time
from pathlib import Path

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Suffix of the sidecar lock file (the store file itself is never locked,
#: so lock acquisition cannot race the atomic-rename of a compaction).
LOCK_SUFFIX = ".lock"


class LockTimeoutError(TimeoutError):
    """The lock could not be acquired within the timeout."""


class FileLock:
    """An advisory, reentrant, inter-process lock on a sidecar file.

    Args:
        path: the file being protected; the lock itself lives at
            ``<path>.lock``.
        timeout_s: how long :meth:`acquire` waits before raising
            :class:`LockTimeoutError`.
        poll_s: sleep between non-blocking acquisition attempts.
    """

    def __init__(self, path: str | Path, timeout_s: float = 30.0,
                 poll_s: float = 0.01) -> None:
        self.path = Path(str(path) + LOCK_SUFFIX)
        self.timeout_s = float(timeout_s)
        self.poll_s = float(poll_s)
        self._fd: int | None = None
        self._depth = 0

    @property
    def held(self) -> bool:
        """Whether this object currently holds the lock."""
        return self._depth > 0

    def acquire(self) -> None:
        """Take the exclusive lock, waiting up to ``timeout_s``.

        Reentrant: a holder re-acquiring only bumps a depth counter.

        Raises:
            LockTimeoutError: another process held the lock past the
                timeout.
        """
        if self._depth > 0:
            self._depth += 1
            return
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            self._depth = 1
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT, 0o644)
        deadline = time.monotonic() + self.timeout_s
        try:
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        raise LockTimeoutError(
                            f"could not lock {self.path} within "
                            f"{self.timeout_s:.1f}s; is another writer "
                            "stuck?") from None
                    time.sleep(self.poll_s)
        except BaseException:
            os.close(fd)
            raise
        self._fd = fd
        self._depth = 1

    def release(self) -> None:
        """Drop one level of the lock (released for real at depth zero)."""
        if self._depth == 0:
            raise RuntimeError(f"release of unheld lock {self.path}")
        self._depth -= 1
        if self._depth > 0:
            return
        if self._fd is not None:
            # Closing the descriptor releases the flock atomically; the
            # sidecar file is deliberately left behind (unlinking it would
            # race a concurrent acquirer that already opened it).
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


__all__ = ["FileLock", "LOCK_SUFFIX", "LockTimeoutError"]
