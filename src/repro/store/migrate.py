"""Migration of the three legacy persistence formats into the unified store.

Before the artifact store, three incompatible on-disk formats existed:

1. **Campaign run store, schema 1** -- JSONL with a ``{"kind": "header"}``
   record followed by ``{"kind": "job"}`` records
   (pre-unification ``repro/campaign/store.py``).
2. **Evaluation-cache JSONL** -- one flat record per synthesised subgraph
   (``key``, ``backend``, report fields; pre-unification
   ``repro/synth/cache.py``).
3. **Runner ``--json`` payloads, envelope schemas 1-5** -- one JSON
   document per runner invocation (:mod:`repro.experiments.serialize`).

:func:`sniff_format` recognises all three plus the unified store itself,
and :func:`migrate_records` converts any of them into store records:

============================  ==================  =============================
Legacy format                 Store kind          Key
============================  ==================  =============================
run-store header              ``campaign-header`` spec fingerprint
run-store job record          ``campaign-job``    campaign job id
cache JSONL record            ``synth-eval``      hash of (backend, fingerprint)
runner payload (schemas 1-5)  ``payload``         hash of (experiment, data)
============================  ==================  =============================

Migrated cache records keep the *legacy* backend signature string they were
written with.  Backends now declare an explicit
:meth:`~repro.synth.flow.SynthesisFlow.signature` that includes the
library/delay-model identity the legacy probe silently omitted, so legacy
records will not be served to the new signatures -- by design: a record
whose provenance cannot distinguish two differently-characterised libraries
is exactly the record the signature fix exists to invalidate.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.store.jsonl import parse_jsonl_tail
from repro.store.record import StoreRecord, content_key, is_store_record
from repro.store.store import ArtifactStore

#: Body schema of campaign records written by the unified store.
CAMPAIGN_BODY_SCHEMA = 2
#: Body schema of synthesis-evaluation records.
SYNTH_EVAL_BODY_SCHEMA = 1
#: Fields a legacy cache record must carry to migrate.
_CACHE_FIELDS = ("key", "backend", "name", "delay_ps", "num_gates",
                 "num_gates_unoptimized", "area_um2")


def sniff_format(path: str | Path) -> str | None:
    """Identify a persistence file: which format wrote it?

    Returns:
        ``"store"`` (unified artifact store), ``"run-store-v1"`` (legacy
        campaign store), ``"cache-jsonl"`` (legacy evaluation cache),
        ``"payload-json"`` (runner ``--json`` payload) or ``None`` when
        the file is none of these.
    """
    path = Path(path)
    with path.open("rb") as handle:
        head = handle.read(65536)
    first_line = head.split(b"\n", 1)[0].strip()
    try:
        first = json.loads(first_line)
    except json.JSONDecodeError:
        first = None
    if is_store_record(first):
        return "store"
    if isinstance(first, dict):
        if first.get("kind") == "header" and "fingerprint" in first:
            return "run-store-v1"
        if all(field in first for field in _CACHE_FIELDS):
            return "cache-jsonl"
    # A payload is one (possibly multi-line, indented) JSON document.
    try:
        document = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if isinstance(document, dict) and "experiment" in document \
            and "data" in document:
        return "payload-json"
    return None


def campaign_header_record(header_body: dict) -> StoreRecord:
    """Store record for a campaign header body (name/fingerprint/spec)."""
    return StoreRecord(kind="campaign-header",
                       key=header_body["fingerprint"],
                       schema=CAMPAIGN_BODY_SCHEMA, body=header_body)


def campaign_job_record(job_id: str, body: dict) -> StoreRecord:
    """Store record for one completed campaign job."""
    return StoreRecord(kind="campaign-job", key=job_id,
                       schema=CAMPAIGN_BODY_SCHEMA, body=body)


def synth_eval_key(backend_signature: str, fingerprint: str) -> str:
    """Content key of one (backend configuration, subgraph) evaluation."""
    return content_key({"backend": backend_signature,
                        "fingerprint": fingerprint})


def payload_key(envelope: dict) -> str:
    """Content key of a runner payload (experiment name + data body)."""
    return content_key({"experiment": envelope.get("experiment"),
                        "data": envelope.get("data")})


def payload_record(envelope: dict) -> StoreRecord:
    """Store record archiving one runner ``--json`` payload envelope."""
    return StoreRecord(kind="payload", key=payload_key(envelope),
                       schema=int(envelope.get("schema", 0)), body=envelope)


def _migrate_run_store_v1(path: Path) -> list[StoreRecord]:
    records, _, _, _ = parse_jsonl_tail(path, tolerant=False)
    out: list[StoreRecord] = []
    for entry in records:
        kind = entry.get("kind")
        if kind == "header":
            body = {"name": entry.get("name"),
                    "fingerprint": entry.get("fingerprint"),
                    "num_jobs": entry.get("num_jobs"),
                    "spec": entry.get("spec", {})}
            out.append(campaign_header_record(body))
        elif kind == "job" and "job_id" in entry:
            body = {"design": entry.get("design"),
                    "result": entry.get("result", {}),
                    "runtime_s": entry.get("runtime_s")}
            out.append(campaign_job_record(entry["job_id"], body))
    return out


def _migrate_cache_jsonl(path: Path) -> list[StoreRecord]:
    records, _, _, _ = parse_jsonl_tail(path, tolerant=True)
    out: list[StoreRecord] = []
    for entry in records:
        if not all(field in entry for field in _CACHE_FIELDS):
            continue
        fingerprint = entry["key"]
        backend = entry["backend"]
        body = {"fingerprint": fingerprint, "backend": backend}
        for field in ("name", "delay_ps", "num_gates",
                      "num_gates_unoptimized", "area_um2", "aig_depth",
                      "node_ids"):
            body[field] = entry.get(field)
        out.append(StoreRecord(kind="synth-eval",
                               key=synth_eval_key(backend, fingerprint),
                               schema=SYNTH_EVAL_BODY_SCHEMA, body=body))
    return out


def migrate_records(path: str | Path) -> tuple[str, list[StoreRecord]]:
    """Convert one persistence file into unified store records.

    Returns:
        ``(detected format, records)``.  A unified store file round-trips
        to its own records.

    Raises:
        ValueError: unrecognised file format, or corruption.
    """
    path = Path(path)
    detected = sniff_format(path)
    if detected == "store":
        return detected, list(ArtifactStore.load(path).records.values())
    if detected == "run-store-v1":
        return detected, _migrate_run_store_v1(path)
    if detected == "cache-jsonl":
        return detected, _migrate_cache_jsonl(path)
    if detected == "payload-json":
        return detected, [payload_record(json.loads(path.read_text()))]
    raise ValueError(
        f"{path} is not a recognised persistence file (expected a unified "
        "store, a legacy campaign run store, a legacy cache JSONL or a "
        "runner --json payload)")


def migrate_file(source: str | Path, destination: str | Path
                 ) -> tuple[str, int]:
    """Migrate one legacy file into a (possibly existing) store file.

    Records already present in the destination (same ``(kind, key)``) are
    kept as-is, so migration is idempotent and several legacy files can
    fold into one store.

    Returns:
        ``(detected source format, records appended)``.
    """
    detected, records = migrate_records(source)
    store = ArtifactStore(destination).open_for_append()
    added = store.put_many(
        [record for record in records if record.identity not in store])
    return detected, added


__all__ = [
    "CAMPAIGN_BODY_SCHEMA",
    "SYNTH_EVAL_BODY_SCHEMA",
    "campaign_header_record",
    "campaign_job_record",
    "migrate_file",
    "migrate_records",
    "payload_key",
    "payload_record",
    "sniff_format",
    "synth_eval_key",
]
