"""The ``store`` subcommand of :mod:`repro.experiments.runner`.

Operational surface of the unified artifact store::

    python -m repro.experiments.runner store ls STORE [--kind KIND]
    python -m repro.experiments.runner store verify STORE
    python -m repro.experiments.runner store compact STORE
    python -m repro.experiments.runner store gc STORE [--max-bytes N]
        [--max-records N] [--max-age-s S]
    python -m repro.experiments.runner store migrate SRC [SRC...] --into STORE

``ls`` lists records (kind, key, schema, body size); ``verify`` re-parses
the file strictly and reports duplicates / torn tails without modifying
it; ``compact`` rewrites the file without superseded duplicate keys
(atomic rename); ``gc`` applies a size/age retention policy on top of
compaction; ``migrate`` folds legacy files -- campaign run stores (schema
1), evaluation-cache JSONL, runner ``--json`` payloads -- into a unified
store, idempotently.
"""

from __future__ import annotations

import argparse
import json

from repro.store.migrate import migrate_file
from repro.store.store import ArtifactStore, GcPolicy


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner store",
        description="Inspect and maintain unified artifact store files.")
    commands = parser.add_subparsers(dest="command", required=True)

    ls = commands.add_parser("ls", help="list the store's records")
    ls.add_argument("store", metavar="STORE")
    ls.add_argument("--kind", help="only records of this kind")
    ls.add_argument("--json", dest="as_json", action="store_true",
                    help="machine-readable output (one JSON object per line)")

    verify = commands.add_parser(
        "verify", help="strict re-parse: duplicates, torn tail, health")
    verify.add_argument("store", metavar="STORE")

    compact = commands.add_parser(
        "compact", help="rewrite without superseded duplicates (atomic)")
    compact.add_argument("store", metavar="STORE")

    gc = commands.add_parser(
        "gc", help="apply a size/age retention policy (implies compact)")
    gc.add_argument("store", metavar="STORE")
    gc.add_argument("--max-bytes", type=int, metavar="N",
                    help="evict oldest unpinned records past this file size")
    gc.add_argument("--max-records", type=int, metavar="N",
                    help="evict oldest unpinned records past this count")
    gc.add_argument("--max-age-s", type=float, metavar="S",
                    help="drop records whose envelope timestamp is older "
                         "than S seconds (untimestamped records are kept)")

    migrate = commands.add_parser(
        "migrate", help="fold legacy files into a unified store")
    migrate.add_argument("sources", nargs="+", metavar="SRC",
                         help="legacy campaign run store (schema 1), "
                              "cache JSONL, runner --json payload, or an "
                              "existing unified store")
    migrate.add_argument("--into", required=True, metavar="STORE",
                         help="destination store (created if missing)")
    return parser


def store_main(argv: list[str] | None = None) -> int:
    """Entry point of ``runner store``; returns the process exit code."""
    parser = _build_parser()
    arguments = parser.parse_args(argv)

    try:
        if arguments.command == "ls":
            store = ArtifactStore.load(arguments.store)
            for record in store.records.values():
                if arguments.kind and record.kind != arguments.kind:
                    continue
                if arguments.as_json:
                    print(json.dumps({"kind": record.kind, "key": record.key,
                                      "schema": record.schema}))
                else:
                    print(f"{record.kind:16s} {record.key:32s} "
                          f"schema={record.schema} "
                          f"body={len(json.dumps(record.body))}B")
            histogram = ", ".join(f"{kind}={count}" for kind, count
                                  in sorted(store.kinds().items()))
            if not arguments.as_json:
                print(f"{len(store)} records ({histogram or 'empty'})")
            return 0

        if arguments.command == "verify":
            store = ArtifactStore.load(arguments.store)
            report = store.verify()
            histogram = ", ".join(f"{kind}={count}" for kind, count
                                  in sorted(report.kinds.items()))
            print(f"{arguments.store}: {report.num_records} records "
                  f"({histogram or 'empty'}), "
                  f"{report.dropped} superseded duplicates, "
                  f"torn tail: {'yes' if report.torn_tail else 'no'}")
            return 0

        if arguments.command == "compact":
            store = ArtifactStore(arguments.store).open_for_append()
            report = store.compact()
            print(f"{arguments.store}: compacted {report.bytes_before} -> "
                  f"{report.bytes_after} bytes, dropped {report.dropped} "
                  f"superseded records, kept {report.num_records}")
            return 0

        if arguments.command == "gc":
            store = ArtifactStore(arguments.store).open_for_append()
            policy = GcPolicy(max_bytes=arguments.max_bytes,
                              max_records=arguments.max_records,
                              max_age_s=arguments.max_age_s)
            report = store.gc(policy)
            print(f"{arguments.store}: gc dropped {report.dropped} records, "
                  f"kept {report.num_records} "
                  f"({report.bytes_before} -> {report.bytes_after} bytes)")
            return 0

        if arguments.command == "migrate":
            total = 0
            for source in arguments.sources:
                detected, added = migrate_file(source, arguments.into)
                total += added
                print(f"{source}: {detected} -> {added} records")
            print(f"{arguments.into}: {total} records migrated")
            return 0
    except FileNotFoundError as error:
        parser.error(f"input not found: {error.filename or error}")
    except ValueError as error:
        parser.error(str(error))
    raise AssertionError(f"unhandled command {arguments.command!r}")


__all__ = ["store_main"]
