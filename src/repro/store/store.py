"""The content-addressed artifact store: one file owns all persistence.

An :class:`ArtifactStore` is an append-only JSONL file of
:class:`~repro.store.record.StoreRecord` envelopes, keyed by ``(kind,
key)`` with last-record-wins semantics.  It is the single durability layer
behind the campaign run store (``campaign-header`` / ``campaign-job``
records), the synthesis evaluation cache (``synth-eval``), archived runner
payloads (``payload``) and DSE probes (``dse-probe``) -- see
``docs/file-formats.md``.

Durability model (inherited from the campaign store and now shared by
everyone): records are appended via O_APPEND in a single write and
flushed, so a kill tears at most the final line; loading tolerates exactly
that torn tail (:mod:`repro.store.jsonl`).  Because appends never rewrite
existing bytes, per-worker shard files are safe to produce concurrently
and fold together afterwards with :meth:`ArtifactStore.merge`.

Maintenance is offline: :meth:`compact` rewrites the file without
superseded duplicate keys (write-to-temp then :func:`os.replace`, so a
kill mid-compaction leaves the original intact), and :meth:`gc` applies a
size/age policy on top of compaction.

    >>> store = ArtifactStore()               # in-memory: no durability
    >>> from repro.store.record import StoreRecord
    >>> store.put(StoreRecord("payload", "ab12", 1, {"x": 1}))
    >>> store.get("payload", "ab12").body
    {'x': 1}
    >>> len(store)
    1
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.store.jsonl import (append_line, parse_jsonl_tail,
                               truncate_torn_tail)
from repro.store.lock import FileLock
from repro.store.record import StoreRecord, is_store_record


@dataclass(frozen=True)
class GcPolicy:
    """Size/age retention policy applied by :meth:`ArtifactStore.gc`.

    Attributes:
        max_bytes: target upper bound on the compacted file size; oldest
            unpinned records are dropped until the store fits (``None`` =
            unbounded).
        max_records: like ``max_bytes`` but counting records.
        max_age_s: drop records whose envelope timestamp ``t`` is older
            than this many seconds; records without a timestamp never
            age out (``None`` = no age limit).
        pinned_kinds: kinds never dropped by size/age pressure (campaign
            headers by default -- dropping one would orphan every job
            record of its campaign).
    """

    max_bytes: int | None = None
    max_records: int | None = None
    max_age_s: float | None = None
    pinned_kinds: tuple[str, ...] = ("campaign-header",)


@dataclass
class StoreReport:
    """Outcome of a maintenance operation (compact/gc/verify/merge)."""

    num_records: int = 0
    dropped: int = 0
    skipped_lines: int = 0
    torn_tail: bool = False
    bytes_before: int = 0
    bytes_after: int = 0
    kinds: dict = field(default_factory=dict)


class _NullLock:
    """Context-manager stand-in when locking is disabled (in-memory stores)."""

    def __enter__(self) -> "_NullLock":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def acquire(self) -> None:
        return None

    def release(self) -> None:
        return None


class ArtifactStore:
    """Append-only content-addressed record store over one JSONL file.

    Args:
        path: backing file; ``None`` keeps everything in memory (no
            durability -- the same protocol, useful for API runs and
            tests).
        fsync: fsync every append (durability past the OS cache).
        locking: coordinate with other writer processes through an
            advisory ``<path>.lock`` sidecar (:mod:`repro.store.lock`).
            Appends, torn-tail truncation and compaction rewrites take
            the lock, so several service workers or daemons can share one
            store file without interleaving torn records.  Disable only
            for provably single-writer files (saves two syscalls per
            append).

    Attributes:
        path: the backing file (or ``None``).
        records: ``(kind, key) -> StoreRecord``, last record wins; the
            dict preserves first-appearance order, which is file order.
        skipped_lines: lines dropped by a tolerant load.
    """

    def __init__(self, path: str | Path | None = None,
                 fsync: bool = False, locking: bool = True) -> None:
        self.path = Path(path) if path is not None else None
        self.fsync = fsync
        self.locking = locking and self.path is not None
        self._lock = FileLock(self.path) if self.locking else None
        self.records: dict[tuple[str, str], StoreRecord] = {}
        self.skipped_lines = 0
        self._duplicates = 0

    def lock(self) -> FileLock | _NullLock:
        """The store's advisory inter-process lock (no-op when disabled).

        Exposed so multi-step read-modify-write sequences (a service
        daemon folding shards, an operator script) can hold the lock
        across several store calls; the lock is reentrant, so the calls'
        own acquisitions nest for free.
        """
        return self._lock if self._lock is not None else _NullLock()

    # -------------------------------------------------------------- loading

    @classmethod
    def load(cls, path: str | Path, tolerant: bool = False,
             fsync: bool = False) -> "ArtifactStore":
        """Open an existing store file read-only (torn tail ignored).

        Args:
            path: the store file.
            tolerant: skip unparseable / non-envelope lines instead of
                raising (the evaluation-cache mode); strict mode raises on
                mid-file corruption and on lines that are valid JSON but
                not store envelopes.

        Raises:
            FileNotFoundError: no file at ``path``.
            ValueError: strict mode only -- corrupt before the final
                line, or a non-envelope record.
        """
        store = cls(path, fsync=fsync)
        store._read(tolerant=tolerant)
        return store

    def open_for_append(self, tolerant: bool = False) -> "ArtifactStore":
        """Load the backing file (if any) and clear any torn tail.

        Unlike :meth:`load` this prepares the file for appends: a torn
        trailing line is truncated away so future appends start on a
        clean boundary.  Missing files are simply empty stores.  The
        load-truncate window runs under the store's advisory file lock
        (when ``locking`` is on), so a concurrent writer's fresh appends
        can never be mistaken for a torn tail and rewritten away.
        Returns ``self`` for chaining.
        """
        if self.path is None:
            return self
        with self.lock():
            if not self.path.exists():
                return self
            _, complete, tail = self._read(tolerant=tolerant)
            truncate_torn_tail(self.path, complete, tail)
        return self

    def _read(self, tolerant: bool) -> tuple[list[dict], list[bytes], bytes]:
        records, complete, tail, skipped = parse_jsonl_tail(
            self.path, tolerant=tolerant)
        self.records.clear()
        self._duplicates = 0
        kept: list[bytes] = []
        for envelope, line in zip(records, complete):
            if not is_store_record(envelope):
                if not tolerant:
                    raise ValueError(
                        f"store file {self.path} contains a non-envelope "
                        f"record: {str(envelope)[:80]!r}")
                skipped += 1
                continue
            record = StoreRecord.from_dict(envelope)
            if record.identity in self.records:
                self._duplicates += 1
            self.records[record.identity] = record
            kept.append(line)
        self.skipped_lines = skipped
        return records, complete, tail

    # -------------------------------------------------------------- writing

    def put(self, record: StoreRecord) -> None:
        """Add one record (appended to disk and flushed immediately)."""
        if record.identity in self.records:
            self._duplicates += 1
        self.records[record.identity] = record
        if self.path is not None:
            with self.lock():
                append_line(self.path, record.to_line(), fsync=self.fsync)

    def put_many(self, records: Iterable[StoreRecord]) -> int:
        """Add several records in one appending pass; returns the count."""
        added = 0
        lines = []
        for record in records:
            if record.identity in self.records:
                self._duplicates += 1
            self.records[record.identity] = record
            lines.append(record.to_line())
            added += 1
        if self.path is not None and lines:
            from repro.store.jsonl import append_lines

            with self.lock():
                append_lines(self.path, lines, fsync=self.fsync)
        return added

    # -------------------------------------------------------------- reading

    def get(self, kind: str, key: str) -> StoreRecord | None:
        """The current record under ``(kind, key)``, or ``None``."""
        return self.records.get((kind, key))

    def kind(self, kind: str) -> Iterator[StoreRecord]:
        """All current records of one kind, in first-appearance order."""
        return (record for record in self.records.values()
                if record.kind == kind)

    def kinds(self) -> dict[str, int]:
        """Histogram of record kinds."""
        histogram: dict[str, int] = {}
        for record in self.records.values():
            histogram[record.kind] = histogram.get(record.kind, 0) + 1
        return histogram

    def __len__(self) -> int:
        return len(self.records)

    def __contains__(self, identity: tuple[str, str]) -> bool:
        return identity in self.records

    # -------------------------------------------------------- maintenance

    def compact(self) -> StoreReport:
        """Rewrite the file without superseded duplicates (atomic rename).

        The surviving record of every ``(kind, key)`` is the last one
        appended; output order is first-appearance order, so a campaign
        header stays ahead of its job records.  The rewrite goes to a
        temporary sibling and lands via :func:`os.replace` -- a kill
        mid-compaction leaves the original file untouched.
        """
        report = StoreReport(num_records=len(self.records),
                            dropped=self._duplicates,
                            skipped_lines=self.skipped_lines,
                            kinds=self.kinds())
        if self.path is None:
            self._duplicates = 0
            return report
        report.bytes_before = (self.path.stat().st_size
                               if self.path.exists() else 0)
        self._rewrite(self.records.values())
        report.bytes_after = self.path.stat().st_size
        self._duplicates = 0
        self.skipped_lines = 0
        return report

    def gc(self, policy: GcPolicy, now: float | None = None) -> StoreReport:
        """Apply a size/age retention policy (implies compaction).

        Records are dropped in this order until the policy is satisfied:
        first everything past ``max_age_s`` (by envelope timestamp ``t``;
        untimestamped records never age out), then -- under size pressure
        -- the oldest unpinned records by append order.  ``pinned_kinds``
        survive everything.

        Args:
            policy: the retention policy.
            now: reference time for the age check (defaults to
                :func:`time.time`).
        """
        now = time.time() if now is None else now
        survivors: dict[tuple[str, str], StoreRecord] = {}
        dropped = 0
        for identity, record in self.records.items():
            expired = (policy.max_age_s is not None
                       and record.t is not None
                       and now - record.t > policy.max_age_s)
            if expired and record.kind not in policy.pinned_kinds:
                dropped += 1
                continue
            survivors[identity] = record

        def over_budget() -> bool:
            if policy.max_records is not None \
                    and len(survivors) > policy.max_records:
                return True
            if policy.max_bytes is not None:
                size = sum(len(r.to_line()) for r in survivors.values())
                return size > policy.max_bytes
            return False

        # Oldest-first eviction under size pressure, pinned kinds immune.
        for identity in list(survivors):
            if not over_budget():
                break
            if survivors[identity].kind in policy.pinned_kinds:
                continue
            del survivors[identity]
            dropped += 1

        report = StoreReport(num_records=len(survivors),
                            dropped=dropped + self._duplicates,
                            skipped_lines=self.skipped_lines)
        if self.path is not None:
            report.bytes_before = (self.path.stat().st_size
                                   if self.path.exists() else 0)
        self.records = survivors
        report.kinds = self.kinds()
        if self.path is not None:
            self._rewrite(self.records.values())
            report.bytes_after = self.path.stat().st_size
        self._duplicates = 0
        self.skipped_lines = 0
        return report

    def replace_with(self, records: Iterable[StoreRecord]) -> None:
        """Atomically replace the store's contents with ``records``.

        Used by format migration: the backing file is rewritten via the
        same write-to-temp-and-rename path as :meth:`compact`.
        """
        self.records = {record.identity: record for record in records}
        self._duplicates = 0
        if self.path is not None:
            self._rewrite(self.records.values())

    def merge(self, shard_paths: Sequence[str | Path],
              tolerant: bool = True) -> int:
        """Fold per-worker shard files into this store.

        Every shard record whose ``(kind, key)`` this store has not seen
        is appended; known identities are kept as-is (the main store
        wins, so merging is idempotent).  Shards with torn tails load
        fine -- their torn line is simply ignored.

        Returns:
            Number of records appended.
        """
        fresh: list[StoreRecord] = []
        for shard_path in shard_paths:
            shard = ArtifactStore.load(shard_path, tolerant=tolerant)
            for record in shard.records.values():
                if record.identity not in self.records \
                        and all(record.identity != r.identity for r in fresh):
                    fresh.append(record)
        return self.put_many(fresh)

    def verify(self) -> StoreReport:
        """Re-check the backing file and report its health.

        Returns a :class:`StoreReport` with the record count, duplicate
        (superseded) count, tolerated skipped lines, torn-tail flag and
        kind histogram.  Never modifies the file.

        Raises:
            ValueError: mid-file corruption (strict parse).
        """
        report = StoreReport(num_records=len(self.records),
                            dropped=self._duplicates,
                            kinds=self.kinds())
        if self.path is None or not self.path.exists():
            return report
        records, _, tail, _ = parse_jsonl_tail(self.path, tolerant=False)
        seen: dict[tuple[str, str], int] = {}
        invalid = 0
        for envelope in records:
            if not is_store_record(envelope):
                invalid += 1
                continue
            identity = (envelope["kind"], envelope["key"])
            seen[identity] = seen.get(identity, 0) + 1
        report.num_records = len(seen)
        report.dropped = sum(count - 1 for count in seen.values())
        report.skipped_lines = invalid
        report.torn_tail = bool(tail)
        report.bytes_before = report.bytes_after = self.path.stat().st_size
        kinds: dict[str, int] = {}
        for kind, _ in seen:
            kinds[kind] = kinds.get(kind, 0) + 1
        report.kinds = kinds
        return report

    def _rewrite(self, records: Iterable[StoreRecord]) -> None:
        """Write ``records`` to a temp sibling and atomically replace.

        Runs under the advisory lock: replacing the file while another
        process appends through an O_APPEND descriptor would strand its
        appends in the unlinked inode.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        temporary = self.path.with_name(self.path.name + ".compact-tmp")
        with self.lock():
            with temporary.open("w") as handle:
                for record in records:
                    handle.write(record.to_line())
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temporary, self.path)


__all__ = ["ArtifactStore", "GcPolicy", "StoreReport"]
