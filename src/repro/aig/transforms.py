"""AIG analyses and transforms (depth, balancing)."""

from __future__ import annotations

import heapq

from repro.aig.aig import (
    Aig,
    Literal,
    literal_complemented,
    literal_negate,
    literal_node,
    make_literal,
)


def aig_depth(aig: Aig) -> int:
    """Depth (maximum AND-level at any output) of ``aig``."""
    return aig.depth()


def _collect_and_leaves(aig: Aig, root_literal: Literal,
                        fanout: dict[int, int]) -> list[Literal] | None:
    """Leaves of the maximal single-fanout AND tree rooted at ``root_literal``.

    Returns ``None`` if the root is not a non-complemented AND node (nothing
    to balance).
    """
    if literal_complemented(root_literal):
        return None
    root = aig.node(literal_node(root_literal))
    if not root.is_and:
        return None
    leaves: list[Literal] = []
    stack = [root.fanin0, root.fanin1]
    while stack:
        literal = stack.pop()
        node = aig.node(literal_node(literal))
        expandable = (node.is_and and not literal_complemented(literal)
                      and fanout[node.node_id] == 1)
        if expandable:
            stack.append(node.fanin0)
            stack.append(node.fanin1)
        else:
            leaves.append(literal)
    return leaves


def balance_aig(aig: Aig) -> Aig:
    """Return a depth-balanced copy of ``aig``.

    Maximal fanout-free AND trees are rebuilt as balanced trees, merging the
    shallowest operands first (the classic ABC ``balance`` strategy).
    """
    fanout: dict[int, int] = {node.node_id: 0 for node in aig.nodes()}
    for node in aig.and_nodes():
        fanout[literal_node(node.fanin0)] += 1
        fanout[literal_node(node.fanin1)] += 1
    for literal in aig.outputs():
        fanout[literal_node(literal)] += 1

    balanced = Aig(aig.name)
    literal_map: dict[int, Literal] = {0: 0}
    level: dict[int, int] = {0: 0}

    def mapped(literal: Literal) -> Literal:
        new_literal = literal_map[literal_node(literal)]
        return literal_negate(new_literal) if literal_complemented(literal) else new_literal

    def new_level(literal: Literal) -> int:
        node = balanced.node(literal_node(literal))
        return level.get(node.node_id, 0)

    for node in aig.nodes()[1:]:
        if node.is_input:
            literal_map[node.node_id] = balanced.add_input(aig.input_name(node.node_id))
            level[literal_node(literal_map[node.node_id])] = 0
            continue
        leaves = _collect_and_leaves(aig, make_literal(node.node_id), fanout)
        if leaves and len(leaves) > 2:
            heap: list[tuple[int, int, Literal]] = []
            for index, leaf in enumerate(leaves):
                new_leaf = mapped(leaf)
                heapq.heappush(heap, (new_level(new_leaf), index, new_leaf))
            counter = len(leaves)
            while len(heap) > 1:
                level_a, _, lit_a = heapq.heappop(heap)
                level_b, _, lit_b = heapq.heappop(heap)
                merged = balanced.add_and(lit_a, lit_b)
                merged_level = max(level_a, level_b) + 1
                level[literal_node(merged)] = max(level.get(literal_node(merged), 0),
                                                  merged_level)
                heapq.heappush(heap, (merged_level, counter, merged))
                counter += 1
            literal_map[node.node_id] = heap[0][2]
        else:
            merged = balanced.add_and(mapped(node.fanin0), mapped(node.fanin1))
            level[literal_node(merged)] = max(
                level.get(literal_node(merged), 0),
                max(new_level(mapped(node.fanin0)), new_level(mapped(node.fanin1))) + 1)
            literal_map[node.node_id] = merged

    for output in aig.outputs():
        balanced.mark_output(mapped(output))
    return balanced
