"""Structurally hashed and-inverter graph."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.kernel.delta import record_add

#: A literal is ``2 * node_id + complement``; node 0 is the constant TRUE node,
#: so literal 0 is constant-1 and literal 1 is constant-0.
Literal = int

TRUE_LITERAL: Literal = 0
FALSE_LITERAL: Literal = 1


def make_literal(node_id: int, complemented: bool = False) -> Literal:
    """Build a literal from a node id and a complement flag."""
    return 2 * node_id + (1 if complemented else 0)


def literal_node(literal: Literal) -> int:
    """Node id referenced by a literal."""
    return literal >> 1


def literal_complemented(literal: Literal) -> bool:
    """True if the literal is complemented."""
    return bool(literal & 1)


def literal_negate(literal: Literal) -> Literal:
    """Negate a literal."""
    return literal ^ 1


@dataclass(frozen=True)
class AigNode:
    """A node of the AIG.

    Node 0 is the constant node; primary inputs have ``fanin0 == fanin1 == None``;
    AND nodes carry two fanin literals.
    """

    node_id: int
    fanin0: Literal | None = None
    fanin1: Literal | None = None

    @property
    def is_constant(self) -> bool:
        return self.node_id == 0

    @property
    def is_input(self) -> bool:
        return not self.is_constant and self.fanin0 is None

    @property
    def is_and(self) -> bool:
        return self.fanin0 is not None


class Aig:
    """A combinational AIG with structural hashing on AND nodes.

    Attributes:
        name: graph name for reports.
    """

    def __init__(self, name: str = "aig") -> None:
        self.name = name
        self._nodes: list[AigNode] = [AigNode(0)]
        self._strash: dict[tuple[Literal, Literal], int] = {}
        self._inputs: list[int] = []
        self._outputs: list[Literal] = []
        self._input_names: dict[int, str] = {}
        self._version = 0

    @property
    def structural_version(self) -> int:
        """Monotonic counter advanced whenever a node is created.

        Keys the kernel's cached :class:`~repro.kernel.GraphView` behind
        :meth:`levels`/:meth:`depth`; structurally hashed ``add_and`` hits
        reuse an existing node and leave the cached view valid.
        """
        return self._version

    # ------------------------------------------------------------------ build

    def add_input(self, name: str = "") -> Literal:
        """Add a primary input and return its (positive) literal."""
        node = AigNode(len(self._nodes))
        self._nodes.append(node)
        self._inputs.append(node.node_id)
        self._version += 1
        record_add(self, node.node_id, (), True)
        if name:
            self._input_names[node.node_id] = name
        return make_literal(node.node_id)

    def add_and(self, a: Literal, b: Literal) -> Literal:
        """Add (or reuse) an AND node over literals ``a`` and ``b``.

        Applies the standard trivial simplifications (constants, equal and
        complementary fanins) before structural hashing.
        """
        if a > b:
            a, b = b, a
        if a == FALSE_LITERAL or b == FALSE_LITERAL:
            return FALSE_LITERAL
        if a == TRUE_LITERAL:
            return b
        if b == TRUE_LITERAL:
            return a
        if a == b:
            return a
        if a == literal_negate(b):
            return FALSE_LITERAL
        key = (a, b)
        if key in self._strash:
            return make_literal(self._strash[key])
        node = AigNode(len(self._nodes), a, b)
        self._nodes.append(node)
        self._strash[key] = node.node_id
        self._version += 1
        record_add(self, node.node_id,
                   (literal_node(a), literal_node(b)), False)
        return make_literal(node.node_id)

    def add_or(self, a: Literal, b: Literal) -> Literal:
        """OR via De Morgan."""
        return literal_negate(self.add_and(literal_negate(a), literal_negate(b)))

    def add_xor(self, a: Literal, b: Literal) -> Literal:
        """XOR as (a & ~b) | (~a & b)."""
        left = self.add_and(a, literal_negate(b))
        right = self.add_and(literal_negate(a), b)
        return self.add_or(left, right)

    def add_mux(self, select: Literal, on_true: Literal, on_false: Literal) -> Literal:
        """Multiplexer as (s & t) | (~s & f)."""
        taken = self.add_and(select, on_true)
        skipped = self.add_and(literal_negate(select), on_false)
        return self.add_or(taken, skipped)

    def add_maj(self, a: Literal, b: Literal, c: Literal) -> Literal:
        """Majority-of-three as (a&b) | (a&c) | (b&c)."""
        ab = self.add_and(a, b)
        ac = self.add_and(a, c)
        bc = self.add_and(b, c)
        return self.add_or(self.add_or(ab, ac), bc)

    def mark_output(self, literal: Literal) -> None:
        """Register a primary output literal."""
        self._outputs.append(literal)

    # ----------------------------------------------------------------- access

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, node_id: int) -> AigNode:
        return self._nodes[node_id]

    def nodes(self) -> list[AigNode]:
        return list(self._nodes)

    def and_nodes(self) -> list[AigNode]:
        """All AND nodes."""
        return [n for n in self._nodes if n.is_and]

    def num_ands(self) -> int:
        """AND-node count (the usual AIG size metric)."""
        return sum(1 for n in self._nodes if n.is_and)

    def inputs(self) -> list[int]:
        return list(self._inputs)

    def outputs(self) -> list[Literal]:
        return list(self._outputs)

    def input_name(self, node_id: int) -> str:
        return self._input_names.get(node_id, f"i{node_id}")

    # -------------------------------------------------------------- evaluate

    def evaluate(self, input_values: dict[int, int]) -> dict[Literal, int]:
        """Evaluate all output literals for the given input-node values."""
        node_values: dict[int, int] = {0: 1}
        for node in self._nodes[1:]:
            if node.is_input:
                node_values[node.node_id] = input_values[node.node_id] & 1
            else:
                a = self._literal_value(node.fanin0, node_values)
                b = self._literal_value(node.fanin1, node_values)
                node_values[node.node_id] = a & b
        return {lit: self._literal_value(lit, node_values) for lit in self._outputs}

    @staticmethod
    def _literal_value(literal: Literal, node_values: dict[int, int]) -> int:
        value = node_values[literal_node(literal)]
        return 1 - value if literal_complemented(literal) else value

    def levels(self) -> dict[int, int]:
        """AND-level of every node (inputs and the constant are level 0).

        Backed by the kernel's cached :class:`~repro.kernel.GraphView`: the
        AIG's edges run from fanin nodes to AND nodes, so the view's ASAP
        levels are exactly the AND-level metric, computed once per
        structural version instead of on every call.
        """
        from repro.kernel import GraphView

        view = GraphView.from_aig(self)
        view_levels = view.levels
        index_of = view.index_of
        return {node.node_id: int(view_levels[index_of[node.node_id]])
                for node in self._nodes}

    def depth(self) -> int:
        """Depth of the AIG: the maximum AND-level over the outputs."""
        if not self._outputs:
            return 0
        level = self.levels()
        return max(level[literal_node(lit)] for lit in self._outputs)

    def cone_size(self, literals: Iterable[Literal]) -> int:
        """Number of AND nodes in the transitive fan-in of ``literals``."""
        seen: set[int] = set()
        stack = [literal_node(lit) for lit in literals]
        count = 0
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            node = self._nodes[node_id]
            if node.is_and:
                count += 1
                stack.append(literal_node(node.fanin0))
                stack.append(literal_node(node.fanin1))
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Aig({self.name!r}, {len(self._inputs)} inputs, "
                f"{self.num_ands()} ands, depth {self.depth()})")
