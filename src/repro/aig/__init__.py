"""And-inverter graph (AIG) representation.

The paper's discussion section (Fig. 8) observes a strong linear correlation
between post-synthesis STA delay and AIG depth in ABC, and suggests AIG depth
as a cheaper feedback signal.  This package provides the AIG substrate needed
to reproduce that study: a structurally-hashed AIG, conversion from gate-level
netlists, depth computation and a balancing pass.
"""

from repro.aig.aig import Aig, AigNode, Literal, TRUE_LITERAL, FALSE_LITERAL
from repro.aig.from_netlist import netlist_to_aig
from repro.aig.transforms import aig_depth, balance_aig

__all__ = [
    "Aig",
    "AigNode",
    "Literal",
    "TRUE_LITERAL",
    "FALSE_LITERAL",
    "netlist_to_aig",
    "aig_depth",
    "balance_aig",
]
