"""Conversion from gate-level netlists to AIGs."""

from __future__ import annotations

from repro.aig.aig import Aig, Literal, FALSE_LITERAL, TRUE_LITERAL, literal_negate
from repro.netlist.gates import GateKind
from repro.netlist.netlist import Netlist


def netlist_to_aig(netlist: Netlist, name: str = "") -> Aig:
    """Convert a gate-level netlist into a structurally hashed AIG.

    Every gate kind is expanded into its AND/NOT decomposition; XOR and MUX
    therefore cost three AND nodes and MAJ3 costs four, matching how ABC sees
    the same logic.

    Returns:
        The AIG, with one output literal per netlist output, in order.
    """
    aig = Aig(name or f"{netlist.name}_aig")
    literal_of: dict[int, Literal] = {}

    for gate_id in netlist.topological_order():
        gate = netlist.gate(gate_id)
        kind = gate.kind
        fanins = [literal_of[i] for i in gate.inputs]

        if kind is GateKind.INPUT:
            literal_of[gate_id] = aig.add_input(gate.name)
        elif kind is GateKind.CONST0:
            literal_of[gate_id] = FALSE_LITERAL
        elif kind is GateKind.CONST1:
            literal_of[gate_id] = TRUE_LITERAL
        elif kind is GateKind.BUF:
            literal_of[gate_id] = fanins[0]
        elif kind is GateKind.INV:
            literal_of[gate_id] = literal_negate(fanins[0])
        elif kind is GateKind.AND2:
            literal_of[gate_id] = aig.add_and(fanins[0], fanins[1])
        elif kind is GateKind.NAND2:
            literal_of[gate_id] = literal_negate(aig.add_and(fanins[0], fanins[1]))
        elif kind is GateKind.OR2:
            literal_of[gate_id] = aig.add_or(fanins[0], fanins[1])
        elif kind is GateKind.NOR2:
            literal_of[gate_id] = literal_negate(aig.add_or(fanins[0], fanins[1]))
        elif kind is GateKind.XOR2:
            literal_of[gate_id] = aig.add_xor(fanins[0], fanins[1])
        elif kind is GateKind.XNOR2:
            literal_of[gate_id] = literal_negate(aig.add_xor(fanins[0], fanins[1]))
        elif kind is GateKind.ANDN2:
            literal_of[gate_id] = aig.add_and(fanins[0], literal_negate(fanins[1]))
        elif kind is GateKind.MUX2:
            literal_of[gate_id] = aig.add_mux(fanins[0], fanins[1], fanins[2])
        elif kind is GateKind.MAJ3:
            literal_of[gate_id] = aig.add_maj(fanins[0], fanins[1], fanins[2])
        else:  # pragma: no cover - exhaustive over GateKind
            raise NotImplementedError(f"no AIG conversion for gate {kind.value}")

    for output in netlist.outputs():
        aig.mark_output(literal_of[output])
    return aig
