"""Replay-driven load generator and benchmark of the scheduling service.

::

    python -m repro.service.bench [--replay STORE.jsonl] [--requests N]
        [--dup K] [--hot-fraction F] [--concurrency C] [--jobs N]
        [--seed S] [--out BENCH_service.json]
        [--min-hit-rate F] [--min-warm-speedup X] [--require-coalescing]

The workload replays a campaign's (design x clock-period) points -- from
a recorded run store / payload via ``--replay``, or the built-in quick
campaign's points widened by a clock ladder -- as ``schedule`` requests
with a configurable hot/cold mix: a seeded RNG revisits already-asked
points with probability ``--hot-fraction`` and each drawn point is
submitted ``--dup`` times back-to-back, so the run exercises all three
serving layers (warm hits, coalesced duplicates, batched cold misses).

The result payload (schema-8 ``service`` experiment envelope, written by
``--out``) records sustained requests/s, p50/p95 latency, warm hit rate,
coalesce rate and the warm-vs-cold speedup; ``runner report`` loads it
and ``report diff`` gates those metrics direction-aware.  The committed
``BENCH_service.json`` at the repo root is one such payload.

Every run also cross-checks served results against offline references
(:func:`repro.service.worker.reference_result`) byte-for-byte unless
``--no-check`` is given, and the ``--min-*`` / ``--require-coalescing``
gates turn regressions into a non-zero exit for CI.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.service.daemon import SchedulingService, ServiceConfig
from repro.service.worker import reference_result
from repro.store import canonical_json

#: Clock multipliers widening each replayed campaign point into a small
#: DSE-like neighbourhood (more unique points, still one design build).
CLOCK_LADDER = (0.85, 1.0, 1.2, 1.5)


def quick_pairs(num_designs: int = 4) -> list[tuple[str, float]]:
    """The built-in workload: quick-campaign points x the clock ladder."""
    from repro.campaign.spec import quick_spec

    base: list[tuple[str, float]] = []
    for job in quick_spec(num_designs=num_designs).jobs():
        pair = (job.design, float(job.config["clock_period_ps"]))
        if pair not in base:
            base.append(pair)
    return [(design, round(clock * scale, 3))
            for design, clock in base for scale in CLOCK_LADDER]


def replay_pairs(path: str | Path) -> list[tuple[str, float]]:
    """(design, clock) points of a recorded campaign store / payload.

    Loads through the report frame (any supported input kind) and keeps
    each row's design/clock axes, deduplicated in row order.

    Raises:
        ValueError: the input yields no (design, clock) points.
    """
    from repro.report.frame import load_any

    pairs: list[tuple[str, float]] = []
    for row in load_any(path).rows:
        design = row.axes.get("design")
        clock = row.axes.get("clock_period_ps")
        if design and clock is not None:
            pair = (design, float(clock))
            if pair not in pairs:
                pairs.append(pair)
    if not pairs:
        raise ValueError(f"{path} contains no (design, clock_period_ps) "
                         "points to replay")
    return pairs


def build_workload(pairs: list[tuple[str, float]], requests: int,
                   hot_fraction: float, dup: int,
                   seed: int) -> list[dict]:
    """The request sequence: seeded hot/cold draws, ``dup``-way bursts.

    ``requests`` counts *draws*; each draw is submitted ``dup`` times
    back-to-back (adjacent requests reach the service concurrently, so
    duplicate bursts are what proves coalescing).
    """
    rng = random.Random(seed)
    fresh = list(pairs)
    seen: list[tuple[str, float]] = []
    workload: list[dict] = []
    for draw in range(requests):
        if seen and (not fresh or rng.random() < hot_fraction):
            design, clock = seen[rng.randrange(len(seen))]
        else:
            design, clock = fresh.pop(0)
            seen.append((design, clock))
        for burst in range(max(1, dup)):
            workload.append({"kind": "schedule", "design": design,
                             "clock_period_ps": clock,
                             "id": f"r{draw}.{burst}"})
    return workload


@dataclass
class ServiceBenchResult:
    """Everything one benchmark run measured."""

    workload_name: str
    submitted: int
    unique: int
    dup: int
    hot_fraction: float
    concurrency: int
    config: ServiceConfig
    elapsed_s: float = 0.0
    ok: int = 0
    errors: int = 0
    served: dict[str, int] = field(default_factory=dict)
    latencies_s: list[float] = field(default_factory=list)
    warm_latencies_s: list[float] = field(default_factory=list)
    cold_latencies_s: list[float] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    parity_checked: int = 0

    @property
    def requests_per_s(self) -> float:
        return self.submitted / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def warm_hit_rate(self) -> float:
        return self.served.get("warm", 0) / self.ok if self.ok else 0.0

    @property
    def coalesce_rate(self) -> float:
        return (self.served.get("coalesced", 0) / self.submitted
                if self.submitted else 0.0)

    @property
    def cold_computed(self) -> int:
        return int(self.stats.get("cold_done", self.served.get("cold", 0)))

    def _percentile(self, fraction: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    @property
    def warm_speedup(self) -> float:
        """Mean cold latency over mean warm latency (same request shape)."""
        if not self.warm_latencies_s or not self.cold_latencies_s:
            return 0.0
        warm = sum(self.warm_latencies_s) / len(self.warm_latencies_s)
        cold = sum(self.cold_latencies_s) / len(self.cold_latencies_s)
        return cold / warm if warm > 0 else 0.0

    def to_payload(self) -> dict:
        """The ``service`` experiment payload body (serialize schema 8)."""
        return {
            "workload": {
                "name": self.workload_name,
                "submitted": self.submitted,
                "unique": self.unique,
                "dup": self.dup,
                "hot_fraction": self.hot_fraction,
                "concurrency": self.concurrency,
                "jobs": self.config.jobs,
                "batch_window_ms": self.config.batch_window_ms,
                "max_batch": self.config.max_batch,
            },
            "requests_per_s": self.requests_per_s,
            "p50_latency_s": self._percentile(0.50),
            "p95_latency_s": self._percentile(0.95),
            "warm_hit_rate": self.warm_hit_rate,
            "coalesce_rate": self.coalesce_rate,
            "warm_speedup": self.warm_speedup,
            "warm_latency_s": (sum(self.warm_latencies_s)
                               / len(self.warm_latencies_s)
                               if self.warm_latencies_s else 0.0),
            "cold_latency_s": (sum(self.cold_latencies_s)
                               / len(self.cold_latencies_s)
                               if self.cold_latencies_s else 0.0),
            "ok": self.ok,
            "errors": self.errors,
            "served": dict(self.served),
            "cold_computed": self.cold_computed,
            "parity_checked": self.parity_checked,
            "elapsed_s": self.elapsed_s,
            "service_stats": dict(self.stats),
        }


async def run_bench(config: ServiceConfig, workload: list[dict],
                    workload_name: str, unique: int, dup: int,
                    hot_fraction: float, concurrency: int = 12,
                    check: int = 2) -> ServiceBenchResult:
    """Drive one in-process service with ``concurrency`` client tasks.

    ``check`` served results (first-seen schedule requests) are compared
    byte-for-byte against the offline reference after the run.

    Raises:
        AssertionError: a served result differed from its offline
            reference (determinism violation -- never acceptable).
    """
    service = SchedulingService(config)
    await service.start()
    result = ServiceBenchResult(
        workload_name=workload_name, submitted=len(workload), unique=unique,
        dup=dup, hot_fraction=hot_fraction, concurrency=concurrency,
        config=config)
    responses: list[dict | None] = [None] * len(workload)
    indexes = iter(range(len(workload)))

    async def client() -> None:
        for position in indexes:
            started = time.perf_counter()
            response = await service.handle(workload[position])
            latency = time.perf_counter() - started
            responses[position] = response
            if response.get("ok"):
                result.ok += 1
                result.latencies_s.append(latency)
                served = response.get("served", "")
                result.served[served] = result.served.get(served, 0) + 1
                if served == "warm":
                    result.warm_latencies_s.append(latency)
                elif served == "cold":
                    result.cold_latencies_s.append(latency)
            else:
                result.errors += 1

    started = time.perf_counter()
    await asyncio.gather(*(client() for _ in range(max(1, concurrency))))
    result.elapsed_s = time.perf_counter() - started
    result.stats = service.stats.snapshot()
    await service.stop()

    if check > 0:
        checked_keys: set[str] = set()
        for position, response in enumerate(responses):
            if len(checked_keys) >= check:
                break
            if not response or not response.get("ok"):
                continue
            key = response.get("key")
            if key is None or key in checked_keys:
                continue
            checked_keys.add(key)
            raw = dict(workload[position])
            raw.pop("id", None)
            identity = {"kind": raw["kind"], "design": raw["design"],
                        "clock_period_ps": float(raw["clock_period_ps"]),
                        "latency_weight": config.latency_weight}
            reference = reference_result(identity)
            assert (canonical_json(response["result"])
                    == canonical_json(reference)), (
                f"served result for {raw} differs from the offline "
                "reference -- determinism violation")
        result.parity_checked = len(checked_keys)
    return result


def format_bench(result: ServiceBenchResult) -> str:
    """One human-readable summary block."""
    payload = result.to_payload()
    lines = [
        f"service bench: {result.workload_name} -- {result.submitted} "
        f"requests ({result.unique} unique, dup {result.dup}, hot "
        f"{result.hot_fraction:.0%}, {result.concurrency} clients, "
        f"{result.config.jobs} workers)",
        f"  throughput    {result.requests_per_s:10.1f} req/s "
        f"({result.elapsed_s:.2f}s)",
        f"  latency       p50 {payload['p50_latency_s'] * 1e3:8.3f} ms   "
        f"p95 {payload['p95_latency_s'] * 1e3:8.3f} ms",
        f"  warm hits     {result.served.get('warm', 0):6d} "
        f"({result.warm_hit_rate:.1%} of ok)   mean "
        f"{payload['warm_latency_s'] * 1e3:.3f} ms",
        f"  coalesced     {result.served.get('coalesced', 0):6d} "
        f"({result.coalesce_rate:.1%} of submitted)",
        f"  cold computed {result.cold_computed:6d} "
        f"(mean {payload['cold_latency_s'] * 1e3:.3f} ms; warm speedup "
        f"{result.warm_speedup:.1f}x)",
        f"  errors        {result.errors:6d}   parity checked "
        f"{result.parity_checked}",
    ]
    return "\n".join(lines)


def bench_main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.service.bench``; returns exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.service.bench",
        description="Benchmark the scheduling service with a replayed "
                    "campaign workload (hot/cold mix, duplicate bursts).")
    parser.add_argument("--replay", metavar="PATH",
                        help="replay the (design, clock) points of this "
                             "campaign store / payload instead of the "
                             "built-in quick workload")
    parser.add_argument("--requests", type=int, default=300, metavar="N",
                        help="workload draws; each is submitted --dup times "
                             "(default: 300)")
    parser.add_argument("--dup", type=int, default=2, metavar="K",
                        help="duplicate burst size per draw -- concurrent "
                             "identical requests that must coalesce "
                             "(default: 2)")
    parser.add_argument("--hot-fraction", type=float, default=0.9,
                        metavar="F",
                        help="probability a draw revisits an already-asked "
                             "point (default: 0.9)")
    parser.add_argument("--concurrency", type=int, default=12, metavar="C",
                        help="concurrent client tasks (default: 12)")
    parser.add_argument("--jobs", type=int, default=2, metavar="N",
                        help="service worker processes (default: 2)")
    parser.add_argument("--batch-window-ms", type=float, default=5.0,
                        metavar="W", help="service batch window (default: 5)")
    parser.add_argument("--seed", type=int, default=0, metavar="S",
                        help="workload RNG seed (default: 0)")
    parser.add_argument("--no-check", dest="check", action="store_false",
                        help="skip the offline parity cross-check")
    parser.add_argument("--out", metavar="PATH",
                        help="write the schema-8 'service' payload here "
                             "(e.g. BENCH_service.json)")
    parser.add_argument("--min-hit-rate", type=float, default=0.0,
                        metavar="F",
                        help="fail (exit 1) below this warm hit rate")
    parser.add_argument("--min-warm-speedup", type=float, default=0.0,
                        metavar="X",
                        help="fail (exit 1) below this warm-vs-cold speedup")
    parser.add_argument("--require-coalescing", action="store_true",
                        help="fail (exit 1) unless duplicates provably "
                             "coalesced (coalesced > 0 and cold "
                             "computations < submitted requests)")
    arguments = parser.parse_args(argv)
    if arguments.requests < 1 or arguments.dup < 1:
        parser.error("--requests and --dup must be at least 1")
    if not 0.0 <= arguments.hot_fraction <= 1.0:
        parser.error("--hot-fraction must be in [0, 1]")

    if arguments.replay:
        pairs = replay_pairs(arguments.replay)
        workload_name = Path(arguments.replay).name
    else:
        pairs = quick_pairs()
        workload_name = "quick"
    workload = build_workload(pairs, arguments.requests,
                              arguments.hot_fraction, arguments.dup,
                              arguments.seed)
    unique = len({(raw["design"], raw["clock_period_ps"])
                  for raw in workload})
    config = ServiceConfig(jobs=arguments.jobs,
                           batch_window_ms=arguments.batch_window_ms)

    started = time.perf_counter()
    try:
        result = asyncio.run(run_bench(
            config, workload, workload_name=workload_name, unique=unique,
            dup=arguments.dup, hot_fraction=arguments.hot_fraction,
            concurrency=arguments.concurrency,
            check=2 if arguments.check else 0))
    finally:
        from repro.parallel import close_shared_pool

        close_shared_pool()
    elapsed = time.perf_counter() - started
    print(format_bench(result))

    if arguments.out:
        from repro.experiments.serialize import experiment_payload

        payload = experiment_payload("service", result, quick=False,
                                     jobs=config.jobs, elapsed_s=elapsed)
        path = Path(arguments.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")

    failures = []
    if result.errors:
        failures.append(f"{result.errors} requests errored")
    if result.warm_hit_rate < arguments.min_hit_rate:
        failures.append(f"warm hit rate {result.warm_hit_rate:.1%} < "
                        f"--min-hit-rate {arguments.min_hit_rate:.1%}")
    if arguments.min_warm_speedup and (result.warm_speedup
                                       < arguments.min_warm_speedup):
        failures.append(f"warm speedup {result.warm_speedup:.1f}x < "
                        f"--min-warm-speedup {arguments.min_warm_speedup}x")
    if arguments.require_coalescing:
        if result.served.get("coalesced", 0) <= 0:
            failures.append("no requests coalesced")
        if result.cold_computed >= result.submitted:
            failures.append(f"cold computations ({result.cold_computed}) "
                            "not below submitted requests "
                            f"({result.submitted})")
    if failures:
        print("service bench FAILED: " + "; ".join(failures))
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(bench_main())
