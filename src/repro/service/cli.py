"""The ``serve`` subcommand of :mod:`repro.experiments.runner`.

::

    python -m repro.experiments.runner serve [--stdin] [--port N]
        [--host H] [--jobs N] [--batch-window-ms W] [--max-batch N]
        [--queue-limit N] [--deadline-s S] [--resolution-ps PS]
        [--speculate K] [--max-probes N] [--store STORE.jsonl]

Without ``--port`` the daemon serves JSON-lines requests on stdin;
``--port`` starts the TCP/HTTP front end (``--port 0`` binds an
ephemeral port, announced as a ``listening`` event line), and adding
``--stdin`` serves both at once.  ``--store`` persists every served
result as a ``service-result`` record so a restarted daemon answers the
same questions warm.  See ``docs/service.md``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.parallel import close_shared_pool
from repro.service.daemon import SchedulingService, ServiceConfig
from repro.service.frontends import serve_stdin, serve_tcp


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner serve",
        description="Run the scheduling service daemon: warm-cache "
                    "serving, request coalescing and batched cold-miss "
                    "execution over a persistent worker pool.")
    parser.add_argument("--stdin", action="store_true",
                        help="serve JSON-lines requests on stdin (the "
                             "default front end when --port is omitted)")
    parser.add_argument("--port", type=int, metavar="N",
                        help="serve the line protocol (plus a minimal HTTP "
                             "view) on this TCP port; 0 binds an ephemeral "
                             "port, announced on stdout")
    parser.add_argument("--host", default="127.0.0.1", metavar="H",
                        help="TCP bind address (default: 127.0.0.1)")
    parser.add_argument("--jobs", type=int, default=2, metavar="N",
                        help="worker processes of the cold-miss pool "
                             "(default: 2; results are identical for any "
                             "value)")
    parser.add_argument("--batch-window-ms", type=float, default=5.0,
                        metavar="W",
                        help="batch window under dense traffic; 0 disables "
                             "(default: 5)")
    parser.add_argument("--max-batch", type=int, default=16, metavar="N",
                        help="requests per pool dispatch, at most "
                             "(default: 16)")
    parser.add_argument("--queue-limit", type=int, default=128, metavar="N",
                        help="bounded cold-miss queue depth; beyond it "
                             "requests get a typed 'overloaded' rejection "
                             "(default: 128)")
    parser.add_argument("--deadline-s", type=float, default=300.0,
                        metavar="S",
                        help="default per-request deadline; 0 disables "
                             "(default: 300)")
    parser.add_argument("--resolution-ps", type=float, default=25.0,
                        metavar="PS",
                        help="default min-clock convergence threshold "
                             "(default: 25)")
    parser.add_argument("--speculate", type=int, default=4, metavar="K",
                        help="default min-clock batch width; fixed width "
                             "keeps results independent of --jobs "
                             "(default: 4)")
    parser.add_argument("--max-probes", type=int, default=96, metavar="N",
                        help="default min-clock probe budget (default: 96)")
    parser.add_argument("--store", dest="store_path", metavar="STORE.jsonl",
                        help="persist served results as service-result "
                             "records in this artifact store (warm "
                             "restarts)")
    parser.add_argument("--allow-crash-probes", action="store_true",
                        help=argparse.SUPPRESS)  # fault-injection tests only
    return parser


def config_from_args(arguments: argparse.Namespace) -> ServiceConfig:
    """Build the daemon config from parsed ``serve`` arguments."""
    return ServiceConfig(
        jobs=arguments.jobs,
        batch_window_ms=arguments.batch_window_ms,
        max_batch=arguments.max_batch,
        queue_limit=arguments.queue_limit,
        deadline_s=arguments.deadline_s,
        resolution_ps=arguments.resolution_ps,
        speculate=arguments.speculate,
        max_probes=arguments.max_probes,
        store_path=arguments.store_path,
        allow_crash_probes=arguments.allow_crash_probes)


async def _serve(config: ServiceConfig, use_stdin: bool,
                 port: int | None, host: str) -> None:
    service = SchedulingService(config)
    await service.start()
    try:
        frontends = []
        if port is not None:
            frontends.append(serve_tcp(service, host=host, port=port))
        if use_stdin or port is None:
            frontends.append(serve_stdin(service))
        await asyncio.gather(*frontends)
    finally:
        await service.stop()
        snapshot = service.stats.snapshot()
        print(json.dumps({"event": "stopped", "stats": snapshot}),
              file=sys.stderr, flush=True)


def serve_main(argv: list[str] | None = None) -> int:
    """Entry point of ``runner serve``; returns the process exit code."""
    parser = _build_parser()
    arguments = parser.parse_args(argv)
    if arguments.jobs < 1:
        parser.error("--jobs must be at least 1")
    if arguments.max_batch < 1:
        parser.error("--max-batch must be at least 1")
    if arguments.queue_limit < 1:
        parser.error("--queue-limit must be at least 1")
    if arguments.port is not None and not 0 <= arguments.port <= 65535:
        parser.error("--port must be in [0, 65535]")
    config = config_from_args(arguments)
    try:
        asyncio.run(_serve(config, use_stdin=arguments.stdin,
                           port=arguments.port, host=arguments.host))
    except KeyboardInterrupt:
        pass  # SIGINT is the expected way to stop a foreground daemon
    finally:
        close_shared_pool()
    return 0


__all__ = ["config_from_args", "serve_main"]


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(serve_main())
