"""Pool-side evaluators of the scheduling service (the cold path).

One module-level entry point, :func:`evaluate_request`, is shipped to the
process-wide persistent pool (:func:`repro.parallel.shared_pool`) with a
plain-dict work spec (:func:`repro.service.protocol.work_item`).  Each
worker process keeps the same module-global
:class:`~repro.dse.warm.ProblemCache` the DSE driver uses
(:func:`repro.dse.search.worker_cache`), so service cold misses
warm-start against everything the worker has already solved -- including
probes evaluated for *other* requests of the same design.

Every result builder returns only deterministic fields: warm-start
provenance and wall-clock never enter a result payload, so the served
answer is byte-identical to the offline reference regardless of which
worker (or which donor problem) computed it:

* ``schedule`` results equal :meth:`ProblemCache.cold_probe` payloads;
* ``min-clock`` / ``min-ii`` results equal the per-design entries of the
  offline ``runner dse`` payload after
  :func:`~repro.dse.search.deterministic_payload` stripping.
"""

from __future__ import annotations

import os

from repro.dse.search import (NONDETERMINISTIC_KEYS, DesignSearchResult,
                              _design_stats, drive_optimizer, make_optimizer,
                              worker_cache)
from repro.dse.warm import ProbeOutcome, ProblemCache
from repro.service.protocol import (ERROR_BAD_DESIGN, ERROR_BAD_REQUEST)


def schedule_result(outcome: ProbeOutcome) -> dict:
    """The deterministic payload of one schedule request.

    The probe's deterministic row plus the design name and the full
    node -> stage schedule (string keys, sorted, so the JSON form is
    canonical and byte-comparable).
    """
    result = outcome.to_payload()
    result["design"] = outcome.design
    if outcome.stages is not None:
        result["stages"] = {str(node_id): stage
                            for node_id, stage in sorted(outcome.stages.items())}
    return result


def _strip(result: DesignSearchResult) -> dict:
    payload = result.to_payload()
    return {key: value for key, value in payload.items()
            if key not in NONDETERMINISTIC_KEYS}


def min_clock_result(cache: ProblemCache, work: dict) -> dict:
    """One design's full min-clock search, run inside a single worker.

    Mirrors one design iteration of :func:`repro.dse.search.run_dse`
    (same optimizer construction, same fixed ``speculate`` batch width),
    so the stripped payload equals the offline per-design entry.
    """
    context = cache.context(work["design"])
    optimizer = make_optimizer(
        "minclock", work["design"], context.default_clock_ps,
        resolution_ps=work["resolution_ps"], max_stages=work["max_stages"],
        max_probes=work["max_probes"])

    def evaluate(batch: list[float]) -> list[ProbeOutcome]:
        return [cache.probe(work["design"], period) for period in batch]

    probes = drive_optimizer(optimizer, evaluate, width=work["speculate"])
    best = optimizer.best
    return _strip(DesignSearchResult(
        design=work["design"], mode="minclock",
        start_clock_ps=context.default_clock_ps,
        min_clock_ps=best.clock_period_ps if best else None,
        converged=optimizer.converged, probes=probes,
        stats=_design_stats(probes)))


def min_ii_result(cache: ProblemCache, work: dict) -> dict:
    """One design's minimum-II search (sequential by nature, one worker)."""
    context = cache.context(work["design"])
    final, trace = cache.min_ii_search(work["design"],
                                       work["clock_period_ps"])
    period = (work["clock_period_ps"] if work["clock_period_ps"] is not None
              else context.default_clock_ps)
    probes = list(trace)
    return _strip(DesignSearchResult(
        design=work["design"], mode="min-ii", start_clock_ps=float(period),
        min_clock_ps=None, min_ii=final.ii if final.feasible else None,
        converged=final.feasible, probes=probes,
        stats=_design_stats(probes)))


def evaluate_request(work: dict) -> dict:
    """Pool entry point: evaluate one work spec, never raising.

    Returns ``{"result": <deterministic payload>}`` on success or a
    controlled ``{"error": <code>, "message": ...}`` for questions that
    cannot be answered (an unresolvable design name).  Unexpected
    exceptions propagate -- the daemon maps them to ``internal`` errors
    without caching.
    """
    if work.get("crash"):  # fault injection: die like a real worker crash
        os._exit(13)
    cache = worker_cache(work["latency_weight"])
    kind = work["kind"]
    try:
        if kind == "schedule":
            outcome = cache.probe(work["design"], work["clock_period_ps"])
            return {"result": schedule_result(outcome)}
        if kind == "min-clock":
            return {"result": min_clock_result(cache, work)}
        if kind == "min-ii":
            return {"result": min_ii_result(cache, work)}
    except (KeyError, ValueError, OSError) as error:
        # Design resolution failures (unknown registry name, malformed
        # gen:/loop: spec, missing .ir file) are the caller's fault.
        return {"error": ERROR_BAD_DESIGN,
                "message": f"{type(error).__name__}: {error}"}
    return {"error": ERROR_BAD_REQUEST, "message": f"unknown kind {kind!r}"}


def reference_result(request_identity: dict) -> dict:
    """The offline reference answer for one request identity (no service).

    Evaluates the same work spec on a *fresh* cache in this process --
    the parity baseline the determinism tests and the benchmark's
    ``--check`` compare served results against.  ``schedule`` requests
    additionally bypass every warm path via
    :meth:`~repro.dse.warm.ProblemCache.cold_probe`.
    """
    work = dict(request_identity)
    work["crash"] = False
    cache = ProblemCache(latency_weight=work["latency_weight"])
    if work["kind"] == "schedule":
        outcome = cache.cold_probe(work["design"], work["clock_period_ps"])
        return schedule_result(outcome)
    if work["kind"] == "min-clock":
        return min_clock_result(cache, work)
    if work["kind"] == "min-ii":
        return min_ii_result(cache, work)
    raise ValueError(f"unknown kind {work['kind']!r}")


__all__ = ["evaluate_request", "min_clock_result", "min_ii_result",
           "reference_result", "schedule_result"]
