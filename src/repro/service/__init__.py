"""The high-throughput scheduling service.

A long-lived asyncio daemon (``runner serve``) answers schedule /
min-clock / min-II requests over a JSON line protocol (stdin or TCP, with
a minimal HTTP view of the same requests).  Three layers make it fast:

* a process-wide **warm result cache** keyed by content-addressed request
  keys and persisted as ``service-result`` records in the unified
  artifact store, so identical questions are answered without touching a
  solver -- across requests *and* across daemon restarts;
* **request coalescing**: concurrent identical requests share one
  in-flight computation instead of racing duplicate solves;
* **batched cold-miss execution**: misses drain through the process-wide
  persistent worker pool (:func:`repro.parallel.shared_pool`) in adaptive
  batches, and each worker keeps its own
  :class:`~repro.dse.warm.ProblemCache`, so cold requests still
  warm-start against everything that worker has solved before.

Results are deterministic: a served payload is byte-identical to the
offline ``runner dse`` / scheduler answer for the same question,
independent of worker count, batch window and ``PYTHONHASHSEED`` (the
parity suite under ``tests/service/`` enforces this).

* :mod:`repro.service.protocol` -- request parsing, content keys,
  response envelopes and error codes;
* :mod:`repro.service.worker` -- the pool-side evaluators (schedule /
  min-clock / min-II result builders);
* :mod:`repro.service.daemon` -- :class:`SchedulingService` (cache,
  coalescing, bounded queue, batching, deadlines, crash recovery);
* :mod:`repro.service.frontends` -- the stdin and TCP/HTTP front ends;
* :mod:`repro.service.cli` -- the ``runner serve`` subcommand;
* :mod:`repro.service.bench` -- the replay-driven load generator behind
  ``python -m repro.service.bench`` and ``BENCH_service.json``.

See ``docs/service.md`` for the protocol and operational details.
"""

from repro.service.daemon import SchedulingService, ServiceConfig, ServiceStats
from repro.service.protocol import (COMPUTE_KINDS, REQUEST_KINDS,
                                    ProtocolError, ServiceRequest,
                                    error_response, ok_response,
                                    parse_request)

__all__ = [
    "COMPUTE_KINDS",
    "REQUEST_KINDS",
    "ProtocolError",
    "SchedulingService",
    "ServiceConfig",
    "ServiceRequest",
    "ServiceStats",
    "error_response",
    "ok_response",
    "parse_request",
]
