"""The scheduling-service wire protocol: requests, keys and responses.

A request is one JSON object per line.  Three *compute* kinds ask
scheduling questions -- ``schedule`` (one design at one clock period),
``min-clock`` (the design's minimum feasible clock period) and ``min-ii``
(the design's minimum feasible initiation interval) -- and three *control*
kinds (``ping``, ``stats``, ``shutdown``) talk to the daemon itself::

    {"kind": "schedule", "design": "rrot", "clock_period_ps": 1200, "id": "r1"}
    {"kind": "min-clock", "design": "crc32"}
    {"kind": "min-ii", "design": "loop:depth=4,width=2,seed=1,dist=2"}

Every compute request has a *content-addressed key*
(:meth:`ServiceRequest.key`): the :func:`repro.store.content_key` of the
question's identity fields after the daemon fills config defaults
(resolution, speculation width, latency weight).  The key is the warm
cache's index, the coalescing index *and* the ``service-result`` record
key in the artifact store, so the three layers can never disagree about
what "the same request" means.

Responses echo the request's ``id`` (when given) and carry either
``{"ok": true, "result": ..., "served": "warm"|"cold"|"coalesced"}`` or a
typed error ``{"ok": false, "error": "<code>", "message": ...}``.  The
``result`` payload is deterministic -- byte-identical to the offline
``runner dse`` / scheduler answer for the same question -- while
``served`` / ``latency_s`` describe how *this* response was produced.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.store import StoreRecord, content_key

#: Every request kind the protocol accepts.
REQUEST_KINDS = ("schedule", "min-clock", "min-ii", "ping", "stats",
                 "shutdown")

#: The kinds that reach the worker pool (everything else is answered by
#: the daemon inline).
COMPUTE_KINDS = ("schedule", "min-clock", "min-ii")

#: Typed error codes of ``{"ok": false}`` responses.
ERROR_BAD_REQUEST = "bad-request"    # malformed/invalid request object
ERROR_BAD_DESIGN = "bad-design"      # design name did not resolve
ERROR_OVERLOADED = "overloaded"      # bounded queue full (backpressure)
ERROR_DEADLINE = "deadline"          # no result within the deadline
ERROR_WORKER_CRASH = "worker-crash"  # worker died mid-batch
ERROR_SHUTDOWN = "shutting-down"     # daemon is draining
ERROR_INTERNAL = "internal"          # unexpected evaluator exception

#: Design name that makes a worker die mid-batch (``os._exit``).  Only
#: honoured when the daemon runs with ``allow_crash_probes`` (the fault
#: injection tests); otherwise it is rejected as a bad request.
CRASH_DESIGN = "crash!"

#: Body schema of ``service-result`` artifact-store records.
SERVICE_RESULT_BODY_SCHEMA = 1

#: Fields a request object may carry, by kind (``kind``/``id`` always).
_FIELDS_BY_KIND = {
    "schedule": ("design", "clock_period_ps", "deadline_s"),
    "min-clock": ("design", "resolution_ps", "speculate", "max_probes",
                  "max_stages", "deadline_s"),
    "min-ii": ("design", "clock_period_ps", "deadline_s"),
    "ping": (),
    "stats": (),
    "shutdown": (),
}


class ProtocolError(ValueError):
    """The request object is not a valid service request."""


@dataclass(frozen=True)
class ServiceRequest:
    """One parsed (and, for compute kinds, normalised) service request.

    ``None`` knob fields mean "use the daemon's configured default"; the
    daemon normalises them before computing :meth:`key`, so a request
    spelling the default explicitly and one omitting it share a key.

    Attributes:
        kind: one of :data:`REQUEST_KINDS`.
        design: design name (compute kinds only).
        clock_period_ps: probed clock period (``schedule``; optional
            search period for ``min-ii``).
        resolution_ps: min-clock convergence threshold.
        speculate: min-clock batch width (fixed width keeps the probed
            period sequence -- and therefore the result -- independent of
            the worker count).
        max_probes: min-clock per-design probe budget.
        max_stages: min-clock optional pipeline-depth cap.
        latency_weight: LP tie-breaking weight (config-filled).
        deadline_s: per-request deadline override.
        client_id: opaque ``id`` echoed on the response.
    """

    kind: str
    design: str = ""
    clock_period_ps: float | None = None
    resolution_ps: float | None = None
    speculate: int | None = None
    max_probes: int | None = None
    max_stages: int | None = None
    latency_weight: float | None = None
    deadline_s: float | None = None
    client_id: str | None = None

    def identity(self) -> dict:
        """The question's identity fields (the content the key hashes).

        Only fields that change the deterministic *answer* participate:
        ``deadline_s`` and ``client_id`` never do, and per-kind only the
        knobs that kind consumes are included.
        """
        identity: dict[str, Any] = {"kind": self.kind, "design": self.design,
                                    "latency_weight": self.latency_weight}
        if self.kind in ("schedule", "min-ii"):
            identity["clock_period_ps"] = self.clock_period_ps
        if self.kind == "min-clock":
            identity["resolution_ps"] = self.resolution_ps
            identity["speculate"] = self.speculate
            identity["max_probes"] = self.max_probes
            identity["max_stages"] = self.max_stages
        return identity

    def key(self) -> str:
        """Content-addressed key of this request (compute kinds only)."""
        return content_key(self.identity())


def _number(raw: dict, field: str, *, required: bool = False,
            positive: bool = False) -> float | None:
    value = raw.get(field)
    if value is None:
        if required:
            raise ProtocolError(f"{raw.get('kind')} request needs a "
                                f"numeric {field!r} field")
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"field {field!r} must be a number, "
                            f"got {value!r:.80}")
    value = float(value)
    if positive and value <= 0:
        raise ProtocolError(f"field {field!r} must be positive, got {value}")
    return value


def _integer(raw: dict, field: str, *, minimum: int = 1) -> int | None:
    value = raw.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"field {field!r} must be an integer, "
                            f"got {value!r:.80}")
    if value < minimum:
        raise ProtocolError(f"field {field!r} must be >= {minimum}, "
                            f"got {value}")
    return value


def parse_request(raw: Any) -> ServiceRequest:
    """Validate one decoded JSON request object.

    Raises:
        ProtocolError: the object is not a well-formed request (wrong
            shape, unknown kind, missing/ill-typed fields, or fields that
            do not apply to the kind -- silently ignoring a knob the kind
            does not consume would let two *different-looking* requests
            share a key, so unexpected fields are rejected outright).
    """
    if not isinstance(raw, dict):
        raise ProtocolError(f"a request must be a JSON object, "
                            f"got {type(raw).__name__}")
    kind = raw.get("kind")
    if kind not in REQUEST_KINDS:
        raise ProtocolError(f"unknown request kind {kind!r}; expected one "
                            "of " + ", ".join(REQUEST_KINDS))
    allowed = set(_FIELDS_BY_KIND[kind]) | {"kind", "id"}
    unexpected = sorted(set(raw) - allowed)
    if unexpected:
        raise ProtocolError(f"{kind} request does not accept field(s) "
                            + ", ".join(repr(f) for f in unexpected))
    client_id = raw.get("id")
    if client_id is not None and not isinstance(client_id, (str, int)):
        raise ProtocolError(f"field 'id' must be a string or integer, "
                            f"got {client_id!r:.80}")
    if kind not in COMPUTE_KINDS:
        return ServiceRequest(kind=kind, client_id=None if client_id is None
                              else str(client_id))
    design = raw.get("design")
    if not isinstance(design, str) or not design:
        raise ProtocolError(f"{kind} request needs a non-empty string "
                            "'design' field")
    return ServiceRequest(
        kind=kind,
        design=design,
        clock_period_ps=_number(raw, "clock_period_ps",
                                required=(kind == "schedule"), positive=True),
        resolution_ps=_number(raw, "resolution_ps", positive=True),
        speculate=_integer(raw, "speculate"),
        max_probes=_integer(raw, "max_probes"),
        max_stages=_integer(raw, "max_stages"),
        deadline_s=_number(raw, "deadline_s", positive=True),
        client_id=None if client_id is None else str(client_id))


def normalize(request: ServiceRequest, *, resolution_ps: float,
              speculate: int, max_probes: int, latency_weight: float,
              allow_crash: bool = False) -> ServiceRequest:
    """Fill config defaults so equal questions always produce equal keys.

    Raises:
        ProtocolError: the crash-injection design is used without the
            daemon opting in (``allow_crash_probes``).
    """
    if request.kind not in COMPUTE_KINDS:
        return request
    if request.design == CRASH_DESIGN and not allow_crash:
        raise ProtocolError(f"design {CRASH_DESIGN!r} is reserved for fault "
                            "injection (enable --allow-crash-probes)")
    fills: dict[str, Any] = {"latency_weight": float(latency_weight)}
    if request.kind == "min-clock":
        if request.resolution_ps is None:
            fills["resolution_ps"] = float(resolution_ps)
        if request.speculate is None:
            fills["speculate"] = int(speculate)
        if request.max_probes is None:
            fills["max_probes"] = int(max_probes)
    return replace(request, **fills)


def work_item(request: ServiceRequest) -> dict:
    """The plain-dict work spec shipped to a pool worker (picklable)."""
    work = dict(request.identity())
    work["crash"] = request.design == CRASH_DESIGN
    return work


def ok_response(request: ServiceRequest, result: dict, served: str,
                latency_s: float | None = None) -> dict:
    """A success response envelope.

    ``result`` is the deterministic payload; ``served`` records which
    layer answered (``warm`` cache hit, ``cold`` computation, or
    ``coalesced`` into another request's in-flight computation).
    """
    response: dict[str, Any] = {"ok": True, "kind": request.kind}
    if request.kind in COMPUTE_KINDS:
        response["key"] = request.key()
        response["served"] = served
    response["result"] = result
    if latency_s is not None:
        response["latency_s"] = latency_s
    if request.client_id is not None:
        response["id"] = request.client_id
    return response


def error_response(code: str, message: str,
                   request: ServiceRequest | None = None,
                   client_id: str | None = None) -> dict:
    """A typed error response envelope (see the ``ERROR_*`` codes)."""
    response: dict[str, Any] = {"ok": False, "error": code,
                                "message": message}
    if request is not None:
        response["kind"] = request.kind
        if client_id is None:
            client_id = request.client_id
    if client_id is not None:
        response["id"] = client_id
    return response


def service_result_record(request: ServiceRequest,
                          result: dict) -> StoreRecord:
    """The ``service-result`` artifact-store record of one served request.

    The record key is the request key, so re-serving a question
    supersedes rather than duplicates its record, and a restarted daemon
    preloads its warm cache from exactly the keys it will be asked for.
    """
    return StoreRecord(kind="service-result", key=request.key(),
                       schema=SERVICE_RESULT_BODY_SCHEMA,
                       body={"request": request.identity(), "result": result})


__all__ = [
    "COMPUTE_KINDS",
    "CRASH_DESIGN",
    "ERROR_BAD_DESIGN",
    "ERROR_BAD_REQUEST",
    "ERROR_DEADLINE",
    "ERROR_INTERNAL",
    "ERROR_OVERLOADED",
    "ERROR_SHUTDOWN",
    "ERROR_WORKER_CRASH",
    "REQUEST_KINDS",
    "SERVICE_RESULT_BODY_SCHEMA",
    "ProtocolError",
    "ServiceRequest",
    "error_response",
    "normalize",
    "ok_response",
    "parse_request",
    "service_result_record",
    "work_item",
]
