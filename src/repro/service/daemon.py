"""The scheduling-service daemon core: cache, coalescing, batching.

:class:`SchedulingService` is front-end-agnostic: front ends feed decoded
JSON request objects to :meth:`SchedulingService.handle` and get response
dicts back.  A compute request flows through three layers::

    handle() -> warm cache hit?  ------------------> respond "warm"
             -> identical request in flight?  -----> await it, "coalesced"
             -> bounded queue (backpressure)  -----> batcher
    batcher  -> adaptive batch window -> worker pool -> resolve futures,
                cache + persist results

The warm cache is a plain dict keyed by content-addressed request keys
(:meth:`~repro.service.protocol.ServiceRequest.key`), preloaded from the
artifact store's ``service-result`` records at startup and appended to as
cold results land -- so a restarted daemon is warm from its first
request.  Coalescing shares one :class:`asyncio.Future` per in-flight
key; any number of concurrent duplicates cost exactly one computation.

Cold misses drain through the process-wide persistent worker pool
(:func:`repro.parallel.shared_pool`).  The batcher pulls whatever is
immediately queued, then -- only under dense traffic -- holds the batch
open for the configured window so one pool dispatch carries many
requests; each batch runs as its own task, so batches overlap instead of
serialising.  A worker crash fails only its batch (typed
``worker-crash`` errors) and replaces the pool; the daemon keeps serving.

Deadlines wrap the caller's wait, not the computation:
``asyncio.wait_for(asyncio.shield(future), ...)`` -- a timed-out client
gets a typed ``deadline`` error while the solve continues and still
populates the cache for the next asker.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field

from repro.parallel import PersistentPool, shared_pool
from repro.service import protocol
from repro.service.protocol import (ServiceRequest, error_response, normalize,
                                    ok_response, parse_request,
                                    service_result_record, work_item)
from repro.service.worker import evaluate_request
from repro.store import ArtifactStore


@dataclass
class ServiceConfig:
    """Tunables of one :class:`SchedulingService`.

    Attributes:
        jobs: worker processes of the cold-miss pool.
        batch_window_ms: how long the batcher may hold a batch open to
            collect more requests (applied only under dense traffic --
            see :meth:`SchedulingService._adaptive_window_s`).
        max_batch: requests per pool dispatch, at most.
        queue_limit: bounded-queue depth; further cold misses are
            rejected with a typed ``overloaded`` error (backpressure).
        deadline_s: default per-request deadline (``<= 0`` disables).
        latency_weight: LP tie-breaking weight filled into every request.
        resolution_ps: default min-clock convergence threshold.
        speculate: default min-clock batch width (fixed width keeps
            results independent of ``jobs``).
        max_probes: default min-clock probe budget.
        store_path: artifact store persisting ``service-result`` records
            (warm restarts); in-memory only when ``None``.
        allow_crash_probes: honour the crash-injection design
            (:data:`~repro.service.protocol.CRASH_DESIGN`); tests only.
    """

    jobs: int = 2
    batch_window_ms: float = 5.0
    max_batch: int = 16
    queue_limit: int = 128
    deadline_s: float = 300.0
    latency_weight: float = 1e-3
    resolution_ps: float = 25.0
    speculate: int = 4
    max_probes: int = 96
    store_path: str | None = None
    allow_crash_probes: bool = False


@dataclass
class ServiceStats:
    """Counters the daemon maintains (all monotonic within one run)."""

    requests: int = 0
    bad_requests: int = 0
    warm_hits: int = 0
    coalesced: int = 0
    cold_submitted: int = 0
    cold_done: int = 0
    cold_errors: int = 0
    rejected: int = 0
    deadline_misses: int = 0
    worker_crashes: int = 0
    internal_errors: int = 0
    store_errors: int = 0
    client_disconnects: int = 0
    preloaded: int = 0
    batches: int = 0
    batch_items: int = 0
    max_batch: int = 0
    windowed_batches: int = 0

    def snapshot(self) -> dict:
        """Plain-dict view (the ``stats`` request's result payload)."""
        payload = {name: getattr(self, name) for name in self.__dataclass_fields__}
        served = self.warm_hits + self.coalesced + self.cold_done
        payload["warm_hit_rate"] = self.warm_hits / served if served else 0.0
        payload["coalesce_rate"] = (self.coalesced / self.requests
                                    if self.requests else 0.0)
        payload["mean_batch"] = (self.batch_items / self.batches
                                 if self.batches else 0.0)
        return payload


class _ServiceError:
    """A typed failure resolved into a waiter future (never cached)."""

    __slots__ = ("code", "message")

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        self.message = message


@dataclass
class _Pending:
    """One cold miss travelling from the queue to the pool."""

    key: str
    request: ServiceRequest
    future: asyncio.Future
    work: dict = field(default_factory=dict)


class SchedulingService:
    """The daemon core (see the module docstring for the data flow)."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        self._results: dict[str, dict] = {}
        self._inflight: dict[str, asyncio.Future] = {}
        self._queue: asyncio.Queue[_Pending] | None = None
        self._batcher: asyncio.Task | None = None
        self._batch_tasks: set[asyncio.Task] = set()
        self._closing: asyncio.Event | None = None
        self._store: ArtifactStore | None = None
        self._pool: PersistentPool | None = None
        self._ema_interarrival_s: float | None = None
        self._last_arrival: float | None = None

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Open the store, preload the warm cache and start the batcher."""
        if self._queue is not None:
            raise RuntimeError("service already started")
        self._queue = asyncio.Queue(maxsize=max(1, self.config.queue_limit))
        self._closing = asyncio.Event()
        self._pool = shared_pool(self.config.jobs)
        if self.config.store_path is not None:
            self._store = ArtifactStore(
                self.config.store_path).open_for_append(tolerant=True)
            for record in self._store.kind("service-result"):
                result = record.body.get("result")
                if isinstance(result, dict):
                    self._results[record.key] = result
            self.stats.preloaded = len(self._results)
        self._batcher = asyncio.create_task(self._batch_loop(),
                                            name="service-batcher")

    @property
    def closing(self) -> bool:
        """Whether a shutdown has been requested."""
        return self._closing is not None and self._closing.is_set()

    def request_shutdown(self) -> None:
        """Flag the daemon as draining (front ends watch this event)."""
        if self._closing is not None:
            self._closing.set()

    async def wait_closing(self) -> None:
        """Block until a shutdown is requested."""
        if self._closing is None:
            raise RuntimeError("service not started")
        await self._closing.wait()

    async def stop(self) -> None:
        """Drain and stop: fail queued requests, finish running batches.

        The shared worker pool is *not* closed -- the service does not
        own it (:func:`repro.parallel.close_shared_pool` is the owner's
        call, made by the CLI on process exit).
        """
        if self._queue is None:
            return
        self.request_shutdown()
        if self._batcher is not None:
            self._batcher.cancel()
            await asyncio.gather(self._batcher, return_exceptions=True)
            self._batcher = None
        while not self._queue.empty():
            item = self._queue.get_nowait()
            self._fail(item, _ServiceError(protocol.ERROR_SHUTDOWN,
                                           "daemon is shutting down"))
        if self._batch_tasks:
            await asyncio.gather(*self._batch_tasks, return_exceptions=True)
        self._queue = None

    # ------------------------------------------------------------- serving

    async def handle(self, raw: object) -> dict:
        """Serve one decoded request object; always returns a response."""
        if self._queue is None or self._closing is None:
            raise RuntimeError("service not started")
        self.stats.requests += 1
        started = time.perf_counter()
        try:
            request = normalize(parse_request(raw),
                                resolution_ps=self.config.resolution_ps,
                                speculate=self.config.speculate,
                                max_probes=self.config.max_probes,
                                latency_weight=self.config.latency_weight,
                                allow_crash=self.config.allow_crash_probes)
        except protocol.ProtocolError as error:
            self.stats.bad_requests += 1
            client_id = None
            if isinstance(raw, dict) and isinstance(raw.get("id"), (str, int)):
                client_id = str(raw["id"])
            return error_response(protocol.ERROR_BAD_REQUEST, str(error),
                                  client_id=client_id)

        if request.kind == "ping":
            return ok_response(request, {"pong": True}, served="inline")
        if request.kind == "stats":
            return ok_response(request, self.stats.snapshot(), served="inline")
        if request.kind == "shutdown":
            self.request_shutdown()
            return ok_response(request, {"closing": True}, served="inline")
        if self.closing:
            return error_response(protocol.ERROR_SHUTDOWN,
                                  "daemon is shutting down", request=request)

        key = request.key()
        cached = self._results.get(key)
        if cached is not None:
            self.stats.warm_hits += 1
            return ok_response(request, cached, served="warm",
                               latency_s=time.perf_counter() - started)

        future = self._inflight.get(key)
        if future is not None:
            self.stats.coalesced += 1
            served = "coalesced"
        else:
            self._note_arrival()
            loop = asyncio.get_running_loop()
            future = loop.create_future()
            item = _Pending(key=key, request=request, future=future,
                            work=work_item(request))
            self._inflight[key] = future
            try:
                self._queue.put_nowait(item)
            except asyncio.QueueFull:
                self._inflight.pop(key, None)
                self.stats.rejected += 1
                return error_response(
                    protocol.ERROR_OVERLOADED,
                    f"cold-miss queue is full ({self.config.queue_limit} "
                    "pending); retry later", request=request)
            self.stats.cold_submitted += 1
            served = "cold"

        deadline = (request.deadline_s if request.deadline_s is not None
                    else self.config.deadline_s)
        try:
            if deadline and deadline > 0:
                outcome = await asyncio.wait_for(asyncio.shield(future),
                                                 timeout=deadline)
            else:
                outcome = await asyncio.shield(future)
        except asyncio.TimeoutError:
            self.stats.deadline_misses += 1
            return error_response(
                protocol.ERROR_DEADLINE,
                f"no result within {deadline:.3f}s (the computation "
                "continues and its result will be cached)", request=request)

        if isinstance(outcome, _ServiceError):
            return error_response(outcome.code, outcome.message,
                                  request=request)
        return ok_response(request, outcome, served=served,
                           latency_s=time.perf_counter() - started)

    # ------------------------------------------------------------- batching

    def _note_arrival(self) -> None:
        """Update the cold-miss inter-arrival EMA (adaptive window input)."""
        now = time.perf_counter()
        if self._last_arrival is not None:
            gap = now - self._last_arrival
            if self._ema_interarrival_s is None:
                self._ema_interarrival_s = gap
            else:
                self._ema_interarrival_s = (0.75 * self._ema_interarrival_s
                                            + 0.25 * gap)
        self._last_arrival = now

    def _adaptive_window_s(self) -> float:
        """How long the batcher may hold the current batch open.

        Zero under sparse traffic (waiting would only add latency and
        collect nothing); the configured window when cold misses arrive
        faster than one window apart, so one pool dispatch carries many.
        """
        base = self.config.batch_window_ms / 1000.0
        if base <= 0 or self._ema_interarrival_s is None:
            return 0.0
        return base if self._ema_interarrival_s < base else 0.0

    async def _batch_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self.config.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            window = self._adaptive_window_s()
            if window > 0 and len(batch) < self.config.max_batch:
                self.stats.windowed_batches += 1
                deadline = loop.time() + window
                while len(batch) < self.config.max_batch:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        batch.append(await asyncio.wait_for(
                            self._queue.get(), timeout=remaining))
                    except asyncio.TimeoutError:
                        break
            self.stats.batches += 1
            self.stats.batch_items += len(batch)
            self.stats.max_batch = max(self.stats.max_batch, len(batch))
            task = asyncio.create_task(self._run_batch(batch),
                                       name="service-batch")
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, batch: list[_Pending]) -> None:
        assert self._pool is not None
        loop = asyncio.get_running_loop()

        async def evaluate(work: dict) -> dict:
            # executor() inside the coroutine: a synchronous submit-time
            # BrokenExecutor is then captured by gather like any other.
            return await loop.run_in_executor(self._pool.executor(),
                                              evaluate_request, work)

        outcomes = await asyncio.gather(
            *(evaluate(item.work) for item in batch), return_exceptions=True)
        crashed = False
        for item, outcome in zip(batch, outcomes):
            if isinstance(outcome, BrokenExecutor):
                crashed = True
                self._fail(item, _ServiceError(
                    protocol.ERROR_WORKER_CRASH,
                    "a worker process died mid-batch; the pool was "
                    "replaced, retry the request"))
            elif isinstance(outcome, BaseException):
                self.stats.internal_errors += 1
                self._fail(item, _ServiceError(
                    protocol.ERROR_INTERNAL,
                    f"{type(outcome).__name__}: {outcome}"))
            elif "error" in outcome:
                self._fail(item, _ServiceError(outcome["error"],
                                               outcome.get("message", "")))
            else:
                self._finish(item, outcome["result"])
        if crashed:
            self.stats.worker_crashes += 1
            self._pool.recover()

    def _finish(self, item: _Pending, result: dict) -> None:
        """Cache, persist and deliver one cold result (success path).

        Results are deterministic, so even infeasible answers are cached;
        only *errors* (crashes, unresolvable designs) are never cached.
        """
        self._results[item.key] = result
        self.stats.cold_done += 1
        if self._store is not None:
            try:
                self._store.put(service_result_record(item.request, result))
            except OSError:
                self.stats.store_errors += 1  # keep serving from memory
        self._inflight.pop(item.key, None)
        if not item.future.done():
            item.future.set_result(result)

    def _fail(self, item: _Pending, error: _ServiceError) -> None:
        """Deliver a typed error to the waiters (nothing is cached)."""
        self.stats.cold_errors += 1
        self._inflight.pop(item.key, None)
        if not item.future.done():
            # set_result (not set_exception): abandoned futures must not
            # log "exception was never retrieved" after a deadline miss.
            item.future.set_result(error)


__all__ = ["SchedulingService", "ServiceConfig", "ServiceStats"]
